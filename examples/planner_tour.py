"""A guided tour of the planner: trees, grids, and what each choice costs.

Walks the paper's decision space for one metadata instance (the paper's
max-gain benchmark tensor, 400x100x100x50x20 -> 80x80x10x40x10):

1. enumerate the candidate TTM-trees (chain orderings, balanced, optimal)
   and their exact FLOP loads;
2. the grid space: psi(32, 5) factorizations, validity filtering, and the
   optimal static grid per tree;
3. dynamic gridding: where the optimal scheme regrids and what it saves;
4. plan serialization: plan once, reuse across HOOI invocations.

Run:  python examples/planner_tour.py
"""

from repro import (
    Planner,
    TensorMeta,
    balanced_tree,
    chain_tree,
    optimal_dynamic_scheme,
    optimal_static_grid,
    optimal_tree,
    psi,
    tree_cost,
    valid_grids,
)
from repro.core.ordering import h_ordering, k_ordering
from repro.core.planner import Plan

META = TensorMeta(
    dims=(400, 100, 100, 50, 20), core=(80, 80, 10, 40, 10)
)
P = 32


def tour_trees() -> None:
    print("=" * 72)
    print(f"metadata: {META}   (the paper's maximum-gain tensor)")
    print(f"\n1) TTM-trees and their exact loads (multiply-adds / |T|):")
    candidates = {
        "chain, natural": chain_tree(5),
        "chain, K-order": chain_tree(5, k_ordering(META)),
        "chain, h-order": chain_tree(5, h_ordering(META)),
        "balanced": balanced_tree(5),
        "optimal (DP)": optimal_tree(META),
    }
    base = tree_cost(candidates["optimal (DP)"], META)
    for name, tree in candidates.items():
        cost = tree_cost(tree, META)
        print(
            f"  {name:16s} {tree.n_ttm_ops:3d} TTMs, "
            f"load {cost / META.cardinality:8.1f} |T|, "
            f"{cost / base:5.2f}x optimal"
        )
    print("\noptimal tree structure:")
    print(optimal_tree(META).pretty())


def tour_grids() -> None:
    print("=" * 72)
    print("2) grids:")
    print(f"  psi(32, 5) = {psi(32, 5)} factorizations "
          f"(paper Table 1, first column)")
    grids = valid_grids(P, META)
    print(f"  valid grids (q_n <= K_n): {len(grids)}")
    tree = optimal_tree(META)
    grid, vol = optimal_static_grid(tree, META, P)
    print(f"  optimal static grid for the optimal tree: {grid}, "
          f"TTM volume {vol:,} elements")


def tour_dynamic() -> None:
    print("=" * 72)
    print("3) dynamic gridding on the optimal tree:")
    tree = optimal_tree(META)
    _, static_vol = optimal_static_grid(tree, META, P)
    scheme = optimal_dynamic_scheme(tree, META, P)
    print(f"  static  volume: {static_vol:,}")
    print(f"  dynamic volume: {scheme.total_volume:,} "
          f"(TTM {scheme.ttm_volume:,} + regrid {scheme.regrid_volume:,})")
    print(f"  improvement:    {static_vol / scheme.total_volume:.2f}x")
    print(f"  regrids happen at tree nodes {list(scheme.regrid_nodes)}; "
          f"initial grid {scheme.grid_of(tree.root.uid)}")
    distinct = sorted({tuple(g) for g in scheme.assignment.values()})
    print(f"  distinct grids used: {distinct}")


def tour_plan_reuse() -> None:
    print("=" * 72)
    print("4) plan once, reuse forever:")
    plan = Planner(P, tree="optimal", grid="dynamic").plan(META)
    blob = plan.to_json()
    plan2 = Plan.from_json(blob)
    assert plan2.to_json() == blob
    print(f"  plan serialized to {len(blob):,} bytes of JSON; round-trips "
          f"bit-identically")
    print(f"  predicted: flops {plan.flops:,}, TTM+regrid volume "
          f"{plan.total_volume:,}")


if __name__ == "__main__":
    tour_trees()
    tour_grids()
    tour_dynamic()
    tour_plan_reuse()
