"""Modeled strong-scaling study on the paper's real tensors.

The paper fixes P = 32; this extension sweeps P = 2^2 .. 2^10 with the
model executor and shows how the algorithm ranking evolves: communication
optimization matters more as P grows (TTM compute shrinks like 1/P while
reduce-scatter volume grows with (q_n - 1)).

Run:  python examples/scaling_study.py
"""

from repro.bench.algorithms import ALGORITHMS, make_planner, paper_label
from repro.bench.suite import REAL_TENSORS
from repro.hooi.model import predict
from repro.mpi.machine import MachineModel


def main() -> None:
    machine = MachineModel.bgq_like()
    for name in ("HCCI", "SP"):
        meta = REAL_TENSORS[name]
        print("=" * 76)
        print(f"{name} {meta}: modeled single-invocation seconds vs P")
        header = f"{'P':>6s}" + "".join(
            f"{paper_label(a):>10s}" for a in ALGORITHMS
        ) + f"{'best prior / OPT':>20s}"
        print(header)
        for exp in range(2, 11):
            p = 2**exp
            row = f"{p:6d}"
            totals = {}
            for alg in ALGORITHMS:
                try:
                    plan = make_planner(alg, p).plan(meta)
                    totals[alg] = predict(plan, machine).total_seconds
                    row += f"{totals[alg]:10.2f}"
                except ValueError:
                    # no valid grid at this P (q_n <= K_n infeasible)
                    row += f"{'-':>10s}"
            if "opt-dynamic" in totals:
                prior = min(
                    totals[a]
                    for a in ("chain-k", "chain-h", "balanced")
                    if a in totals
                )
                row += f"{prior / totals['opt-dynamic']:19.2f}x"
            print(row)
        print()
    print("Reading: OPT's advantage grows through the paper's regime")
    print("(P = 32..128) as communication volume becomes the binding")
    print("resource, then narrows at extreme P where per-rank work is tiny")
    print("and alpha latency — which the volume-only planner cannot see —")
    print("dominates every algorithm.")


if __name__ == "__main__":
    main()
