"""Quickstart: plan, compile and run HOOI on a virtual cluster.

Builds a noisy low-multilinear-rank 4-D tensor, plans the HOOI invocation
with the paper's optimal TTM-tree + dynamic gridding, and runs the full
STHOSVD + HOOI pipeline through a :class:`~repro.session.TuckerSession`
on the simulated 8-rank backend, printing the error trajectory and
communication statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Planner,
    TensorMeta,
    TuckerSession,
    low_rank_tensor,
    predict,
)


def main() -> None:
    dims, core = (40, 36, 30, 24), (8, 6, 6, 4)
    print(f"tensor {dims} -> core {core}")

    # A tensor that genuinely has (approximate) low multilinear rank.
    tensor = low_rank_tensor(dims, core, noise=0.08, seed=7)
    meta = TensorMeta(dims=dims, core=core)

    # 1) Plan once from metadata (the paper's planner module): the optimal
    #    TTM-tree (section 3.3) + optimal dynamic gridding (section 4.4).
    plan = Planner(n_procs=8, tree="optimal", grid="dynamic").plan(meta)
    print("\nTTM-tree (optimal):")
    print(plan.tree.pretty())
    print(f"\nplanned TTM flops:        {plan.flops:,}")
    print(f"planned TTM volume:       {plan.ttm_volume:,} elements")
    print(f"planned regrid volume:    {plan.regrid_volume:,} elements")
    print(f"initial grid for T:       {plan.initial_grid}")

    # 2) + 3) STHOSVD init and iterated HOOI on the virtual cluster, via
    #    the session API (the plan is compiled once and cached).
    session = TuckerSession(backend="simcluster", n_procs=8)
    result = session.run(tensor, core, plan=plan, max_iters=6)
    print(f"\nSTHOSVD error:            {result.sthosvd_error:.6f}")
    print(f"HOOI errors per sweep:    {[f'{e:.6f}' for e in result.errors]}")
    print(f"compression ratio:        {result.compression_ratio:.1f}x")

    # 4) What actually moved on the (virtual) wire.
    stats = session.backend.cluster.stats
    print(f"\nmeasured comm volume:     {stats.volume():,.0f} elements")
    print(f"  TTM reduce-scatter:     {stats.volume(op='reduce_scatter'):,.0f}")
    print(f"  regrids (all-to-all):   {stats.volume(op='alltoallv'):,.0f}")
    print(f"  allreduce/allgather:    "
          f"{stats.volume(op='allreduce') + stats.volume(op='allgather'):,.0f}")

    # 5) And what the metadata-only model predicted for one invocation.
    report = predict(plan)
    print(f"\nmodeled single-invocation time ({plan.n_procs} BG/Q-like ranks): "
          f"{report.total_seconds * 1e3:.2f} ms")
    per_iter = stats.volume(tag_prefix="hooi:it0")
    print(f"model comm volume (1 invocation, TTM+regrid): {report.comm_volume:,}")
    print(f"engine comm volume (iteration 0, all phases): {per_iter:,.0f}")


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    main()
