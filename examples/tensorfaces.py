"""TensorFaces-style multilinear PCA on a synthetic image ensemble.

The paper motivates Tucker with computer-vision applications (Vasilescu &
Terzopoulos' TensorFaces): an ensemble of face images varying by identity,
illumination and pose forms a 5-D tensor
(pixels_y x pixels_x x identity x illumination x pose), and the Tucker
factors separate the variation modes — classic multilinear PCA.

This example synthesizes such an ensemble (Gabor-ish identity templates,
multiplicative illumination fields, shifted poses), Tucker-compresses it
with the full planner+engine pipeline, and shows that a small multilinear
rank captures the ensemble while the mode factors isolate each variation
axis.

Run:  python examples/tensorfaces.py
"""

import numpy as np

from repro import (
    Planner,
    TensorMeta,
    TuckerSession,
)

PIX_Y, PIX_X = 24, 20
N_IDENT, N_ILLUM, N_POSE = 8, 5, 4


def synth_ensemble(seed: int = 5) -> np.ndarray:
    """Build (pix_y, pix_x, identity, illumination, pose) image stack."""
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(
        np.linspace(-1, 1, PIX_Y), np.linspace(-1, 1, PIX_X), indexing="ij"
    )
    # identity templates: sums of oriented Gaussian blobs
    templates = []
    for _ in range(N_IDENT):
        img = np.zeros((PIX_Y, PIX_X))
        for _ in range(4):
            cy, cx = rng.uniform(-0.6, 0.6, 2)
            sy, sx = rng.uniform(0.15, 0.5, 2)
            img += rng.uniform(0.5, 1.5) * np.exp(
                -((yy - cy) ** 2 / (2 * sy**2) + (xx - cx) ** 2 / (2 * sx**2))
            )
        templates.append(img)
    # illumination: low-frequency multiplicative ramps
    illums = [
        1.0 + 0.5 * np.cos(np.pi * (a * yy + b * xx))
        for a, b in rng.uniform(-1, 1, (N_ILLUM, 2))
    ]
    # pose: small shifts realized by rolling pixels
    poses = [(0, 0), (1, 0), (0, 1), (1, 1)][:N_POSE]

    t = np.empty((PIX_Y, PIX_X, N_IDENT, N_ILLUM, N_POSE))
    for i, tmpl in enumerate(templates):
        for j, ill in enumerate(illums):
            for k, (dy, dx) in enumerate(poses):
                t[:, :, i, j, k] = np.roll(tmpl * ill, (dy, dx), axis=(0, 1))
    t += 0.01 * rng.standard_normal(t.shape)
    return t


def main() -> None:
    ensemble = synth_ensemble()
    dims = ensemble.shape
    core = (10, 10, 6, 3, 2)  # pixel bases + per-axis variation subspaces
    meta = TensorMeta(dims=dims, core=core)
    print(f"image ensemble {dims} -> multilinear rank {core}")

    plan = Planner(n_procs=8, tree="optimal", grid="dynamic").plan(meta)
    session = TuckerSession(backend="simcluster", n_procs=8)
    result = session.run(ensemble, core, plan=plan, max_iters=6)
    dec = result.decomposition

    print(f"STHOSVD error:   {result.sthosvd_error:.4f}")
    print(f"HOOI errors:     {[f'{e:.4f}' for e in result.errors]}")
    print(f"compression:     {dec.compression_ratio:.1f}x")

    # Multilinear PCA reading: each factor spans one variation axis. The
    # identity factor's rows embed identities; nearby rows = similar faces.
    ident = dec.factors[2]  # (N_IDENT, 6)
    gram = ident @ ident.T
    print("\nidentity-mode similarity (F_id F_id^T, should be ~I since "
          "identities were drawn independently):")
    with np.printoptions(precision=2, suppress=True):
        print(gram)

    # Energy captured per illumination basis vector, read off the core:
    # the first illumination component should dominate (ambient level).
    energy = np.array(
        [np.sum(dec.core[:, :, :, j, :] ** 2) for j in range(dec.core.shape[3])]
    )
    print(f"\nillumination component energy shares: "
          f"{np.round(energy / energy.sum(), 3)} (first = ambient, dominates)")

    # Reconstruction sanity on one held-out style of inspection: the
    # recovered image for (identity 0, illum 0, pose 0).
    recon = dec.reconstruct()
    err0 = np.linalg.norm(
        recon[:, :, 0, 0, 0] - ensemble[:, :, 0, 0, 0]
    ) / np.linalg.norm(ensemble[:, :, 0, 0, 0])
    print(f"\nper-image reconstruction error (id0/illum0/pose0): {err0:.4f}")


if __name__ == "__main__":
    main()
