"""Compressing a combustion-simulation-like field (the paper's SP tensor).

The paper's evaluation uses tensors from combustion science (Table 2): SP is
a 500x500x500x11x10 field of 11 variables over 10 timesteps on a 500^3
spatial grid, compressed ~150x by Tucker. Holding 1.4e10 doubles is out of
scope for a laptop, so this example runs a faithfully scaled-down SP — a
smooth separable field over (50, 50, 50, 11, 10) with the same 5-D structure
and per-mode compression factors — and reproduces the pipeline end to end:

  STHOSVD -> plan (opt tree + dynamic grids) -> distributed HOOI -> report.

It also contrasts all five algorithm configurations on the *full-size* SP
metadata with the model executor, reproducing the Fig 10c comparison.

Run:  python examples/combustion_compression.py
"""

import numpy as np

from repro import (
    Planner,
    TensorMeta,
    TuckerSession,
    predict,
    separable_field_tensor,
)
from repro.bench.algorithms import ALGORITHMS, make_planner, paper_label
from repro.bench.suite import REAL_TENSORS

SCALED_DIMS = (50, 50, 50, 11, 10)
# SP's per-mode compression, applied to the scaled spatial extents:
# 81/500 -> 8/50, 129/500 -> 13/50, 127/500 -> 13/50; 7/11 and 6/10 as-is.
SCALED_CORE = (8, 13, 13, 7, 6)


def run_scaled_pipeline() -> None:
    print("=" * 72)
    print(f"scaled SP: {SCALED_DIMS} -> {SCALED_CORE}")
    field = separable_field_tensor(SCALED_DIMS, n_bumps=8, noise=5e-3, seed=11)
    meta = TensorMeta(dims=SCALED_DIMS, core=SCALED_CORE)

    plan = Planner(n_procs=16, tree="optimal", grid="dynamic").plan(meta)
    session = TuckerSession(backend="simcluster", n_procs=16)
    result = session.run(field, SCALED_CORE, plan=plan, max_iters=5)
    stats = session.backend.cluster.stats
    print(f"STHOSVD error:     {result.sthosvd_error:.5f}")
    print(f"HOOI errors:       {[f'{e:.5f}' for e in result.errors]}")
    print(f"compression:       {result.compression_ratio:.0f}x "
          f"({field.size:,} -> "
          f"{result.decomposition.core.size + sum(f.size for f in result.decomposition.factors):,} values)")
    print(f"comm volume:       {stats.volume():,.0f} elements "
          f"(TTM rs {stats.volume(op='reduce_scatter'):,.0f}, "
          f"regrid {stats.volume(op='alltoallv'):,.0f})")


def compare_algorithms_on_full_sp() -> None:
    print("=" * 72)
    meta = REAL_TENSORS["SP"]
    print(f"full SP metadata {meta} on 32 modeled ranks (one HOOI invocation)")
    print(f"{'algorithm':14s} {'flops':>12s} {'comm vol':>12s} "
          f"{'TTM comp s':>11s} {'TTM comm s':>11s} {'SVD s':>7s} {'total s':>8s}")
    for name in ALGORITHMS:
        plan = make_planner(name, 32).plan(meta)
        rep = predict(plan)
        print(
            f"{paper_label(name):14s} {plan.flops / 1e9:10.1f} G "
            f"{plan.total_volume / 1e6:10.1f} M "
            f"{rep.ttm_compute_seconds:11.2f} {rep.ttm_comm_seconds:11.2f} "
            f"{rep.svd_seconds:7.2f} {rep.total_seconds:8.2f}"
        )
    print("\n(the paper's Fig 10c: balanced beats the chains; OPT is fastest"
          "\n and its tree TTM communication is zero on SP)")


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    run_scaled_pipeline()
    compare_algorithms_on_full_sp()
