"""In-tree PEP 517 backend tailored to the offline environment.

The environment lacks the ``wheel`` package, which breaks both standard
editable-install routes with setuptools < 70.1:

* PEP 660 (``build_editable``) needs to build an editable *wheel*;
* even metadata preparation via setuptools' ``dist_info`` command calls
  ``bdist_wheel`` internally (``error: invalid command 'bdist_wheel'``),
  and ``pip --no-use-pep517`` refuses to run without wheel installed.

This backend therefore

* **omits** ``build_editable`` — pip then falls back to the classic
  ``setup.py develop`` editable path, which needs only ``egg_info``;
* implements ``prepare_metadata_for_build_wheel`` directly from the
  ``[project]`` table (stdlib ``tomllib``), so the fallback's metadata
  step never touches ``bdist_wheel``;
* delegates real wheel/sdist builds to ``setuptools.build_meta`` for
  environments where ``wheel`` is available.
"""

from __future__ import annotations

import os
import tomllib

from setuptools.build_meta import (  # noqa: F401
    build_sdist,
    build_wheel,
    get_requires_for_build_sdist,
    get_requires_for_build_wheel,
)


def _project_table() -> dict:
    with open(os.path.join(os.path.dirname(__file__), "pyproject.toml"), "rb") as fh:
        return tomllib.load(fh)["project"]


def _version() -> str:
    scope: dict = {}
    path = os.path.join(os.path.dirname(__file__), "src", "repro", "_version.py")
    with open(path, encoding="utf-8") as fh:
        exec(compile(fh.read(), path, "exec"), scope)
    return scope["__version__"]


def prepare_metadata_for_build_wheel(
    metadata_directory: str, config_settings: dict | None = None
) -> str:
    project = _project_table()
    name = project["name"]
    version = _version()
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {name}",
        f"Version: {version}",
    ]
    if "description" in project:
        lines.append(f"Summary: {project['description']}")
    if "requires-python" in project:
        lines.append(f"Requires-Python: {project['requires-python']}")
    for dep in project.get("dependencies", []):
        lines.append(f"Requires-Dist: {dep}")
    for extra, deps in project.get("optional-dependencies", {}).items():
        lines.append(f"Provides-Extra: {extra}")
        for dep in deps:
            lines.append(f'Requires-Dist: {dep}; extra == "{extra}"')

    dist_info = f"{name.replace('-', '_')}-{version}.dist-info"
    path = os.path.join(metadata_directory, dist_info)
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, "METADATA"), "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return dist_info
