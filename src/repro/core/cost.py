"""FLOP cost of a TTM-tree (paper section 3.1, Figure 4).

Each internal node ``u`` with mode ``n`` performs the matrix product
``F_n^T (K_n x L_n) @ In(u)_(n) (L_n x |In(u)|/L_n)``, costing
``K_n * |In(u)|`` multiply-adds and emitting a tensor of cardinality
``h_n * |In(u)|``. Tree cost = sum over internal nodes. All arithmetic is
exact-integer because every intermediate cardinality is
``prod_{applied} K * prod_{rest} L``.
"""

from __future__ import annotations

from repro.core.meta import TensorMeta
from repro.core.trees import Node, TTMTree


def node_costs(tree: TTMTree, meta: TensorMeta) -> dict[int, dict[str, int]]:
    """Per-node cost table keyed by node uid.

    Each entry holds ``in_card``, ``out_card`` and ``flops`` (0 for root and
    leaves, whose "TTM" is vacuous; leaves inherit in/out = parent's output,
    which the SVD model consumes).
    """
    if tree.n_modes != meta.ndim:
        raise ValueError(
            f"tree has {tree.n_modes} modes but meta has {meta.ndim} dims"
        )
    table: dict[int, dict[str, int]] = {}

    def visit(node: Node, premult: int, in_card: int) -> None:
        if node.kind == "ttm":
            if (premult >> node.mode) & 1:
                raise ValueError(
                    f"mode {node.mode} multiplied twice on one path"
                )
            out_premult = premult | (1 << node.mode)
            out_card = meta.card_after(out_premult)
            flops = meta.core[node.mode] * in_card
        else:
            out_premult = premult
            out_card = in_card
            flops = 0
        table[node.uid] = {
            "in_card": in_card,
            "out_card": out_card,
            "flops": flops,
        }
        for child in node.children:
            visit(child, out_premult, out_card)

    visit(tree.root, 0, meta.cardinality)
    return table


def tree_cost(tree: TTMTree, meta: TensorMeta) -> int:
    """Total multiply-adds of the tree's TTM component (exact integer)."""
    return sum(entry["flops"] for entry in node_costs(tree, meta).values())


def normalized_tree_cost(tree: TTMTree, meta: TensorMeta) -> float:
    """Tree cost divided by ``|T|`` (the unit used in the paper's Figure 4)."""
    return tree_cost(tree, meta) / meta.cardinality
