"""The planner module (paper section 5).

The planner consumes only metadata (tensor dims + core dims), builds a
TTM-tree (a prior-work heuristic or the optimal tree) and a grid scheme
(optimal static grid or optimal dynamic scheme), and emits a :class:`Plan`.
A plan is computed once and reused across HOOI invocations; it is JSON
serializable for exactly that workflow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import tree_cost
from repro.core.dynamic_grid import (
    GridScheme,
    optimal_dynamic_scheme,
    optimal_path_scheme,
    static_scheme,
)
from repro.core.meta import TensorMeta
from repro.core.opt_tree import optimal_tree
from repro.core.ordering import (
    h_ordering,
    k_ordering,
    natural_ordering,
    optimal_chain_ordering,
)
from repro.core.static_grid import optimal_static_grid
from repro.core.trees import TTMTree, balanced_tree, chain_tree
from repro.util import serial
from repro.util.validation import check_positive_int

TREE_KINDS = (
    "optimal",
    "chain-natural",
    "chain-k",
    "chain-h",
    "balanced",
    "no_reuse",
    "eager_reuse",
)
GRID_KINDS = ("static", "dynamic")


@dataclass(frozen=True)
class Plan:
    """A complete HOOI execution plan plus its predicted exact metrics.

    ``flops`` is the TTM-component multiply-add count (paper section 3);
    ``ttm_volume``/``regrid_volume`` are communication volumes in elements
    (section 4). All three are exact integers under the paper's model.
    """

    meta: TensorMeta
    n_procs: int
    tree: TTMTree
    scheme: GridScheme
    tree_kind: str
    grid_kind: str
    flops: int
    ttm_volume: int
    regrid_volume: int
    #: new-core chain: mode order, grid per chain position, volumes
    core_order: tuple[int, ...] = ()
    core_scheme: tuple[tuple[int, ...], ...] = ()
    core_ttm_volume: int = 0
    core_regrid_volume: int = 0

    @property
    def total_volume(self) -> int:
        """TTM-component volume (tree TTMs + regrids; core excluded, as in
        the paper's section-4 metric)."""
        return self.ttm_volume + self.regrid_volume

    @property
    def initial_grid(self) -> tuple[int, ...]:
        """Grid on which the input tensor ``T`` must be distributed."""
        return self.scheme.grid_of(self.tree.root.uid)

    def to_json(self) -> str:
        return serial.dumps(
            {
                "meta": self.meta.to_dict(),
                "n_procs": self.n_procs,
                "tree": self.tree.to_dict(),
                "scheme": self.scheme.to_dict(),
                "tree_kind": self.tree_kind,
                "grid_kind": self.grid_kind,
                "flops": self.flops,
                "ttm_volume": self.ttm_volume,
                "regrid_volume": self.regrid_volume,
                "core_order": list(self.core_order),
                "core_scheme": [list(g) for g in self.core_scheme],
                "core_ttm_volume": self.core_ttm_volume,
                "core_regrid_volume": self.core_regrid_volume,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Plan":
        d = serial.loads(text)
        return cls(
            meta=TensorMeta.from_dict(d["meta"]),
            n_procs=int(d["n_procs"]),
            tree=TTMTree.from_dict(d["tree"]),
            scheme=GridScheme.from_dict(d["scheme"]),
            tree_kind=d["tree_kind"],
            grid_kind=d["grid_kind"],
            flops=int(d["flops"]),
            ttm_volume=int(d["ttm_volume"]),
            regrid_volume=int(d["regrid_volume"]),
            core_order=tuple(serial.as_int_tuple(d["core_order"])),
            core_scheme=tuple(
                tuple(serial.as_int_tuple(g)) for g in d["core_scheme"]
            ),
            core_ttm_volume=int(d["core_ttm_volume"]),
            core_regrid_volume=int(d["core_regrid_volume"]),
        )


class Planner:
    """Builds :class:`Plan` objects from metadata.

    Parameters
    ----------
    n_procs:
        Number of ranks the tensors will be distributed over.
    tree:
        One of ``"optimal"`` (section 3.3 DP), ``"chain-natural"``,
        ``"chain-k"``, ``"chain-h"`` (section 3.2 heuristics),
        ``"balanced"`` (Kaya-Ucar), or the ablation policies ``"no_reuse"``
        / ``"eager_reuse"``.
    grid:
        ``"static"`` (optimal static grid, section 4.2) or ``"dynamic"``
        (optimal dynamic scheme, section 4.4).
    """

    def __init__(
        self, n_procs: int, tree: str = "optimal", grid: str = "dynamic"
    ) -> None:
        self.n_procs = check_positive_int(n_procs, "n_procs")
        if tree not in TREE_KINDS:
            raise ValueError(f"tree must be one of {TREE_KINDS}, got {tree!r}")
        if grid not in GRID_KINDS:
            raise ValueError(f"grid must be one of {GRID_KINDS}, got {grid!r}")
        self.tree_kind = tree
        self.grid_kind = grid

    def build_tree(self, meta: TensorMeta) -> TTMTree:
        """Construct the TTM-tree for ``meta`` per the configured kind."""
        kind = self.tree_kind
        if kind == "optimal":
            return optimal_tree(meta)
        if kind in ("no_reuse", "eager_reuse"):
            return optimal_tree(meta, policy=kind)
        if kind == "chain-natural":
            return chain_tree(meta.ndim, natural_ordering(meta))
        if kind == "chain-k":
            return chain_tree(meta.ndim, k_ordering(meta))
        if kind == "chain-h":
            return chain_tree(meta.ndim, h_ordering(meta))
        if kind == "balanced":
            return balanced_tree(meta.ndim)
        raise AssertionError(kind)

    def build_scheme(self, tree: TTMTree, meta: TensorMeta) -> GridScheme:
        """Construct the grid scheme for ``tree`` per the configured kind."""
        if self.grid_kind == "static":
            grid, _ = optimal_static_grid(tree, meta, self.n_procs)
            return static_scheme(tree, meta, grid)
        return optimal_dynamic_scheme(tree, meta, self.n_procs)

    def core_chain_ordering(self, meta: TensorMeta) -> list[int]:
        """Mode order of the new-core chain, matching the tree's heuristic.

        The new core is one more TTM chain; each algorithm orders it the way
        it orders its trees (K-/h-/natural ordering for the prior
        heuristics, the exact flop-optimal chain order for ours).
        """
        if self.tree_kind == "chain-k":
            return k_ordering(meta)
        if self.tree_kind == "chain-h":
            return h_ordering(meta)
        if self.tree_kind in ("chain-natural", "balanced"):
            return natural_ordering(meta)
        return optimal_chain_ordering(meta)

    def build_core_plan(
        self, meta: TensorMeta, initial_grid: tuple[int, ...]
    ) -> tuple[tuple[int, ...], tuple, int, int]:
        """Gridding of the new-core chain, matching the algorithm's spirit.

        Static configurations keep the single static grid for the core chain
        (what prior-work engines do); the dynamic configuration applies the
        paper's dynamic-gridding idea to the chain as well via
        :func:`optimal_path_scheme`.
        """
        order = self.core_chain_ordering(meta)
        if self.grid_kind == "static":
            grids = [tuple(initial_grid)] * meta.ndim
            premult = 0
            ttm_vol = 0
            for mode in order:
                premult |= 1 << mode
                ttm_vol += (initial_grid[mode] - 1) * meta.card_after(premult)
            return tuple(order), tuple(grids), ttm_vol, 0
        grids, ttm_vol, regrid_vol = optimal_path_scheme(
            meta, order, tuple(initial_grid), self.n_procs
        )
        return tuple(order), tuple(grids), ttm_vol, regrid_vol

    def plan(self, meta: TensorMeta) -> Plan:
        """Metadata in, plan out — the paper's planner entry point."""
        tree = self.build_tree(meta)
        scheme = self.build_scheme(tree, meta)
        initial_grid = scheme.grid_of(tree.root.uid)
        core_order, core_scheme, core_ttm, core_regrid = self.build_core_plan(
            meta, initial_grid
        )
        return Plan(
            meta=meta,
            n_procs=self.n_procs,
            tree=tree,
            scheme=scheme,
            tree_kind=self.tree_kind,
            grid_kind=self.grid_kind,
            flops=tree_cost(tree, meta),
            ttm_volume=scheme.ttm_volume,
            regrid_volume=scheme.regrid_volume,
            core_order=core_order,
            core_scheme=core_scheme,
            core_ttm_volume=core_ttm,
            core_regrid_volume=core_regrid,
        )
