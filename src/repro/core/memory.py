"""Peak-memory model for plan execution.

The paper bounds intermediate storage by the tree depth ("by executing the
process via an in-order traversal, we can ensure that the maximum number of
intermediate tensors stored at any point is bounded by the depth of the
tree", section 3.1) and explicitly curtails benchmark tensors to fit the
32 x 16 GB platform (section 6.1). This module makes that footprint a
first-class, exact quantity:

* :func:`traversal_peak_cards` — peak sum of live tensor cardinalities over
  the depth-first execution of a tree (the input tensor ``T`` is resident
  throughout; a node's output stays live while its children execute);
* :func:`max_live_intermediates` — peak *count* of live intermediates,
  which the depth bound caps;
* :func:`plan_peak_bytes_per_rank` — per-rank bytes for a full plan,
  including the transient buffers of the distributed TTM (the partial
  product before reduce-scatter) and of regrids (send+receive staging).
"""

from __future__ import annotations

from repro.core.cost import node_costs
from repro.core.meta import TensorMeta
from repro.core.planner import Plan
from repro.core.trees import Node, TTMTree


def traversal_peak_cards(tree: TTMTree, meta: TensorMeta) -> int:
    """Peak sum of live cardinalities (elements) during DFS execution.

    Counts the input tensor plus every intermediate alive at the deepest
    moment: when executing node ``u``, the outputs of all its ancestors are
    still live (each is reused by later siblings).
    """
    costs = node_costs(tree, meta)
    peak = 0

    def visit(node: Node, live: int) -> None:
        nonlocal peak
        out = costs[node.uid]["out_card"] if node.kind != "root" else 0
        if node.kind == "leaf":
            # the SVD consumes the parent's output; nothing new is stored
            # beyond the (small) Gram matrix, which we neglect here
            peak = max(peak, live)
            return
        now = live + out
        peak = max(peak, now)
        for child in node.children:
            visit(child, now)

    visit(tree.root, meta.cardinality)
    return peak


def max_live_intermediates(tree: TTMTree) -> int:
    """Peak number of simultaneously live intermediate tensors.

    Equals the largest number of TTM ancestors of any node plus one (the
    node's own output) — by construction bounded by the tree depth, the
    paper's section 3.1 claim (checked in the tests).
    """
    peak = 0

    def visit(node: Node, live: int) -> None:
        nonlocal peak
        if node.kind == "ttm":
            live += 1
            peak = max(peak, live)
        for child in node.children:
            visit(child, live)

    visit(tree.root, 0)
    return peak


def plan_peak_bytes_per_rank(
    plan: Plan, *, bytes_per_element: int = 8
) -> dict[str, float]:
    """Per-rank peak memory (bytes) to execute one HOOI invocation.

    Components (all divided by ``P``; valid grids keep blocks balanced to
    within one slab):

    * ``resident`` — peak live tensors along the DFS
      (:func:`traversal_peak_cards`);
    * ``ttm_buffer`` — the largest transient of any TTM: the local partial
      product is ``K_n x local-fibers = q_n x`` the output block, held
      together with the reduce-scatter result;
    * ``regrid_buffer`` — staging for the largest redistribution (send
      intersections + assembled new block, ~2x the tensor's local share).

    Returns the components and their sum under ``"total"``.
    """
    meta = plan.meta
    p = plan.n_procs
    tree = plan.tree
    costs = node_costs(tree, meta)

    resident = traversal_peak_cards(tree, meta) / p

    ttm_buffer = 0.0
    regrid_buffer = 0.0
    for node in tree.nodes:
        if node.kind != "ttm":
            continue
        grid = plan.scheme.grid_of(node.uid)
        out_card = costs[node.uid]["out_card"]
        in_card = costs[node.uid]["in_card"]
        q = grid[node.mode]
        # partial product (q x output block) + scattered result (1 x)
        ttm_buffer = max(ttm_buffer, (q + 1) * out_card / p)
        parent = tree.parent(node)
        if tuple(grid) != tuple(plan.scheme.grid_of(parent.uid)):
            regrid_buffer = max(regrid_buffer, 2 * in_card / p)
    # the core chain reuses the same machinery on ever-smaller tensors;
    # its first step dominates its buffers
    if plan.core_order:
        first_grid = plan.core_scheme[0]
        q = first_grid[plan.core_order[0]]
        first_out = meta.card_after(1 << plan.core_order[0])
        ttm_buffer = max(ttm_buffer, (q + 1) * first_out / p)
        if tuple(first_grid) != tuple(plan.initial_grid):
            regrid_buffer = max(regrid_buffer, 2 * meta.cardinality / p)

    scale = float(bytes_per_element)
    out = {
        "resident": resident * scale,
        "ttm_buffer": ttm_buffer * scale,
        "regrid_buffer": regrid_buffer * scale,
    }
    out["total"] = sum(out.values())
    return out
