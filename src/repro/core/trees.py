"""TTM-trees: the shared-work schedules of the HOOI TTM component.

A TTM-tree (paper section 3.1) is a rooted tree where

* the root represents the input tensor ``T``;
* each of the ``N`` leaves is labeled with a unique new factor matrix
  ``F~_n``;
* each internal node is labeled with a mode and performs
  ``Out(u) = In(u) x_mode F_mode^T``;
* on every root-to-leaf path to ``F~_n`` exactly the modes ``[N] \\ {n}``
  appear, once each (the TTM-chain needed for ``F~_n``).

Node identity: nodes get stable ids in **preorder** (root = 0, children in
list order). Grid schemes (:mod:`repro.core.dynamic_grid`) key off these ids.

This module provides the data structure plus the two prior-work
constructions the paper benchmarks against (section 3.2): chain trees (the
naive N-independent-chains scheme, with a mode-ordering knob) and the
Kaya-Ucar balanced trees (~N log N TTMs via divide and conquer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.meta import TensorMeta
from repro.util.partitions import balanced_split
from repro.util.serial import as_int_tuple

ROOT = "root"
TTM = "ttm"
LEAF = "leaf"


@dataclass
class Node:
    """One tree node.

    ``kind`` is ``"root"`` (holds ``T``; exactly one, at the top), ``"ttm"``
    (internal; ``mode`` = mode multiplied), or ``"leaf"`` (``mode`` = index
    of the factor matrix computed there). ``uid`` is assigned by
    :meth:`TTMTree.reindex` (preorder).
    """

    kind: str
    mode: int | None = None
    children: list["Node"] = field(default_factory=list)
    uid: int = -1

    def __post_init__(self) -> None:
        if self.kind not in (ROOT, TTM, LEAF):
            raise ValueError(f"bad node kind {self.kind!r}")
        if self.kind != ROOT and self.mode is None:
            raise ValueError(f"{self.kind} node requires a mode")
        if self.kind == LEAF and self.children:
            raise ValueError("leaf nodes cannot have children")

    def is_leaf(self) -> bool:
        return self.kind == LEAF

    def is_internal(self) -> bool:
        return self.kind == TTM


class TTMTree:
    """A validated TTM-tree over ``n_modes`` modes."""

    def __init__(self, root: Node, n_modes: int, *, validate: bool = True) -> None:
        if root.kind != ROOT:
            raise ValueError("top node must have kind 'root'")
        self.root = root
        self.n_modes = int(n_modes)
        self.reindex()
        if validate:
            self.validate()

    # -- structure ----------------------------------------------------- #

    def reindex(self) -> None:
        """Assign preorder uids and cache node/parent lookup tables."""
        self._nodes: list[Node] = []
        self._parent: dict[int, int | None] = {}

        def visit(node: Node, parent_uid: int | None) -> None:
            node.uid = len(self._nodes)
            self._nodes.append(node)
            self._parent[node.uid] = parent_uid
            for child in node.children:
                visit(child, node.uid)

        visit(self.root, None)

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes in preorder (root first)."""
        return tuple(self._nodes)

    def node(self, uid: int) -> Node:
        return self._nodes[uid]

    def parent(self, node: Node) -> Node | None:
        puid = self._parent[node.uid]
        return None if puid is None else self._nodes[puid]

    def internal_nodes(self) -> Iterator[Node]:
        return (n for n in self._nodes if n.kind == TTM)

    def leaves(self) -> Iterator[Node]:
        return (n for n in self._nodes if n.kind == LEAF)

    @property
    def n_ttm_ops(self) -> int:
        """Number of TTM operations = number of internal nodes."""
        return sum(1 for _ in self.internal_nodes())

    def depth(self) -> int:
        """Longest root-to-leaf path length in edges (memory bound driver)."""

        def d(node: Node) -> int:
            return 0 if not node.children else 1 + max(d(c) for c in node.children)

        return d(self.root)

    def premultiplied_mask(self, node: Node) -> int:
        """Bitmask of modes applied on the path from the root *through* node.

        For a TTM node this includes its own mode (the paper's set ``P`` of
        the node); for the root it is 0; for a leaf it equals its parent's.
        """
        mask = 0
        cur: Node | None = node
        while cur is not None:
            if cur.kind == TTM:
                mask |= 1 << cur.mode
            cur = self.parent(cur)
        return mask

    # -- validation ------------------------------------------------------ #

    def validate(self) -> None:
        """Enforce the four defining properties of a TTM-tree (section 3.1)."""
        n = self.n_modes
        leaves = list(self.leaves())
        leaf_modes = sorted(leaf.mode for leaf in leaves)
        if leaf_modes != list(range(n)):
            raise ValueError(
                f"tree must have exactly one leaf per mode 0..{n - 1}, "
                f"got leaf modes {leaf_modes}"
            )
        for node in self.internal_nodes():
            if not 0 <= node.mode < n:
                raise ValueError(f"internal node mode {node.mode} out of range")
            if not node.children:
                raise ValueError("internal (ttm) node with no children")
        for leaf in leaves:
            path_mask = self.premultiplied_mask(leaf)
            expected = ((1 << n) - 1) ^ (1 << leaf.mode)
            if path_mask != expected:
                missing = [m for m in range(n) if not (path_mask >> m) & 1 and m != leaf.mode]
                raise ValueError(
                    f"path to leaf F~{leaf.mode} must apply every mode except "
                    f"{leaf.mode} exactly once; missing/duplicated: {missing or 'duplicate on path'}"
                )
            # exactly N-1 internal nodes on the path (no repeated modes)
            count = 0
            cur: Node | None = leaf
            while cur is not None:
                if cur.kind == TTM:
                    count += 1
                cur = self.parent(cur)
            if count != n - 1:
                raise ValueError(
                    f"path to leaf F~{leaf.mode} has {count} internal nodes, "
                    f"expected {n - 1}"
                )

    # -- serialization ----------------------------------------------------#

    def to_dict(self) -> dict:
        def enc(node: Node) -> dict:
            d: dict = {"kind": node.kind}
            if node.mode is not None:
                d["mode"] = node.mode
            if node.children:
                d["children"] = [enc(c) for c in node.children]
            return d

        return {"n_modes": self.n_modes, "root": enc(self.root)}

    @classmethod
    def from_dict(cls, d: dict) -> "TTMTree":
        def dec(nd: dict) -> Node:
            return Node(
                kind=nd["kind"],
                mode=nd.get("mode"),
                children=[dec(c) for c in nd.get("children", [])],
            )

        return cls(dec(d["root"]), n_modes=int(d["n_modes"]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TTMTree(n_modes={self.n_modes}, ttm_ops={self.n_ttm_ops})"

    def pretty(self, meta: TensorMeta | None = None) -> str:
        """ASCII rendering; with ``meta``, annotate cardinalities."""
        lines: list[str] = []

        def visit(node: Node, indent: int, premult: int) -> None:
            pad = "  " * indent
            if node.kind == ROOT:
                label = "T"
            elif node.kind == TTM:
                label = f"x{node.mode}"
                premult |= 1 << node.mode
            else:
                label = f"F~{node.mode}"
            if meta is not None and node.kind != LEAF:
                label += f"  |.|={meta.card_after(premult)}"
            lines.append(pad + label)
            for c in node.children:
                visit(c, indent + 1, premult)

        visit(self.root, 0, 0)
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# prior-work constructions (paper section 3.2)
# ---------------------------------------------------------------------- #


def _check_ordering(ordering: Sequence[int], n_modes: int) -> list[int]:
    ordering = list(as_int_tuple(ordering))
    if sorted(ordering) != list(range(n_modes)):
        raise ValueError(
            f"ordering must be a permutation of 0..{n_modes - 1}, got {ordering}"
        )
    return ordering


def chain_tree(n_modes: int, ordering: Sequence[int] | None = None) -> TTMTree:
    """The naive scheme: N independent chains, ``N (N-1)`` TTMs.

    ``ordering`` is the paper's *mode ordering* (section 3.2): the chain for
    ``F~_n`` multiplies the other modes in the order they appear in
    ``ordering``. Default: natural order ``0..N-1``.
    """
    if n_modes < 1:
        raise ValueError("n_modes must be >= 1")
    order = _check_ordering(
        ordering if ordering is not None else range(n_modes), n_modes
    )
    root = Node(ROOT)
    for target in order:
        chain_modes = [m for m in order if m != target]
        attach = root
        for m in chain_modes:
            nxt = Node(TTM, mode=m)
            attach.children.append(nxt)
            attach = nxt
        attach.children.append(Node(LEAF, mode=target))
    return TTMTree(root, n_modes)


def balanced_tree(n_modes: int, ordering: Sequence[int] | None = None) -> TTMTree:
    """Kaya-Ucar divide-and-conquer tree with ~``N log N`` TTMs.

    Split the modes into halves A, B (``|A| = floor(N/2)``); under the
    current attachment point hang (i) a chain multiplying all of A followed
    by the recursive subtree computing B's factors, and (ii) symmetrically a
    chain of B followed by the subtree for A. The paper notes mode ordering
    does not measurably help balanced trees, so the default natural order is
    what the evaluation uses.
    """
    if n_modes < 1:
        raise ValueError("n_modes must be >= 1")
    order = _check_ordering(
        ordering if ordering is not None else range(n_modes), n_modes
    )

    def build(attach: Node, to_compute: list[int]) -> None:
        if len(to_compute) == 1:
            attach.children.append(Node(LEAF, mode=to_compute[0]))
            return
        first, second = balanced_split(to_compute)
        for chain_part, recurse_part in ((first, second), (second, first)):
            cur = attach
            for m in chain_part:
                nxt = Node(TTM, mode=m)
                cur.children.append(nxt)
                cur = nxt
            build(cur, recurse_part)

    root = Node(ROOT)
    if n_modes == 1:
        root.children.append(Node(LEAF, mode=order[0]))
    else:
        build(root, order)
    return TTMTree(root, n_modes)
