"""Optimal dynamic gridding: the bottom-up DP of paper section 4.4.

For every internal node ``u`` and candidate grid ``g`` define

``base_u(g) = (g_{mode(u)} - 1) |Out(u)| + sum_{children v} D_v(g)``

— the subtree volume when ``In(u)`` is laid out on ``g`` and no regrid
happens *at u* — and

``D_u(g) = dvol*(H(u) | g) = min( base_u(g),  |In(u)| + min_{g'} base_u(g') )``

— regrid at ``u`` to the best grid ``rg*(u) = argmin_{g'} base_u(g')`` or
stay on the parent grid ``g``. Leaves contribute 0. The root holds ``T``
itself: the initial layout is free to choose, so

``dvol*(H) = min_g sum_{children v of root} D_v(g)``.

Note on the paper's formula: section 4.4 abbreviates
``rg*(u) = argmin_g sum_j dvol*(H(v_j)|g)``, dropping the TTM term
``(g_n - 1)|Out(u)|`` even though its own ``vol_1*`` then charges the TTM at
``rg*(u)``'s assignment. We minimize the joint objective (TTM + children),
which is the Bellman-correct step and can only improve the result. The
brute-force cross-check in the tests confirms global optimality of this
recursion.

Complexity: ``O(|H| * psi_valid(P, N))`` table entries, each O(children) —
negligible in practice, which ablation bench C verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import node_costs
from repro.core.grids import Grid, valid_grids
from repro.core.meta import TensorMeta
from repro.core.trees import Node, TTMTree
from repro.core.volume import scheme_volume


@dataclass(frozen=True)
class GridScheme:
    """A dynamic grid scheme: internal-node uid -> grid of its input/output.

    ``ttm_volume`` and ``regrid_volume`` are the exact totals under the
    paper's volume model (elements). ``regrid_nodes`` lists uids where a
    redistribution happens.
    """

    assignment: dict[int, Grid]
    ttm_volume: int
    regrid_volume: int
    regrid_nodes: tuple[int, ...]

    @property
    def total_volume(self) -> int:
        return self.ttm_volume + self.regrid_volume

    def grid_of(self, uid: int) -> Grid:
        return self.assignment[uid]

    def to_dict(self) -> dict:
        return {
            "assignment": {str(k): list(v) for k, v in self.assignment.items()},
            "ttm_volume": self.ttm_volume,
            "regrid_volume": self.regrid_volume,
            "regrid_nodes": list(self.regrid_nodes),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "GridScheme":
        return cls(
            assignment={int(k): tuple(v) for k, v in d["assignment"].items()},
            ttm_volume=int(d["ttm_volume"]),
            regrid_volume=int(d["regrid_volume"]),
            regrid_nodes=tuple(int(x) for x in d["regrid_nodes"]),
        )


def static_scheme(tree: TTMTree, meta: TensorMeta, grid: Grid) -> GridScheme:
    """Wrap a single static grid as a (regrid-free) :class:`GridScheme`."""
    assignment = {
        node.uid: tuple(grid) for node in tree.nodes if node.kind != "leaf"
    }
    ttm, regrid = scheme_volume(tree, meta, assignment)
    assert regrid == 0
    return GridScheme(
        assignment=assignment,
        ttm_volume=ttm,
        regrid_volume=0,
        regrid_nodes=(),
    )


def optimal_dynamic_scheme(
    tree: TTMTree,
    meta: TensorMeta,
    n_procs: int,
    *,
    regrid_cost_scale: float = 1.0,
) -> GridScheme:
    """Compute the volume-optimal dynamic grid scheme for ``tree``.

    ``regrid_cost_scale`` scales the ``|In(u)|`` regrid charge inside the
    DP's *decisions* (ablation B: 0 = free regrids, large = regrids
    effectively banned). The returned scheme's reported volumes always use
    the unscaled paper model.
    """
    if regrid_cost_scale < 0:
        raise ValueError("regrid_cost_scale must be >= 0")
    grids = valid_grids(n_procs, meta)
    costs = node_costs(tree, meta)

    # Bottom-up: base tables for internal nodes.
    base: dict[int, dict[Grid, float]] = {}
    best_regrid_cost: dict[int, float] = {}
    best_regrid_grid: dict[int, Grid] = {}

    def child_dvol(child: Node, grid: Grid) -> float:
        """D_child(grid); leaves contribute 0."""
        if child.kind == "leaf":
            return 0.0
        stay = base[child.uid][grid]
        move = (
            regrid_cost_scale * costs[child.uid]["in_card"]
            + best_regrid_cost[child.uid]
        )
        return stay if stay <= move else move

    def visit(node: Node) -> None:
        for child in node.children:
            visit(child)
        if node.kind != "ttm":
            return
        out_card = costs[node.uid]["out_card"]
        table: dict[Grid, float] = {}
        for g in grids:
            vol = (g[node.mode] - 1) * out_card
            for child in node.children:
                vol += child_dvol(child, g)
            table[g] = vol
        base[node.uid] = table
        # grids is sorted; min over items with <= keeps the lexicographically
        # smallest argmin for determinism.
        bg, bc = None, None
        for g in grids:
            c = table[g]
            if bc is None or c < bc:
                bg, bc = g, c
        best_regrid_grid[node.uid] = bg
        best_regrid_cost[node.uid] = bc

    visit(tree.root)

    # Root: choose the initial layout of T (no regrid charge).
    best_root_grid, best_total = None, None
    for g in grids:
        total = sum(child_dvol(c, g) for c in tree.root.children)
        if best_total is None or total < best_total:
            best_root_grid, best_total = g, total
    assert best_root_grid is not None

    # Top-down reconstruction.
    assignment: dict[int, Grid] = {tree.root.uid: best_root_grid}
    regrid_nodes: list[int] = []

    def assign(node: Node, parent_grid: Grid) -> None:
        if node.kind == "leaf":
            return
        stay = base[node.uid][parent_grid]
        move = (
            regrid_cost_scale * costs[node.uid]["in_card"]
            + best_regrid_cost[node.uid]
        )
        if stay <= move:
            grid = parent_grid
        else:
            grid = best_regrid_grid[node.uid]
            regrid_nodes.append(node.uid)
        assignment[node.uid] = grid
        for child in node.children:
            assign(child, grid)

    for child in tree.root.children:
        assign(child, best_root_grid)

    ttm_vol, regrid_vol = scheme_volume(tree, meta, assignment)
    return GridScheme(
        assignment=assignment,
        ttm_volume=ttm_vol,
        regrid_volume=regrid_vol,
        regrid_nodes=tuple(sorted(regrid_nodes)),
    )


def optimal_path_scheme(
    meta: TensorMeta,
    order: list[int],
    initial_grid: Grid | None,
    n_procs: int,
) -> tuple[list[Grid], int, int]:
    """Dynamic gridding for a single TTM *chain* (the new-core update).

    The new-core computation ``G~ = T x F~^T ...`` is one chain over all
    modes; its input ``T`` already lives on ``initial_grid`` (no free choice
    at the root, unlike :func:`optimal_dynamic_scheme`). The same
    stay-or-regrid recurrence applies along the path:

    ``D(i, g) = min( (g_{m_i} - 1) out_i + D(i+1, g),``
    ``            |in_i| + min_{g'} [(g'_{m_i} - 1) out_i + D(i+1, g')] )``

    Returns ``(grids per chain position, ttm_volume, regrid_volume)``.
    Applying the paper's dynamic-gridding idea to this chain is the natural
    "recast for STHOSVD/core updates" its introduction mentions.

    ``initial_grid=None`` lets the DP also choose the input tensor's layout
    (free, like the tree DP's root) — the STHOSVD use case, where no prior
    phase pins the distribution of ``T``.
    """
    if sorted(order) != list(range(meta.ndim)):
        raise ValueError(f"order must be a permutation, got {order}")
    grids = valid_grids(n_procs, meta)
    if initial_grid is not None:
        initial_grid = tuple(int(q) for q in initial_grid)
        if initial_grid not in set(grids):
            raise ValueError(f"initial grid {initial_grid} is not a valid grid")

    # Cardinalities along the chain.
    cards = [meta.cardinality]
    premult = 0
    for mode in order:
        premult |= 1 << mode
        cards.append(meta.card_after(premult))

    n_steps = len(order)
    # Backward DP: cost-to-go from step i given current grid.
    nxt: dict[Grid, int] = {g: 0 for g in grids}
    choose_regrid: list[dict[Grid, Grid | None]] = [dict() for _ in range(n_steps)]
    for i in range(n_steps - 1, -1, -1):
        mode = order[i]
        out_card = cards[i + 1]
        in_card = cards[i]
        # best regrid option at this step (shared across parent grids)
        best_g, best_c = None, None
        for g in grids:
            c = (g[mode] - 1) * out_card + nxt[g]
            if best_c is None or c < best_c:
                best_g, best_c = g, c
        cur: dict[Grid, int] = {}
        for g in grids:
            stay = (g[mode] - 1) * out_card + nxt[g]
            move = in_card + best_c
            if stay <= move:
                cur[g] = stay
                choose_regrid[i][g] = None
            else:
                cur[g] = move
                choose_regrid[i][g] = best_g
        nxt = cur

    # Forward reconstruction.
    scheme: list[Grid] = []
    if initial_grid is None:
        # free layout choice for T: best cost-to-go, no regrid charge
        g = min(grids, key=lambda cand: (nxt[cand], cand))
    else:
        g = initial_grid
    ttm_vol = 0
    regrid_vol = 0
    for i, mode in enumerate(order):
        target = choose_regrid[i][g]
        if target is not None:
            regrid_vol += cards[i]
            g = target
        ttm_vol += (g[mode] - 1) * cards[i + 1]
        scheme.append(g)
    return scheme, ttm_vol, regrid_vol


def brute_force_dynamic_volume(
    tree: TTMTree, meta: TensorMeta, n_procs: int, *, limit: int = 2_000_000
) -> int:
    """Exhaustive minimum over *all* grid schemes (test oracle, tiny inputs).

    Enumerates every assignment of valid grids to internal nodes and the
    root. Guarded by ``limit`` on the number of assignments.
    """
    from itertools import product

    grids = valid_grids(n_procs, meta)
    uids = [n.uid for n in tree.nodes if n.kind != "leaf"]
    n_assignments = len(grids) ** len(uids)
    if n_assignments > limit:
        raise ValueError(
            f"{n_assignments} assignments exceed limit {limit}; shrink the input"
        )
    best: int | None = None
    for combo in product(grids, repeat=len(uids)):
        assignment = dict(zip(uids, combo))
        ttm, regrid = scheme_volume(tree, meta, assignment)
        total = ttm + regrid
        if best is None or total < best:
            best = total
    assert best is not None
    return best
