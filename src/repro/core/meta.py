"""Tensor/core metadata: the planner's entire input.

The paper stresses (sections 5, 6.1) that HOOI's computational load and
communication volume depend only on the *metadata* — the input dimension
lengths ``L_n`` and core dimension lengths ``K_n`` — never on tensor values.
:class:`TensorMeta` packages that pair and provides the exact-integer
quantities every planner component uses:

* cost factor ``K_n`` and compression factor ``h_n = K_n / L_n`` per mode
  (section 3.1);
* cardinality of any partially-multiplied tensor ``T[P]``:
  ``|T[P]| = prod_{n in P} K_n * prod_{n not in P} L_n`` — an exact integer,
  so the DPs never touch floating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.util.validation import check_core_dims, check_dims


@dataclass(frozen=True)
class TensorMeta:
    """Metadata of one HOOI input: tensor dims ``L`` and core dims ``K``."""

    dims: tuple[int, ...]
    core: tuple[int, ...]

    def __post_init__(self) -> None:
        dims = check_dims(self.dims, "dims")
        core = check_core_dims(self.core, dims, "core")
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "core", core)

    # -- basic quantities ------------------------------------------------ #

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def cardinality(self) -> int:
        """``|T|`` — number of elements of the input tensor."""
        return math.prod(self.dims)

    @property
    def core_cardinality(self) -> int:
        """``|G|`` — number of elements of the core tensor."""
        return math.prod(self.core)

    def h(self, mode: int) -> Fraction:
        """Compression factor ``h_n = K_n / L_n`` (exact rational, <= 1)."""
        return Fraction(self.core[mode], self.dims[mode])

    @property
    def compression_ratio(self) -> float:
        """``|T| / (|G| + sum |F_n|)`` — the data-compression headline."""
        stored = self.core_cardinality + sum(
            ell * k for ell, k in zip(self.dims, self.core)
        )
        return self.cardinality / stored

    # -- partially multiplied tensors ------------------------------------ #

    def card_after(self, premultiplied: int) -> int:
        """``|T[P]|`` for the bitmask ``premultiplied`` of applied modes.

        Mode ``n`` is applied iff bit ``n`` of the mask is set; applied modes
        have length ``K_n``, untouched modes ``L_n``.
        """
        card = 1
        for n in range(self.ndim):
            card *= self.core[n] if (premultiplied >> n) & 1 else self.dims[n]
        return card

    def shape_after(self, premultiplied: int) -> tuple[int, ...]:
        """Shape of ``T[P]`` under the same bitmask convention."""
        return tuple(
            self.core[n] if (premultiplied >> n) & 1 else self.dims[n]
            for n in range(self.ndim)
        )

    # -- serialization ---------------------------------------------------- #

    def to_dict(self) -> dict:
        return {"dims": list(self.dims), "core": list(self.core)}

    @classmethod
    def from_dict(cls, d: dict) -> "TensorMeta":
        return cls(dims=tuple(d["dims"]), core=tuple(d["core"]))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(map(str, self.dims))
        core = "x".join(map(str, self.core))
        return f"{dims} -> {core}"
