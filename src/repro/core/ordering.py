"""Mode-ordering heuristics and the exact full-chain ordering.

Prior-work heuristics (paper section 3.2, due to Austin et al.):

* **K-ordering** — increasing cost factor ``K_n``: cheap multiplications
  first, while the tensor is large.
* **h-ordering** — increasing compression factor ``h_n = K_n / L_n``:
  shrink the tensor as fast as possible at the top of the tree.

For a *single full chain over all N modes* (the new-core computation
``G~ = T x_1 F~_1^T ... x_N F~_N^T``) the optimal order admits an exact
exchange-argument characterization implemented by
:func:`optimal_chain_ordering`: place ``a`` before ``b`` iff
``K_a L_b (L_a + K_b) <= K_b L_a (L_b + K_a)``, derived from comparing the
two-mode chain costs ``K_a + K_b h_a`` vs ``K_b + K_a h_b``.
"""

from __future__ import annotations

from functools import cmp_to_key

from repro.core.meta import TensorMeta


def natural_ordering(meta: TensorMeta) -> list[int]:
    """The input mode order ``0..N-1`` (the paper's 'naive' ordering)."""
    return list(range(meta.ndim))


def k_ordering(meta: TensorMeta) -> list[int]:
    """Modes sorted by increasing ``K_n`` (ties by mode index)."""
    return sorted(range(meta.ndim), key=lambda n: (meta.core[n], n))


def h_ordering(meta: TensorMeta) -> list[int]:
    """Modes sorted by increasing ``h_n = K_n / L_n`` (ties by mode index).

    Comparison is exact: ``h_a < h_b`` iff ``K_a L_b < K_b L_a``.
    """
    return sorted(range(meta.ndim), key=lambda n: (meta.h(n), n))


def optimal_chain_ordering(meta: TensorMeta, modes: list[int] | None = None) -> list[int]:
    """Exact minimum-FLOP order for one TTM chain over ``modes``.

    The pairwise exchange criterion is a total preorder (it is equivalent to
    sorting by the scalar ``K_n L_n / (L_n - K_n)`` when ``K_n < L_n``, with
    ``K_n = L_n`` modes last), so an ordinary comparison sort yields a global
    optimum. We keep the integer cross-product form to stay exact.
    """
    if modes is None:
        modes = list(range(meta.ndim))

    def cmp(a: int, b: int) -> int:
        lhs = meta.core[a] * meta.dims[b] * (meta.dims[a] + meta.core[b])
        rhs = meta.core[b] * meta.dims[a] * (meta.dims[b] + meta.core[a])
        if lhs < rhs:
            return -1
        if lhs > rhs:
            return 1
        return -1 if a < b else (1 if a > b else 0)

    return sorted(modes, key=cmp_to_key(cmp))
