"""Exhaustive enumeration of TTM-trees for small N.

The paper notes a naive search over all TTM-trees is prohibitive
(``((N-1)!)^N`` chain realizations alone) but that the DP's state space can
be re-used to *enumerate* the binary trees. That is what we do here: walk the
same (P, Q) state space as :mod:`repro.core.opt_tree`, emitting every
distinct sibling-list realization. Used by the tests to certify DP
optimality for N <= 4 and to cross-check Lemma 3.1 (restriction to two-way
splits loses nothing).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.cost import tree_cost
from repro.core.meta import TensorMeta
from repro.core.trees import LEAF, ROOT, TTM, Node, TTMTree
from repro.util.partitions import iter_nonempty_proper_submasks


def _subtrees(pmask: int, qmask: int, full: int) -> Iterator[tuple]:
    """Yield canonical encodings of sibling lists for state (P, Q).

    Encoding: a sorted tuple of sibling encodings; a sibling is
    ``("leaf", mode)`` or ``("ttm", mode, children-encoding)``. Sorting makes
    sibling order canonical so each distinct tree is produced exactly once.
    """
    rmask = full & ~pmask & ~qmask
    if qmask.bit_count() == 1 and rmask == 0:
        yield (("leaf", qmask.bit_length() - 1),)
        return
    seen: set[tuple] = set()
    r = rmask
    while r:
        bit = r & -r
        mode = bit.bit_length() - 1
        r ^= bit
        for children in _subtrees(pmask | bit, qmask, full):
            enc = (("ttm", mode, children),)
            if enc not in seen:
                seen.add(enc)
                yield enc
    if qmask.bit_count() >= 2:
        for q1 in iter_nonempty_proper_submasks(qmask):
            q2 = qmask ^ q1
            if q1 > q2:
                continue
            for left in _subtrees(pmask, q1, full):
                for right in _subtrees(pmask, q2, full):
                    enc = tuple(sorted(left + right))
                    if enc not in seen:
                        seen.add(enc)
                        yield enc


def _decode(encoding: tuple) -> list[Node]:
    out: list[Node] = []
    for item in encoding:
        if item[0] == "leaf":
            out.append(Node(LEAF, mode=item[1]))
        else:
            out.append(Node(TTM, mode=item[1], children=_decode(item[2])))
    return out


def enumerate_trees(n_modes: int, limit: int | None = None) -> Iterator[TTMTree]:
    """Yield every distinct TTM-tree over ``n_modes`` modes.

    Only trees reachable by the reuse/split grammar are produced; by
    Lemma 3.1 these include a cost-optimal tree for every metadata. The count
    explodes quickly — callers should keep ``n_modes <= 4`` or pass
    ``limit``.
    """
    if n_modes < 1:
        raise ValueError("n_modes must be >= 1")
    full = (1 << n_modes) - 1
    count = 0
    for enc in _subtrees(0, full, full):
        yield TTMTree(Node(ROOT, children=_decode(enc)), n_modes)
        count += 1
        if limit is not None and count >= limit:
            return


def brute_force_optimal_cost(meta: TensorMeta, limit: int | None = None) -> int:
    """Minimum tree cost by exhaustive enumeration (test oracle)."""
    best: int | None = None
    for tree in enumerate_trees(meta.ndim, limit):
        c = tree_cost(tree, meta)
        if best is None or c < best:
            best = c
    assert best is not None
    return best
