"""Optimal static grid by exhaustive search (paper section 4.2).

The search space is the ``psi(P, N)`` ordered factorizations of ``P``
restricted to valid grids; the paper notes the scan is negligible even at
``P = 2^20, N = 10`` once parallelized. Here a straight scan suffices — the
evaluation uses ``P = 32``.
"""

from __future__ import annotations

from repro.core.cost import node_costs
from repro.core.grids import Grid, valid_grids
from repro.core.meta import TensorMeta
from repro.core.trees import TTMTree


def mode_output_weights(tree: TTMTree, meta: TensorMeta) -> list[int]:
    """``S_m = sum of |Out(u)| over internal nodes with mode m``.

    The static volume of grid ``g`` is then the linear form
    ``sum_m (g_m - 1) S_m`` — evaluating a candidate grid costs O(N) instead
    of O(|H|), which matters when scanning psi(P, N) grids per tensor across
    an 18k-tensor benchmark.
    """
    costs = node_costs(tree, meta)
    weights = [0] * meta.ndim
    for node in tree.internal_nodes():
        weights[node.mode] += costs[node.uid]["out_card"]
    return weights


def optimal_static_grid(
    tree: TTMTree, meta: TensorMeta, n_procs: int
) -> tuple[Grid, int]:
    """Return ``(grid, volume)`` minimizing TTM volume over valid grids.

    Ties break toward the lexicographically smallest grid so results are
    reproducible across runs and platforms (``valid_grids`` is sorted and
    only strictly better volumes replace the incumbent).
    """
    weights = mode_output_weights(tree, meta)
    best_grid: Grid | None = None
    best_vol: int | None = None
    for grid in valid_grids(n_procs, meta):
        vol = sum((q - 1) * s for q, s in zip(grid, weights))
        if best_vol is None or vol < best_vol:
            best_grid, best_vol = grid, vol
    assert best_grid is not None and best_vol is not None
    return best_grid, best_vol
