"""Processor grids (paper section 4.1-4.2).

A grid for ``P`` processors and an ``N``-dimensional tensor is a tuple
``g = (q_0, ..., q_{N-1})`` with ``prod q_n = P``; imposing it on a tensor
block-partitions the tensor into ``P`` bricks. The number of grids is

``psi(P, N) = prod_i C(e_i + N - 1, N - 1)``

over the prime factorization ``P = prod p_i^{e_i}`` (Table 1 of the paper).
A grid is **valid** for metadata ``meta`` when ``q_n <= K_n`` for every
mode: then no processor owns an empty block of any tensor arising during
HOOI (intermediate tensors have mode-n length ``K_n`` or ``L_n >= K_n``).
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.core.meta import TensorMeta
from repro.util.partitions import (
    count_ordered_factorizations,
    ordered_factorizations,
)
from repro.util.validation import check_positive_int

Grid = tuple[int, ...]


def psi(p: int, n: int) -> int:
    """Number of grids: ordered factorizations of ``p`` into ``n`` factors."""
    return count_ordered_factorizations(p, n)


def enumerate_grids(p: int, n: int) -> Iterator[Grid]:
    """Yield every grid (valid or not) for ``p`` ranks in ``n`` dimensions."""
    p = check_positive_int(p, "p")
    n = check_positive_int(n, "n")
    yield from ordered_factorizations(p, n)


def is_valid_grid(grid: Grid, meta: TensorMeta) -> bool:
    """Check the paper's validity constraint ``q_n <= K_n`` for all modes."""
    if len(grid) != meta.ndim:
        raise ValueError(
            f"grid has {len(grid)} entries but meta has {meta.ndim} modes"
        )
    return all(q <= k for q, k in zip(grid, meta.core))


def has_valid_grid(p: int, meta: TensorMeta) -> bool:
    """Whether any valid grid exists for ``p`` ranks (early-exit check)."""
    return any(is_valid_grid(g, meta) for g in enumerate_grids(p, meta.ndim))


def feasible_procs(meta: TensorMeta, p: int) -> int:
    """Largest processor count ``<= p`` that admits a valid grid.

    ``p = 1`` is always feasible (the all-ones grid), so this never fails.
    Used when a processor count comes from a machine default (cores - 1,
    say) rather than an explicit request: a prime count larger than every
    core dim would otherwise make planning impossible.
    """
    p = check_positive_int(p, "p")
    for candidate in range(p, 0, -1):
        if has_valid_grid(candidate, meta):
            return candidate
    raise AssertionError("unreachable: P=1 is always feasible")


def valid_grids(p: int, meta: TensorMeta) -> list[Grid]:
    """All valid grids for ``p`` ranks, in deterministic (sorted) order.

    Raises ``ValueError`` when no valid grid exists (``p > prod K_n``), with
    a message pointing at the offending constraint.
    """
    grids = sorted(g for g in enumerate_grids(p, meta.ndim) if is_valid_grid(g, meta))
    if not grids:
        raise ValueError(
            f"no valid grid: P={p} cannot be factored with q_n <= K_n={meta.core}"
        )
    return grids


def svd_regrid_target(
    grid: Grid, lengths: tuple[int, ...], mode: int
) -> Grid | None:
    """Grid to compute a mode-``mode`` Gram on: ``q_mode = 1`` if possible.

    The Gram of the mode-n unfolding needs *full-length* mode-n fibers on
    each rank. Rather than allgathering fiber segments within the mode
    group — volume ``(q_n - 1) |Z|``, which explodes for large ``q_n`` —
    the engine regrids ``Z`` onto a grid with ``q_n = 1`` (volume at most
    ``|Z|``, and ``|Z|`` is already compressed along every other mode).

    Deterministic choice shared by engine and model: if ``grid`` already has
    ``q_mode = 1`` return it unchanged; otherwise pick, among factorizations
    of ``P`` with ``q_mode = 1`` and ``q_j <= lengths[j]``, the one agreeing
    with ``grid`` on the most modes (then lexicographically smallest).
    Returns ``None`` when no such factorization exists (the caller falls
    back to the allgather path).
    """
    if grid[mode] == 1:
        return grid
    p = math.prod(grid)
    best_key: tuple[int, Grid] | None = None
    best_cand: Grid | None = None
    for cand in ordered_factorizations(p, len(grid)):
        if cand[mode] != 1:
            continue
        if any(q > ell for q, ell in zip(cand, lengths)):
            continue
        agreement = sum(1 for a, b in zip(cand, grid) if a == b)
        key = (-agreement, cand)
        if best_key is None or key < best_key:
            best_key, best_cand = key, cand
    return best_cand
