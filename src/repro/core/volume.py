"""Communication-volume semantics (paper sections 4.1 and 4.3).

* TTM at node ``u`` (mode ``n``) with its input distributed on grid ``g``:
  ``vol(u, g) = (g_n - 1) * |Out(u)|`` — the reduce-scatter over mode-n
  fibers.
* Regridding a tensor ``X`` from one grid to another: ``|X|`` (the model
  charges a full redistribution; the engine reports the exact moved-element
  count, which is <= this).

A **grid scheme** maps every internal node to the grid its *input* (and
output) live on; see :mod:`repro.core.dynamic_grid`. A static grid is the
constant scheme.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.cost import node_costs
from repro.core.grids import Grid, is_valid_grid
from repro.core.meta import TensorMeta
from repro.core.trees import TTMTree


def static_volume(tree: TTMTree, meta: TensorMeta, grid: Grid) -> int:
    """Total TTM communication volume of the tree under one static grid."""
    if not is_valid_grid(grid, meta):
        raise ValueError(f"grid {grid} is not valid for meta {meta}")
    costs = node_costs(tree, meta)
    total = 0
    for node in tree.internal_nodes():
        total += (grid[node.mode] - 1) * costs[node.uid]["out_card"]
    return total


def node_volumes(
    tree: TTMTree, meta: TensorMeta, scheme: Mapping[int, Grid]
) -> dict[int, dict[str, int]]:
    """Per-node TTM and regrid volumes under a (possibly dynamic) scheme.

    ``scheme`` maps internal-node uid -> grid of that node's input/output.
    The root's grid is ``scheme[root.uid]`` — the initial distribution of
    ``T`` — and incurs no regrid charge. A node whose grid differs from its
    parent's pays ``|In(u)|``. Leaves carry no entry (they inherit the
    parent grid).
    """
    costs = node_costs(tree, meta)
    out: dict[int, dict[str, int]] = {}
    root_uid = tree.root.uid
    if root_uid not in scheme:
        raise ValueError("scheme must assign a grid to the root (initial layout)")
    for node in tree.nodes:
        if node.kind == "leaf":
            continue
        grid = scheme.get(node.uid)
        if grid is None:
            raise ValueError(f"scheme missing grid for node uid={node.uid}")
        if not is_valid_grid(grid, meta):
            raise ValueError(f"grid {grid} at node uid={node.uid} is invalid")
        entry = {"ttm": 0, "regrid": 0}
        if node.kind == "ttm":
            entry["ttm"] = (grid[node.mode] - 1) * costs[node.uid]["out_card"]
            parent = tree.parent(node)
            parent_grid = scheme[parent.uid]
            if tuple(grid) != tuple(parent_grid):
                entry["regrid"] = costs[node.uid]["in_card"]
        out[node.uid] = entry
    return out


def scheme_volume(
    tree: TTMTree, meta: TensorMeta, scheme: Mapping[int, Grid]
) -> tuple[int, int]:
    """Return ``(ttm_volume, regrid_volume)`` totals of a grid scheme."""
    vols = node_volumes(tree, meta, scheme)
    ttm = sum(v["ttm"] for v in vols.values())
    regrid = sum(v["regrid"] for v in vols.values())
    return ttm, regrid
