"""The paper's contribution: optimal TTM-trees and optimal (dynamic) gridding.

Layout
------
* :mod:`repro.core.meta` — ``TensorMeta``: the (dims, core) metadata pair the
  planner operates on. All cost/volume arithmetic is exact-integer.
* :mod:`repro.core.trees` — TTM-tree data structure, validation, and the
  chain / balanced constructions of prior work (paper section 3.2).
* :mod:`repro.core.ordering` — K-ordering and h-ordering heuristics plus the
  exact exchange-argument ordering for full chains.
* :mod:`repro.core.cost` — FLOP cost of a tree (paper section 3.1).
* :mod:`repro.core.opt_tree` — the O(4^N) optimal-tree DP (section 3.3).
* :mod:`repro.core.enumerate_trees` — exhaustive binary-tree enumeration used
  to cross-check the DP on small N.
* :mod:`repro.core.grids` — processor grids and the psi(P, N) count
  (section 4.2).
* :mod:`repro.core.volume` — communication-volume semantics (section 4.1/4.3).
* :mod:`repro.core.static_grid` — optimal static grid by exhaustive search.
* :mod:`repro.core.dynamic_grid` — the optimal dynamic-gridding DP
  (section 4.4).
* :mod:`repro.core.planner` — the paper's "planner" module (section 5):
  metadata in, (tree, grid scheme) plan out.
"""

from repro.core.meta import TensorMeta
from repro.core.trees import Node, TTMTree, chain_tree, balanced_tree
from repro.core.ordering import (
    natural_ordering,
    k_ordering,
    h_ordering,
    optimal_chain_ordering,
)
from repro.core.cost import tree_cost, node_costs, normalized_tree_cost
from repro.core.opt_tree import optimal_tree, optimal_tree_cost
from repro.core.enumerate_trees import enumerate_trees, brute_force_optimal_cost
from repro.core.grids import enumerate_grids, valid_grids, psi, is_valid_grid
from repro.core.volume import static_volume, scheme_volume, node_volumes
from repro.core.static_grid import optimal_static_grid
from repro.core.dynamic_grid import GridScheme, optimal_dynamic_scheme, static_scheme
from repro.core.planner import Plan, Planner

__all__ = [
    "TensorMeta",
    "Node",
    "TTMTree",
    "chain_tree",
    "balanced_tree",
    "natural_ordering",
    "k_ordering",
    "h_ordering",
    "optimal_chain_ordering",
    "tree_cost",
    "node_costs",
    "normalized_tree_cost",
    "optimal_tree",
    "optimal_tree_cost",
    "enumerate_trees",
    "brute_force_optimal_cost",
    "enumerate_grids",
    "valid_grids",
    "psi",
    "is_valid_grid",
    "static_volume",
    "scheme_volume",
    "node_volumes",
    "optimal_static_grid",
    "GridScheme",
    "optimal_dynamic_scheme",
    "static_scheme",
    "Plan",
    "Planner",
]
