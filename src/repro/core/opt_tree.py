"""Optimal TTM-tree construction: the O(4^N) dynamic program (section 3.3).

States are the paper's triples ``(P, Q, R)`` encoded as two bitmasks —
``P`` (pre-multiplied modes) and ``Q`` (factors still to compute under this
point); ``R = [N] \\ P \\ Q`` (reusable modes) is implicit. The value
``cost*(P, Q)`` is the least FLOP count of any partial TTM-tree for the
triple, computed by the recurrence

* **reuse** (needs ``R != 0``): pick ``n in R``, multiply ``T[P]`` along
  ``n`` once and share it with every factor in ``Q``:
  ``K_n |T[P]| + cost*(P + n, Q)``;
* **split** (needs ``|Q| >= 2``): partition ``Q = Q1 + Q2`` and solve the
  halves independently: ``cost*(P, Q1) + cost*(P, Q2)``.

Base case ``|Q| = 1, R = 0``: the chain is complete, a leaf (SVD) remains,
cost 0. Lemma 3.1 (an optimal tree may be assumed binary) justifies
considering only two-way splits.

The module also exposes two deliberately handicapped policies used by the
ablation benchmarks:

* ``policy="no_reuse"`` — reuse is permitted only when forced
  (``|Q| = 1``); the result is the best *forest of independent chains*,
  i.e. the chain-tree family with per-chain optimal orderings.
* ``policy="eager_reuse"`` — whenever ``R != 0`` the DP must reuse (it still
  chooses the best mode). The paper's section 3.3 remark states this greedy
  is suboptimal; the ablation quantifies by how much.
"""

from __future__ import annotations

from repro.core.cost import tree_cost
from repro.core.meta import TensorMeta
from repro.core.trees import LEAF, ROOT, TTM, Node, TTMTree
from repro.util.partitions import iter_nonempty_proper_submasks

_POLICIES = ("optimal", "no_reuse", "eager_reuse")


def _solve(meta: TensorMeta, policy: str) -> dict[tuple[int, int], tuple[int, tuple]]:
    """Fill the DP table: ``(P, Q) -> (cost, choice)``.

    ``choice`` is ``("leaf",)``, ``("reuse", n)`` or ``("split", Q1)``.
    Tie-breaking is deterministic: reuse options (ascending mode) are
    examined before splits (ascending ``Q1`` mask); strictly better costs
    win, so the first-found minimum is kept.
    """
    if policy not in _POLICIES:
        raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
    n = meta.ndim
    full = (1 << n) - 1
    memo: dict[tuple[int, int], tuple[int, tuple]] = {}

    def best(pmask: int, qmask: int) -> tuple[int, tuple]:
        key = (pmask, qmask)
        hit = memo.get(key)
        if hit is not None:
            return hit
        rmask = full & ~pmask & ~qmask
        q_size = qmask.bit_count()
        if q_size == 1 and rmask == 0:
            result = (0, ("leaf",))
            memo[key] = result
            return result

        best_cost: int | None = None
        best_choice: tuple | None = None

        reuse_allowed = rmask != 0 and (policy != "no_reuse" or q_size == 1)
        if reuse_allowed:
            in_card = meta.card_after(pmask)
            r = rmask
            while r:
                bit = r & -r
                mode = bit.bit_length() - 1
                r ^= bit
                sub_cost, _ = best(pmask | bit, qmask)
                cost = meta.core[mode] * in_card + sub_cost
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_choice = ("reuse", mode)

        split_allowed = q_size >= 2 and not (policy == "eager_reuse" and rmask != 0)
        if split_allowed:
            for q1 in iter_nonempty_proper_submasks(qmask):
                q2 = qmask ^ q1
                if q1 > q2:  # visit each unordered partition once
                    continue
                c1, _ = best(pmask, q1)
                c2, _ = best(pmask, q2)
                cost = c1 + c2
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_choice = ("split", q1)

        if best_cost is None:
            raise RuntimeError(
                f"no feasible action at state P={pmask:b} Q={qmask:b} "
                f"(policy={policy})"
            )
        memo[key] = (best_cost, best_choice)
        return memo[key]

    best(0, full)
    return memo


def _build(
    memo: dict[tuple[int, int], tuple[int, tuple]],
    pmask: int,
    qmask: int,
) -> list[Node]:
    """Reconstruct the sibling list hanging at state ``(P, Q)``."""
    _, choice = memo[(pmask, qmask)]
    if choice[0] == "leaf":
        mode = qmask.bit_length() - 1
        return [Node(LEAF, mode=mode)]
    if choice[0] == "reuse":
        mode = choice[1]
        children = _build(memo, pmask | (1 << mode), qmask)
        return [Node(TTM, mode=mode, children=children)]
    q1 = choice[1]
    return _build(memo, pmask, q1) + _build(memo, pmask, qmask ^ q1)


def optimal_tree(meta: TensorMeta, policy: str = "optimal") -> TTMTree:
    """Return a minimum-FLOP TTM-tree for ``meta`` under ``policy``.

    The returned tree's :func:`repro.core.cost.tree_cost` equals
    :func:`optimal_tree_cost` (asserted here — the reconstruction is
    self-checking).
    """
    memo = _solve(meta, policy)
    full = (1 << meta.ndim) - 1
    root = Node(ROOT, children=_build(memo, 0, full))
    tree = TTMTree(root, meta.ndim)
    expected = memo[(0, full)][0]
    actual = tree_cost(tree, meta)
    if actual != expected:
        raise AssertionError(
            f"DP reconstruction mismatch: table says {expected}, tree costs {actual}"
        )
    return tree


def optimal_tree_cost(meta: TensorMeta, policy: str = "optimal") -> int:
    """Minimum FLOP count over all TTM-trees (exact integer)."""
    memo = _solve(meta, policy)
    full = (1 << meta.ndim) - 1
    return memo[(0, full)][0]
