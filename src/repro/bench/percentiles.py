"""Percentile curves: the summary the paper's Figures 10-11 plot.

"Normalized time of t on percentile value k means that for k% of tensors
the normalized execution time is less than t." — i.e. the empirical
quantile function, which :func:`percentile_curve` computes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def percentile_curve(
    values: Sequence[float], points: Sequence[int] = tuple(range(0, 101, 10))
) -> dict[int, float]:
    """Empirical quantiles of ``values`` at the given percentile points.

    Infinities (communication-free baselines) are kept: they sort last, so
    low percentiles stay finite and informative.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    finite = arr[np.isfinite(arr)]
    out: dict[int, float] = {}
    for p in points:
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of [0, 100]")
        rank = p / 100 * (arr.size - 1)
        idx = int(round(rank))
        srt = np.sort(arr)  # inf sorts to the end
        val = srt[min(idx, arr.size - 1)]
        out[p] = float(val) if np.isfinite(val) else float("inf")
    del finite
    return out


def curve_summary(values: Sequence[float]) -> dict[str, float]:
    """Min / median / max of a ratio distribution (paper-style headlines)."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    finite = arr[np.isfinite(arr)]
    src = finite if finite.size else arr
    return {
        "min": float(src[0]),
        "median": float(np.median(src)),
        "max": float(src[-1]),
    }
