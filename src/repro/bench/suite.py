"""The paper's tensor benchmark (section 6.1) and real-tensor metadata.

Synthetic suite recipe: per dimension, a length ``L_n in {20, 50, 100, 400}``
and a compression factor ``L_n / K_n in {1.25, 2, 5, 10}`` (the paper writes
``h_n`` for these values; all sixteen ``(L, K)`` combinations are integral);
cardinality capped at ``8e9``; 5-D and 6-D suites.

Counting note (documented in DESIGN.md section 5): tensors are canonical up
to mode permutation, so we enumerate **multisets** of ``(L, h)`` pairs,
yielding 10312 5-D and 7710 6-D inputs. The paper reports 1134 and 642 —
counts its stated recipe does not produce under any reading we tried
(ordered, multiset, independent multisets, byte-vs-element caps).
:func:`paper_subsample` draws a deterministic evenly-spaced subsample of
exactly the paper's sizes from the sorted canonical enumeration, which is
what the headline benches use; pass ``full=True`` to sweeps to use
everything.

Real tensors (Table 2): combustion-simulation metadata; the paper fills
them with random data because cost depends only on metadata, and so do we.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations_with_replacement

from repro.core.meta import TensorMeta

#: Table 2 of the paper: name -> (dims, core dims).
REAL_TENSORS: dict[str, TensorMeta] = {
    "HCCI": TensorMeta(dims=(672, 672, 627, 16), core=(279, 279, 153, 14)),
    "TJLR": TensorMeta(
        dims=(460, 700, 360, 16, 4), core=(306, 232, 239, 16, 4)
    ),
    "SP": TensorMeta(dims=(500, 500, 500, 11, 10), core=(81, 129, 127, 7, 6)),
}

#: Section 6.1 parameter sets.
LENGTHS = (20, 50, 100, 400)
COMPRESSIONS = (Fraction(5, 4), Fraction(2), Fraction(5), Fraction(10))
CARDINALITY_CAP = 8_000_000_000

#: The paper's reported suite sizes, used by :func:`paper_subsample`.
PAPER_COUNTS = {5: 1134, 6: 642}


def real_tensor_meta(name: str) -> TensorMeta:
    """Look up a Table-2 tensor by name (case-insensitive)."""
    key = name.upper()
    if key not in REAL_TENSORS:
        raise KeyError(
            f"unknown real tensor {name!r}; have {sorted(REAL_TENSORS)}"
        )
    return REAL_TENSORS[key]


def _pair_choices() -> list[tuple[int, int]]:
    """All sixteen ``(L, K)`` per-mode choices, K = L / compression."""
    out = []
    for ell in LENGTHS:
        for comp in COMPRESSIONS:
            k = Fraction(ell) / comp
            assert k.denominator == 1, (ell, comp)
            out.append((ell, int(k)))
    return out


def benchmark_metas(
    ndim: int, cardinality_cap: int = CARDINALITY_CAP
) -> list[TensorMeta]:
    """Enumerate the canonical suite for ``ndim`` dimensions.

    Deterministic order: multisets are generated in lexicographic order of
    the sorted-descending ``(L, K)`` pair tuples.
    """
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")
    # Ascending canonical orientation. Only the input-order-dependent
    # baseline (the balanced tree) is sensitive to orientation; ascending
    # gives it its best showing — reproducing the paper's finding that
    # balanced is the strongest prior heuristic, and making our measured
    # gains conservative. (See DESIGN.md section 5.)
    pairs = sorted(_pair_choices())
    metas = []
    for combo in combinations_with_replacement(pairs, ndim):
        card = 1
        for ell, _ in combo:
            card *= ell
        if card > cardinality_cap:
            continue
        dims = tuple(ell for ell, _ in combo)
        core = tuple(k for _, k in combo)
        metas.append(TensorMeta(dims=dims, core=core))
    return metas


def paper_subsample(ndim: int, count: int | None = None) -> list[TensorMeta]:
    """Deterministic evenly-spaced subsample at the paper's suite size.

    Picks ``count`` (default: the paper's 1134/642) indices evenly spaced
    through the sorted canonical enumeration — a stratified, seedless and
    reproducible draw.
    """
    full = benchmark_metas(ndim)
    if count is None:
        count = PAPER_COUNTS.get(ndim)
        if count is None:
            raise ValueError(
                f"no paper count for ndim={ndim}; pass count= explicitly"
            )
    if count > len(full):
        raise ValueError(
            f"requested {count} tensors but only {len(full)} exist"
        )
    if count == len(full):
        return full
    step = (len(full) - 1) / (count - 1) if count > 1 else 0.0
    picked = [full[round(i * step)] for i in range(count)]
    assert len(set(id(m) for m in picked)) == len(picked)
    return picked
