"""Committed performance baseline and regression gate.

The repository carries a ``BENCH_baseline.json`` produced by
:func:`measure_baseline` on some reference machine. A later run (CI, a
developer box) re-measures the same deterministic cases and feeds both
files to :func:`compare`, which fails only on a *large* relative drop.

Raw seconds are useless across machines, so every case's throughput is
normalized by the measuring machine's own GEMM rate
(:func:`gemm_rate`): ``normalized = (runs/second) / (madds/second)``.
Two machines that differ only in raw speed produce (approximately) the
same normalized figure; a real regression — an accidental O(n^2) path,
a lost cache, a serialized pool — moves it regardless of hardware. The
default tolerance is deliberately generous (50%) because shared CI
boxes are noisy; the gate exists to catch order-of-magnitude mistakes,
not 5% drift.
"""

from __future__ import annotations

import json
from statistics import median
from time import perf_counter

import numpy as np

#: bump when the case set or normalization changes incompatibly
BASELINE_VERSION = 1

#: multiply-add count of the calibration GEMM (256^3)
_GEMM_N = 256


def gemm_rate(repeats: int = 5) -> float:
    """This machine's dense-GEMM throughput in multiply-adds/second.

    Median-of-``repeats`` of a fixed 256x256x256 matmul — the median
    (not the best) because the cases below are medians too: a shared
    box's transient stalls then bias numerator and denominator alike
    and mostly cancel in the normalized ratio.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((_GEMM_N, _GEMM_N))
    b = rng.standard_normal((_GEMM_N, _GEMM_N))
    a @ b  # warm the BLAS threads once, outside the timed region
    a @ b
    times = []
    for _ in range(max(1, repeats)):
        t0 = perf_counter()
        a @ b
        times.append(perf_counter() - t0)
    return float(_GEMM_N) ** 3 / max(median(times), 1e-9)


def _bench_cases():
    """The deterministic workloads the baseline pins.

    Small enough that the whole measurement stays under a few seconds,
    but each one crosses a distinct subsystem: the plain sequential
    path, the threaded pool through the batch API, and the mmap spill
    path. Returns ``name -> zero-arg callable returning runs-completed``.
    """
    from repro.session import TuckerSession
    from repro.tensor.random import random_tensor

    x = random_tensor((40, 32, 28), seed=0)
    core = (8, 6, 5)

    def sequential_single() -> int:
        session = TuckerSession(backend="sequential")
        session.run(x, core, max_iters=4)
        return 1

    def threaded_batch() -> int:
        session = TuckerSession(backend="threaded", n_procs=2)
        try:
            batch = session.run_many([x, x * 0.5, x * 2.0], core_dims=core,
                                     max_iters=2)
        finally:
            session.close()
        return batch.n_items

    def mmap_spill() -> int:
        session = TuckerSession(backend="sequential")
        session.run(x, core, max_iters=2, storage="mmap")
        return 1

    def rsthosvd_single() -> int:
        session = TuckerSession(backend="sequential")
        session.run(x, core, method="rsthosvd", seed=0, skip_hooi=True)
        return 1

    return {
        "sequential-single": sequential_single,
        "threaded-batch": threaded_batch,
        "mmap-spill": mmap_spill,
        "rsthosvd-single": rsthosvd_single,
    }


def measure_baseline(repeats: int = 3) -> dict:
    """Measure every case; returns the JSON-able baseline document.

    The GEMM probe runs before *and* after the cases and the faster of
    the two calibrates — frequency ramp-up between probe and cases is
    the dominant systematic error on idle boxes.
    """
    rate = gemm_rate()
    timings: dict[str, tuple[float, float]] = {}
    for name, fn in _bench_cases().items():
        runs = fn()  # warm pools/caches outside the timed repeats
        times = []
        for _ in range(max(1, repeats)):
            t0 = perf_counter()
            runs = fn()
            times.append(perf_counter() - t0)
        timings[name] = (median(times), float(runs))
    rate = max(rate, gemm_rate())
    cases: dict[str, dict[str, float]] = {}
    for name, (seconds, runs) in timings.items():
        cases[name] = {
            "seconds": seconds,
            "runs": runs,
            # runs/second per (madd/second): machine-rate-normalized
            "normalized": (runs / max(seconds, 1e-9)) / rate,
        }
    return {
        "version": BASELINE_VERSION,
        "gemm_rate": rate,
        "cases": cases,
    }


def compare(
    current: dict, baseline: dict, tolerance: float = 0.5
) -> tuple[bool, list[dict]]:
    """Gate ``current`` against ``baseline``; ``(ok, per-case rows)``.

    A case fails when its normalized throughput drops more than
    ``tolerance`` (a fraction) below the baseline's, or when a baseline
    case is missing from the current measurement (a silently dropped
    case would otherwise neuter the gate). Extra current-only cases
    are reported but never gate.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    if baseline.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline version {baseline.get('version')!r} != "
            f"{BASELINE_VERSION}; re-measure with 'repro bench --out'"
        )
    rows: list[dict] = []
    ok = True
    base_cases = baseline.get("cases") or {}
    cur_cases = current.get("cases") or {}
    for name, base in sorted(base_cases.items()):
        cur = cur_cases.get(name)
        if cur is None:
            rows.append({
                "case": name, "status": "MISSING",
                "baseline": base["normalized"], "current": None,
                "ratio": None,
            })
            ok = False
            continue
        floor = base["normalized"] * (1.0 - tolerance)
        ratio = (
            cur["normalized"] / base["normalized"]
            if base["normalized"] > 0 else float("inf")
        )
        failed = cur["normalized"] < floor
        rows.append({
            "case": name,
            "status": "FAIL" if failed else "ok",
            "baseline": base["normalized"],
            "current": cur["normalized"],
            "ratio": ratio,
        })
        ok = ok and not failed
    for name in sorted(set(cur_cases) - set(base_cases)):
        rows.append({
            "case": name, "status": "new",
            "baseline": None, "current": cur_cases[name]["normalized"],
            "ratio": None,
        })
    return ok, rows


def load_baseline(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def save_baseline(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
