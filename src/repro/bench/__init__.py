"""Benchmark substrate: the paper's tensor suite, algorithm configs, sweeps.

This subpackage is library code (importable, tested); the actual
table/figure regeneration lives in ``benchmarks/`` at the repository root
and calls into here.
"""

from repro.bench.suite import (
    REAL_TENSORS,
    benchmark_metas,
    paper_subsample,
    real_tensor_meta,
)
from repro.bench.algorithms import ALGORITHMS, PAPER_HEURISTICS, make_planner
from repro.bench.runner import evaluate_algorithms, sweep, normalize_against
from repro.bench.percentiles import percentile_curve, curve_summary
from repro.bench.report import ascii_table, format_curve
from repro.bench.baseline import (
    compare,
    gemm_rate,
    load_baseline,
    measure_baseline,
    save_baseline,
)

__all__ = [
    "compare",
    "gemm_rate",
    "load_baseline",
    "measure_baseline",
    "save_baseline",
    "REAL_TENSORS",
    "benchmark_metas",
    "paper_subsample",
    "real_tensor_meta",
    "ALGORITHMS",
    "PAPER_HEURISTICS",
    "make_planner",
    "evaluate_algorithms",
    "sweep",
    "normalize_against",
    "percentile_curve",
    "curve_summary",
    "ascii_table",
    "format_curve",
]
