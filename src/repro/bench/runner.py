"""Sweep driver: run algorithm configs over tensor suites, collect metrics.

For each (tensor, algorithm) pair the runner plans (tree + grids) — routed
through a shared :class:`~repro.session.TuckerSession` so repeated sweeps
over the same metadata hit the compiled-plan cache — and asks the model
executor (:mod:`repro.hooi.model`) for one invocation's metrics.
Metrics per record:

``flops``            TTM-component multiply-adds (exact; Fig 11c/d)
``ttm_volume``       TTM reduce-scatter volume (elements)
``regrid_volume``    regrid volume (elements)
``comm_volume``      the two above summed (Fig 11f)
``tree_compute_s``   TTM compute time, tree only (Fig 11a/b)
``tree_comm_s``      TTM + regrid comm time, tree only (Fig 11e)
``svd_s``            SVD phase time
``total_s``          overall invocation time (Fig 10)

:func:`run_backends` complements the modeled sweep with *measured*
per-backend comparisons: the same decomposition executed on several
registered backends, reporting wall seconds, ledger aggregates and the
worst deviation from the sequential reference. :func:`run_batch` does
the same for *streams*: N tensors through one warm session per backend
(``session.run_many``), so BENCH records start tracking batched
throughput (``items_per_second``) alongside single-shot latency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from time import perf_counter

from repro.backends import BackendUnavailableError, get_backend
from repro.bench.algorithms import make_planner
from repro.core.meta import TensorMeta
from repro.hooi.model import predict
from repro.mpi.machine import MachineModel
from repro.session import TuckerSession


def planning_session() -> TuckerSession:
    """The sweep-wide planning session (shared compiled-plan LRU cache)."""
    global _session
    if _session is None:
        _session = TuckerSession(backend="sequential", cache_size=128)
    return _session


_session: TuckerSession | None = None


def evaluate_algorithms(
    meta: TensorMeta,
    algorithms: Sequence[str],
    n_procs: int = 32,
    machine: MachineModel | None = None,
) -> dict[str, dict[str, float]]:
    """Plan + model one tensor under each named algorithm."""
    machine = machine if machine is not None else MachineModel.bgq_like()
    session = planning_session()
    out: dict[str, dict[str, float]] = {}
    for name in algorithms:
        plan = session.compile(
            meta, planner=make_planner(name, n_procs)
        ).plan
        report = predict(plan, machine)
        out[name] = {
            "flops": float(plan.flops),
            "ttm_volume": float(plan.ttm_volume),
            "regrid_volume": float(plan.regrid_volume),
            "comm_volume": float(plan.total_volume),
            "tree_compute_s": report.tree_compute_seconds,
            "tree_comm_s": report.tree_comm_seconds,
            "svd_s": report.svd_seconds,
            "total_s": report.total_seconds,
        }
    return out


def sweep(
    metas: Iterable[TensorMeta],
    algorithms: Sequence[str],
    n_procs: int = 32,
    machine: MachineModel | None = None,
) -> list[dict]:
    """Evaluate every tensor; returns one record per tensor.

    Record layout: ``{"meta": TensorMeta, "algs": {name: metrics}}``.
    """
    machine = machine if machine is not None else MachineModel.bgq_like()
    records = []
    for meta in metas:
        records.append(
            {
                "meta": meta,
                "algs": evaluate_algorithms(meta, algorithms, n_procs, machine),
            }
        )
    return records


def run_backends(
    tensor,
    core_dims: Sequence[int],
    backends: Sequence[str] = ("sequential", "threaded", "procpool"),
    *,
    n_procs: int | None = None,
    planner: str = "optimal",
    max_iters: int = 2,
    tol: float = 0.0,
    reference: str = "sequential",
    storage: str = "auto",
    memory_budget: int | str | None = None,
    spill_codec: str = "auto",
) -> dict[str, dict[str, float]]:
    """Execute the same decomposition on several backends; compare.

    Per backend: ``seconds`` (measured wall clock), the uniform ledger
    aggregates (``comm_volume`` / ``flops`` / ``events``), the final
    ``error``, and ``max_core_diff`` — the worst absolute core deviation
    from the ``reference`` backend (the conformance bound, 0.0 for the
    reference itself). A backend the host cannot provide is reported as
    ``{"unavailable": reason}`` rather than dropped silently.

    One ``n_procs`` is resolved up front and shared by every backend —
    the comparison is only a conformance bound if all backends execute
    the *same* plan. ``n_procs=None`` picks the machine's natural pool
    size clamped to a plannable count for this metadata.

    ``storage`` / ``memory_budget`` / ``spill_codec`` apply the session
    storage policy to every backend's run, so out-of-core (``"mmap"``)
    sweeps measure the spill path — including encoded spills — under the
    same plans as resident ones. Spilled runs also report
    ``spill_bytes_written`` / ``spill_bytes_logical``, so codec sweeps
    can compare achieved compression alongside wall clock.
    """
    import numpy as np

    from repro.backends.blockpar import default_workers
    from repro.core.grids import feasible_procs
    from repro.util.validation import check_core_dims

    arr = np.asarray(tensor)
    meta = TensorMeta(
        dims=arr.shape, core=check_core_dims(core_dims, arr.shape)
    )
    if n_procs is None:
        n_procs = feasible_procs(meta, default_workers())
    names = list(backends)
    if reference not in names:
        names.insert(0, reference)
    out: dict[str, dict] = {}
    cores: dict[str, object] = {}
    for name in names:
        try:
            backend = get_backend(name, n_procs=n_procs)
        except BackendUnavailableError as exc:
            out[name] = {"unavailable": str(exc)}
            continue
        session = TuckerSession(backend=backend, spill_codec=spill_codec)
        start = perf_counter()
        result = session.run(
            tensor,
            core_dims,
            planner=planner,
            n_procs=n_procs,
            max_iters=max_iters,
            tol=tol,
            storage=storage,
            memory_budget=memory_budget,
        )
        seconds = perf_counter() - start
        stats = backend.stats()
        cores[name] = result.decomposition.core
        out[name] = {
            "seconds": seconds,
            "error": result.error,
            "n_iters": float(result.n_iters),
            "comm_volume": stats["comm_volume"],
            "flops": stats["flops"],
            "events": stats["events"],
        }
        if result.storage != "memory":
            out[name]["spill_bytes_written"] = float(
                result.spill_bytes_written
            )
            out[name]["spill_bytes_logical"] = float(
                result.spill_bytes_logical
            )
        backend.close()
    ref_core = cores.get(reference)
    for name, metrics in out.items():
        if "unavailable" in metrics or ref_core is None:
            continue
        metrics["max_core_diff"] = float(
            np.max(np.abs(cores[name] - ref_core))
        )
    return out


def run_methods(
    tensor,
    core_dims: Sequence[int],
    methods: Sequence[str] = ("exact", "rsthosvd", "sp-rsthosvd"),
    *,
    backend: str = "sequential",
    n_procs: int | None = None,
    planner: str = "optimal",
    oversample: int = 5,
    power_iters: int = 0,
    seed: int = 0,
    reference: str = "exact",
) -> dict[str, dict[str, float]]:
    """Exact vs. randomized initialization on one backend; compare.

    Every method runs initialization-only (``skip_hooi``) through one
    warm session — the plan is pre-compiled so no method pays the
    planning cost — isolating the algorithm under comparison. Per
    method: ``seconds`` (measured wall clock), ``speedup`` over the
    ``reference`` method, ``reported_error`` (what the result claims;
    for ``sp-rsthosvd`` that is only a clamped estimate) and
    ``true_error`` — the offline reconstruction error, plus
    ``error_ratio`` against the reference's true error. A ratio near
    1.0 alongside a speedup > 1 is the randomized methods' whole value
    proposition.
    """
    import numpy as np

    from repro.tensor.ttm import ttm_chain
    from repro.util.validation import check_core_dims

    arr = np.asarray(tensor)
    meta = TensorMeta(
        dims=arr.shape, core=check_core_dims(core_dims, arr.shape)
    )
    names = list(methods)
    if reference not in names:
        names.insert(0, reference)
    out: dict[str, dict[str, float]] = {}
    t_norm = float(np.linalg.norm(arr.reshape(-1)))
    with TuckerSession(backend=backend, n_procs=n_procs) as session:
        session.compile(meta, n_procs, planner=planner)
        for name in names:
            extra = (
                {}
                if name == "exact"
                else {
                    "method": name,
                    "oversample": oversample,
                    "power_iters": power_iters,
                    "seed": seed,
                }
            )
            start = perf_counter()
            result = session.run(
                arr,
                core_dims,
                planner=planner,
                n_procs=n_procs,
                skip_hooi=True,
                **extra,
            )
            seconds = perf_counter() - start
            dec = result.decomposition
            recon = ttm_chain(
                dec.core, list(dec.factors), list(range(arr.ndim))
            )
            diff = recon - np.asarray(arr, dtype=recon.dtype)
            true_error = (
                float(np.linalg.norm(diff.reshape(-1))) / t_norm
                if t_norm
                else 0.0
            )
            out[name] = {
                "seconds": seconds,
                "reported_error": float(result.error),
                "true_error": true_error,
            }
    ref = out[reference]
    for metrics in out.values():
        metrics["speedup"] = (
            ref["seconds"] / metrics["seconds"] if metrics["seconds"] else 0.0
        )
        if ref["true_error"]:
            metrics["error_ratio"] = metrics["true_error"] / ref["true_error"]
        else:
            metrics["error_ratio"] = (
                1.0 if metrics["true_error"] == 0 else float("inf")
            )
    return out


def run_batch(
    tensors: Sequence,
    core_dims: Sequence[int],
    backends: Sequence[str] = ("sequential", "threaded", "procpool"),
    *,
    n_procs: int | None = None,
    planner: str = "optimal",
    max_iters: int = 2,
    tol: float = 0.0,
    max_in_flight: int = 4,
    reference: str = "sequential",
    storage: str = "auto",
    memory_budget: int | str | None = None,
    spill_codec: str = "auto",
) -> dict[str, dict[str, float]]:
    """Stream the same tensor batch through each backend; compare throughput.

    Per backend: ``seconds`` (whole-batch wall clock), ``items_per_second``,
    ``n_items``, the plan-cache counters (``plans_compiled`` /
    ``cache_hits``), the merged ledger aggregates, and ``max_core_diff`` —
    the worst per-item core deviation from the ``reference`` backend's
    batch. An unavailable backend is reported as ``{"unavailable":
    reason}``. One ``n_procs`` is resolved up front (clamped to a count
    plannable for *every* distinct shape) and shared, so all backends
    execute the same plans.
    """
    import numpy as np

    from repro.backends.blockpar import default_workers
    from repro.core.grids import feasible_procs
    from repro.util.validation import check_core_dims

    arrays = [np.asarray(t) for t in tensors]
    if not arrays:
        raise ValueError("run_batch needs at least one tensor")
    metas = {
        TensorMeta(dims=a.shape, core=check_core_dims(core_dims, a.shape))
        for a in arrays
    }
    if n_procs is None:
        n_procs = min(feasible_procs(m, default_workers()) for m in metas)
    names = list(backends)
    if reference not in names:
        names.insert(0, reference)
    out: dict[str, dict] = {}
    cores: dict[str, list] = {}
    for name in names:
        try:
            backend = get_backend(name, n_procs=n_procs)
        except BackendUnavailableError as exc:
            out[name] = {"unavailable": str(exc)}
            continue
        with TuckerSession(
            backend=backend, spill_codec=spill_codec
        ) as session:
            batch = session.run_many(
                arrays,
                core_dims,
                planner=planner,
                n_procs=n_procs,
                max_iters=max_iters,
                tol=tol,
                max_in_flight=max_in_flight,
                storage=storage,
                memory_budget=memory_budget,
            )
        cores[name] = [r.decomposition.core for r in batch.results]
        out[name] = {
            "seconds": batch.seconds,
            "items_per_second": batch.items_per_second,
            "n_items": float(batch.n_items),
            "plans_compiled": float(batch.plans_compiled),
            "cache_hits": float(batch.cache_hits),
            "comm_volume": batch.ledger.volume(),
            "flops": batch.ledger.flops(),
            "events": float(len(batch.ledger)),
        }
    ref_cores = cores.get(reference)
    for name, metrics in out.items():
        if "unavailable" in metrics or ref_cores is None:
            continue
        metrics["max_core_diff"] = float(
            max(
                np.max(np.abs(mine - ref))
                for mine, ref in zip(cores[name], ref_cores)
            )
        )
    return out


def run_serve(
    tensors: Sequence,
    core_dims: Sequence[int],
    *,
    workers: int = 2,
    backend: str = "sequential",
    n_procs: int | None = None,
    planner: str = "portfolio",
    max_iters: int = 2,
    tol: float = 0.0,
    memory_budget: int | str | None = None,
) -> dict[str, dict[str, float]]:
    """Serve a workload concurrently vs. streaming it serially; compare.

    The ``serial`` arm pushes the tensors through one warm session's
    ``run_many``; the ``serve`` arm submits the same tensors to a
    :class:`~repro.serve.TuckerServer` with ``workers`` worker sessions
    and waits for every ticket. Both report ``seconds``,
    ``items_per_second`` and ``n_items``; the serve arm adds ``speedup``
    (serve throughput over serial), ``affinity_hit_rate`` and
    ``max_core_diff`` — the worst per-item core deviation from the
    serial arm, the conformance bound that makes the speedup meaningful.

    On a single-core host the serve arm's overlap buys nothing (thread
    switching typically costs a little); the ``>= 1.5x`` acceptance
    claim applies to multi-core machines only.
    """
    import numpy as np

    from repro.serve import ServeRequest, TuckerServer

    arrays = [np.asarray(t) for t in tensors]
    if not arrays:
        raise ValueError("run_serve needs at least one tensor")
    out: dict[str, dict[str, float]] = {}

    with TuckerSession(backend=backend, n_procs=n_procs) as session:
        batch = session.run_many(
            arrays,
            core_dims,
            planner=planner,
            n_procs=n_procs,
            max_iters=max_iters,
            tol=tol,
            memory_budget=memory_budget,
        )
    serial_cores = [r.decomposition.core for r in batch.results]
    out["serial"] = {
        "seconds": batch.seconds,
        "items_per_second": batch.items_per_second,
        "n_items": float(batch.n_items),
    }

    start = perf_counter()
    with TuckerServer(
        workers=workers,
        backend=backend,
        n_procs=n_procs,
        planner=planner,
        memory_budget=memory_budget,
    ) as server:
        tickets = [
            server.submit(ServeRequest(
                array=a,
                core=tuple(core_dims),
                id=f"bench-{i}",
                max_iters=max_iters,
                tol=tol,
            ))
            for i, a in enumerate(arrays)
        ]
        results = [t.result() for t in tickets]
        snap = server.stats_snapshot()
    seconds = perf_counter() - start
    failures = [r for r in results if not r.ok]
    if failures:
        raise RuntimeError(
            f"serve bench arm failed: {failures[0].error}"
        )
    from repro.obs import safe_rate

    serve_rate = safe_rate(len(results), seconds)
    serial_rate = out["serial"]["items_per_second"]
    out["serve"] = {
        "seconds": seconds,
        "items_per_second": serve_rate,
        "n_items": float(len(results)),
        "workers": float(workers),
        "speedup": serve_rate / serial_rate if serial_rate else 0.0,
        "affinity_hit_rate": float(snap["affinity"]["hit_rate"]),
        "max_core_diff": float(
            max(
                np.max(np.abs(r.value.decomposition.core - ref))
                for r, ref in zip(results, serial_cores)
            )
        ),
    }
    return out


def normalize_against(
    records: list[dict], metric: str, baseline: str
) -> dict[str, list[float]]:
    """Per-tensor ratios ``alg_metric / baseline_metric`` for each algorithm.

    This is the paper's normalization ("we normalized the execution times
    w.r.t. the execution time of the opt-tree algorithm, which becomes 1
    unit"). Baseline values of zero (possible for communication volume when
    a scheme is communication-free) are handled by reporting 1.0 when the
    algorithm's value is also zero and ``inf`` otherwise.
    """
    out: dict[str, list[float]] = {}
    for rec in records:
        base = rec["algs"][baseline][metric]
        for name, metrics in rec["algs"].items():
            val = metrics[metric]
            if base == 0:
                ratio = 1.0 if val == 0 else float("inf")
            else:
                ratio = val / base
            out.setdefault(name, []).append(ratio)
    return out
