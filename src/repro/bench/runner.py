"""Sweep driver: run algorithm configs over tensor suites, collect metrics.

For each (tensor, algorithm) pair the runner plans (tree + grids) — routed
through a shared :class:`~repro.session.TuckerSession` so repeated sweeps
over the same metadata hit the compiled-plan cache — and asks the model
executor (:mod:`repro.hooi.model`) for one invocation's metrics.
Metrics per record:

``flops``            TTM-component multiply-adds (exact; Fig 11c/d)
``ttm_volume``       TTM reduce-scatter volume (elements)
``regrid_volume``    regrid volume (elements)
``comm_volume``      the two above summed (Fig 11f)
``tree_compute_s``   TTM compute time, tree only (Fig 11a/b)
``tree_comm_s``      TTM + regrid comm time, tree only (Fig 11e)
``svd_s``            SVD phase time
``total_s``          overall invocation time (Fig 10)
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.bench.algorithms import make_planner
from repro.core.meta import TensorMeta
from repro.hooi.model import predict
from repro.mpi.machine import MachineModel
from repro.session import TuckerSession


def planning_session() -> TuckerSession:
    """The sweep-wide planning session (shared compiled-plan LRU cache)."""
    global _session
    if _session is None:
        _session = TuckerSession(backend="sequential", cache_size=128)
    return _session


_session: TuckerSession | None = None


def evaluate_algorithms(
    meta: TensorMeta,
    algorithms: Sequence[str],
    n_procs: int = 32,
    machine: MachineModel | None = None,
) -> dict[str, dict[str, float]]:
    """Plan + model one tensor under each named algorithm."""
    machine = machine if machine is not None else MachineModel.bgq_like()
    session = planning_session()
    out: dict[str, dict[str, float]] = {}
    for name in algorithms:
        plan = session.compile(
            meta, planner=make_planner(name, n_procs)
        ).plan
        report = predict(plan, machine)
        out[name] = {
            "flops": float(plan.flops),
            "ttm_volume": float(plan.ttm_volume),
            "regrid_volume": float(plan.regrid_volume),
            "comm_volume": float(plan.total_volume),
            "tree_compute_s": report.tree_compute_seconds,
            "tree_comm_s": report.tree_comm_seconds,
            "svd_s": report.svd_seconds,
            "total_s": report.total_seconds,
        }
    return out


def sweep(
    metas: Iterable[TensorMeta],
    algorithms: Sequence[str],
    n_procs: int = 32,
    machine: MachineModel | None = None,
) -> list[dict]:
    """Evaluate every tensor; returns one record per tensor.

    Record layout: ``{"meta": TensorMeta, "algs": {name: metrics}}``.
    """
    machine = machine if machine is not None else MachineModel.bgq_like()
    records = []
    for meta in metas:
        records.append(
            {
                "meta": meta,
                "algs": evaluate_algorithms(meta, algorithms, n_procs, machine),
            }
        )
    return records


def normalize_against(
    records: list[dict], metric: str, baseline: str
) -> dict[str, list[float]]:
    """Per-tensor ratios ``alg_metric / baseline_metric`` for each algorithm.

    This is the paper's normalization ("we normalized the execution times
    w.r.t. the execution time of the opt-tree algorithm, which becomes 1
    unit"). Baseline values of zero (possible for communication volume when
    a scheme is communication-free) are handled by reporting 1.0 when the
    algorithm's value is also zero and ``inf`` otherwise.
    """
    out: dict[str, list[float]] = {}
    for rec in records:
        base = rec["algs"][baseline][metric]
        for name, metrics in rec["algs"].items():
            val = metrics[metric]
            if base == 0:
                ratio = 1.0 if val == 0 else float("inf")
            else:
                ratio = val / base
            out.setdefault(name, []).append(ratio)
    return out
