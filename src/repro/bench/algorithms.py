"""Named algorithm configurations of the paper's evaluation (section 6.2).

Prior heuristics all use the optimal *static* grid (as the paper does):

* ``chain-k``  — chain tree, K-ordering        (paper's "(chain, K)" / CK)
* ``chain-h``  — chain tree, h-ordering        ("(chain, h)" / CH)
* ``balanced`` — balanced tree, natural order  ("(balanced)" / B)

Our algorithms:

* ``opt-static``  — optimal tree + optimal static grid
* ``opt-dynamic`` — optimal tree + optimal dynamic gridding ("OPT")
"""

from __future__ import annotations

from repro.core.planner import Planner

#: name -> (tree kind, grid kind, paper label)
ALGORITHMS: dict[str, tuple[str, str, str]] = {
    "chain-k": ("chain-k", "static", "CK"),
    "chain-h": ("chain-h", "static", "CH"),
    "balanced": ("balanced", "static", "B"),
    "opt-static": ("optimal", "static", "OPT-S"),
    "opt-dynamic": ("optimal", "dynamic", "OPT"),
}

#: The three prior-work baselines of Figures 10 and 11.
PAPER_HEURISTICS = ("chain-k", "chain-h", "balanced")


def make_planner(name: str, n_procs: int) -> Planner:
    """Instantiate the planner for a named algorithm configuration."""
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; have {sorted(ALGORITHMS)}")
    tree, grid, _ = ALGORITHMS[name]
    return Planner(n_procs, tree=tree, grid=grid)


def paper_label(name: str) -> str:
    """Short label used in the paper's figures (CK/CH/B/OPT)."""
    return ALGORITHMS[name][2]
