"""Plain-text rendering of benchmark outputs (tables and curve series)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> str:
    """Render a simple aligned table; every cell is str()-ed."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve(
    curves: Mapping[str, Mapping[int, float]], *, title: str | None = None
) -> str:
    """Render percentile curves as a table: one row per percentile."""
    names = list(curves)
    points = sorted(next(iter(curves.values())).keys())
    headers = ["pct"] + names
    rows = []
    for p in points:
        row = [p] + [
            ("inf" if curves[n][p] == float("inf") else f"{curves[n][p]:.2f}")
            for n in names
        ]
        rows.append(row)
    return ascii_table(headers, rows, title=title)
