"""Shared utilities: integer combinatorics, validation, serialization.

These helpers are deliberately dependency-light; every other subpackage may
import from :mod:`repro.util` but not vice versa.
"""

from repro.util.partitions import (
    prime_factorization,
    divisors,
    ordered_factorizations,
    count_ordered_factorizations,
    iter_submasks,
    iter_nonempty_proper_submasks,
    multisets,
    balanced_split,
)
from repro.util.validation import (
    check_positive_int,
    check_dims,
    check_core_dims,
    check_mode,
)
from repro.util.dtypes import resolve_dtype, as_float, accumulator_dtype

__all__ = [
    "resolve_dtype",
    "as_float",
    "accumulator_dtype",
    "prime_factorization",
    "divisors",
    "ordered_factorizations",
    "count_ordered_factorizations",
    "iter_submasks",
    "iter_nonempty_proper_submasks",
    "multisets",
    "balanced_split",
    "check_positive_int",
    "check_dims",
    "check_core_dims",
    "check_mode",
]
