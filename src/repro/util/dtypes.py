"""Floating-point dtype policy shared by every execution path.

The paper's kernels are dtype-agnostic — FLOP counts and communication
volumes are element counts — so the engine should honor whatever floating
precision the caller hands it. The policy implemented here:

* ``float32`` and ``float64`` inputs keep their precision end-to-end
  (STHOSVD, HOOI, the distributed engine, every backend);
* everything else (ints, bools, exotic floats) promotes to ``float64``,
  which remains the default working precision;
* an explicit ``dtype=`` knob on the session API overrides both.
"""

from __future__ import annotations

import numpy as np

#: dtypes that flow through unchanged; all others promote to float64.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def resolve_dtype(value, dtype=None) -> np.dtype:
    """Working dtype for ``value`` (an array, dtype, or scalar type).

    ``dtype``, when given, wins — but must be one of the supported floating
    dtypes. Otherwise the value's own dtype is kept if supported, else
    ``float64``.
    """
    if dtype is not None:
        dtype = np.dtype(dtype)
        if dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype must be float32 or float64, got {dtype}"
            )
        return dtype
    candidate = np.dtype(getattr(value, "dtype", None) or value)
    return candidate if candidate in SUPPORTED_DTYPES else np.dtype(np.float64)


def as_float(array, dtype=None) -> np.ndarray:
    """Return ``array`` as an ndarray in its resolved working dtype.

    No copy is made when the array already has the resolved dtype.
    """
    array = np.asarray(array)
    return np.asarray(array, dtype=resolve_dtype(array, dtype))


def accumulator_dtype(dtype) -> np.dtype:
    """Reduction dtype for per-rank partials: floats keep their precision,
    everything else accumulates in float64 (the old engine behavior)."""
    dtype = np.dtype(dtype)
    return dtype if np.issubdtype(dtype, np.floating) else np.dtype(np.float64)
