"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as int, raising ``ValueError`` unless it is >= 1."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            raise TypeError(f"{name} must be an integer, got {value!r}") from None
        if ivalue != value:
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = ivalue
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_dims(dims: Sequence[int], name: str = "dims") -> tuple[int, ...]:
    """Validate a tensor shape: a non-empty sequence of positive ints."""
    dims = tuple(check_positive_int(d, f"{name}[{i}]") for i, d in enumerate(dims))
    if len(dims) == 0:
        raise ValueError(f"{name} must be non-empty")
    return dims


def check_core_dims(
    core: Sequence[int], dims: Sequence[int], name: str = "core"
) -> tuple[int, ...]:
    """Validate core dims against tensor dims: same length and K_n <= L_n."""
    core = check_dims(core, name)
    if len(core) != len(dims):
        raise ValueError(
            f"{name} must have the same length as dims: {len(core)} != {len(dims)}"
        )
    for n, (k, ell) in enumerate(zip(core, dims)):
        if k > ell:
            raise ValueError(
                f"{name}[{n}] = {k} exceeds tensor length {ell} along mode {n}"
            )
    return core


def check_mode(mode: int, ndim: int) -> int:
    """Validate a 0-based mode index against the number of dimensions."""
    mode = int(mode)
    if not 0 <= mode < ndim:
        raise ValueError(f"mode must be in [0, {ndim}), got {mode}")
    return mode
