"""Minimal JSON (de)serialization helpers for planner artifacts.

Plans (trees + grid schemes) are metadata-only and cheap to persist; the
paper's planner "needs to be executed only once and the output can be used
across multiple invocations of the HOOI procedure" (section 5). These helpers
keep that workflow: ``plan.to_json()`` / ``Plan.from_json()`` round-trip
through plain dicts built here.
"""

from __future__ import annotations

import json
from typing import Any


def dumps(obj: dict[str, Any]) -> str:
    """Serialize a plain dict deterministically (sorted keys)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def loads(text: str) -> dict[str, Any]:
    """Inverse of :func:`dumps`."""
    obj = json.loads(text)
    if not isinstance(obj, dict):
        raise ValueError(f"expected a JSON object, got {type(obj).__name__}")
    return obj


def as_int_tuple(seq) -> tuple[int, ...]:
    """Coerce a JSON array into a tuple of ints, validating element types."""
    out = []
    for x in seq:
        if isinstance(x, bool) or not isinstance(x, int):
            if isinstance(x, float) and x.is_integer():
                x = int(x)
            else:
                raise ValueError(f"expected integer entries, got {x!r}")
        out.append(int(x))
    return tuple(out)
