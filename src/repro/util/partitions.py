"""Integer combinatorics used by the grid enumerator and the tree DP.

The planner needs two enumeration primitives:

* all ways to write the processor count ``P`` as an *ordered* product of
  ``N`` factors (Cartesian grids, paper section 4.2), together with the
  closed-form count ``psi(P, N)``;
* iteration over submasks of a bitmask (the ``Q -> (Q1, Q2)`` splits of the
  optimal-tree dynamic program, paper section 3.3).

Everything here is exact integer arithmetic; no floats.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from itertools import combinations_with_replacement


def prime_factorization(n: int) -> dict[int, int]:
    """Return the prime factorization of ``n`` as ``{prime: exponent}``.

    Trial division; ``n`` here is a processor count (at most a few million in
    any realistic planning call), so this is never a bottleneck.

    >>> prime_factorization(360)
    {2: 3, 3: 2, 5: 1}
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    factors: dict[int, int] = {}
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors[d] = factors.get(d, 0) + 1
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors


def divisors(n: int) -> list[int]:
    """Return all positive divisors of ``n`` in increasing order."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def count_ordered_factorizations(p: int, n: int) -> int:
    """Closed-form ``psi(P, N)``: ordered factorizations of ``p`` into ``n`` factors.

    With prime factorization ``p = prod p_i^{e_i}`` each prime's exponent is
    distributed independently over the ``n`` positions (stars and bars):

    ``psi(P, N) = prod_i C(e_i + N - 1, N - 1)``   (paper section 4.2).

    >>> count_ordered_factorizations(32, 5)
    126
    >>> count_ordered_factorizations(32, 7)
    462
    """
    check = count_ordered_factorizations
    del check  # no recursion; placate linters about unused names
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    result = 1
    for exponent in prime_factorization(p).values() if p > 1 else ():
        result *= math.comb(exponent + n - 1, n - 1)
    return result


def _exponent_splits(e: int, n: int) -> Iterator[tuple[int, ...]]:
    """Yield all n-tuples of non-negative ints summing to ``e``."""
    if n == 1:
        yield (e,)
        return
    for head in range(e + 1):
        for rest in _exponent_splits(e - head, n - 1):
            yield (head,) + rest


def ordered_factorizations(p: int, n: int) -> Iterator[tuple[int, ...]]:
    """Yield every ordered factorization of ``p`` into ``n`` positive factors.

    The factorizations are exactly the candidate processor grids for ``p``
    ranks and an ``n``-dimensional tensor. The iteration order is
    deterministic (lexicographic in per-prime exponent splits).

    >>> sorted(ordered_factorizations(4, 2))
    [(1, 4), (2, 2), (4, 1)]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    primes = list(prime_factorization(p).items()) if p > 1 else []
    if not primes:
        yield (1,) * n
        return

    def rec(idx: int, acc: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        if idx == len(primes):
            yield acc
            return
        prime, exponent = primes[idx]
        for split in _exponent_splits(exponent, n):
            nxt = tuple(a * prime**s for a, s in zip(acc, split))
            yield from rec(idx + 1, nxt)

    yield from rec(0, (1,) * n)


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield every submask of ``mask`` (including 0 and ``mask`` itself).

    Uses the standard ``sub = (sub - 1) & mask`` walk, descending order.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_nonempty_proper_submasks(mask: int) -> Iterator[int]:
    """Yield submasks ``s`` of ``mask`` with ``0 < s < mask``.

    These are the candidate ``Q1`` sets when splitting ``Q`` in the
    optimal-tree DP. Each unordered split ``{Q1, Q2}`` appears twice (once as
    ``s``, once as ``mask ^ s``); callers that want each split once can keep
    only ``s < mask ^ s``.
    """
    sub = (mask - 1) & mask
    while sub > 0:
        yield sub
        sub = (sub - 1) & mask


def multisets(values: Sequence, k: int) -> Iterator[tuple]:
    """Yield all size-``k`` multisets (as sorted-by-input-order tuples)."""
    yield from combinations_with_replacement(values, k)


def balanced_split(items: Sequence) -> tuple[list, list]:
    """Split a sequence into halves ``(first floor(n/2), rest)``.

    This is the divide step of the Kaya-Ucar balanced tree construction
    (paper section 3.2: ``m = floor(N/2)``).
    """
    m = len(items) // 2
    return list(items[:m]), list(items[m:])
