"""Mode-n unfolding and its inverse.

The mode-n unfolding ``T_(n)`` is the ``L_n x (|T| / L_n)`` matrix whose
columns are the mode-n fibers of ``T`` (paper section 2.1). The column order
is a fixed lexicographic convention; the paper notes the details are not
crucial as long as unfold/fold are mutually inverse, which the tests enforce.
We use the convention ``moveaxis(T, n, 0).reshape(L_n, -1)`` (row-major over
the remaining modes in their original order), matching Kolda & Bader up to a
permutation of columns.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_mode


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Return the mode-``mode`` unfolding of ``tensor``.

    The result is a view when possible, otherwise a copy (``reshape`` after
    ``moveaxis`` generally copies for mode != 0).
    """
    tensor = np.asarray(tensor)
    mode = check_mode(mode, tensor.ndim)
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def fold(matrix: np.ndarray, mode: int, dims: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`unfold`: rebuild a tensor of shape ``dims``.

    ``matrix`` must have shape ``(dims[mode], prod(dims)/dims[mode])``.
    """
    matrix = np.asarray(matrix)
    dims = tuple(int(d) for d in dims)
    mode = check_mode(mode, len(dims))
    expected = (dims[mode], int(np.prod(dims, dtype=np.int64)) // dims[mode])
    if matrix.shape != expected:
        raise ValueError(
            f"matrix shape {matrix.shape} incompatible with dims {dims} and "
            f"mode {mode}; expected {expected}"
        )
    moved_shape = (dims[mode],) + tuple(d for i, d in enumerate(dims) if i != mode)
    return np.moveaxis(matrix.reshape(moved_shape), 0, mode)
