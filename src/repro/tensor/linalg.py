"""Gram-based SVD and deterministic sign conventions.

The paper's SVD step (section 5) computes the leading ``K_n`` left singular
vectors of the unfolding ``Z_(n)`` via the Gram matrix ``Z_(n) Z_(n)^T``
(dsyrk) followed by a sequential symmetric eigendecomposition (dsyevx) —
cheap because ``L_n <= 2000``. We mirror that exactly and add a direct
truncated-SVD backend for cross-checking.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg


def gram(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix @ matrix.T`` symmetrized (syrk-style).

    Symmetrization guards against round-off asymmetry so ``eigh`` sees an
    exactly symmetric input.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    g = matrix @ matrix.T
    return (g + g.T) * 0.5


def deterministic_sign(vectors: np.ndarray) -> np.ndarray:
    """Fix each column's sign so its largest-magnitude entry is positive.

    Eigen/singular vectors are defined only up to sign; fixing it makes the
    sequential and distributed paths bit-comparable and test assertions
    simple. Ties (same magnitude) resolve to the first occurrence.
    """
    vectors = np.array(vectors, copy=True)
    if vectors.ndim != 2:
        raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
    for j in range(vectors.shape[1]):
        col = vectors[:, j]
        idx = int(np.argmax(np.abs(col)))
        if col[idx] < 0:
            vectors[:, j] = -col
    return vectors


def leading_eigvecs(symmetric: np.ndarray, k: int) -> np.ndarray:
    """Leading ``k`` eigenvectors of a symmetric PSD matrix, descending order.

    Columns carry the deterministic sign convention. Uses LAPACK ``syevr``
    through :func:`scipy.linalg.eigh` with an index subset, the analogue of
    the paper's dsyevx call.
    """
    symmetric = np.asarray(symmetric)
    if symmetric.ndim != 2 or symmetric.shape[0] != symmetric.shape[1]:
        raise ValueError(f"need a square matrix, got shape {symmetric.shape}")
    n = symmetric.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    _, vecs = scipy.linalg.eigh(symmetric, subset_by_index=[n - k, n - 1])
    # eigh returns ascending eigenvalues; flip to descending.
    return deterministic_sign(vecs[:, ::-1])


def leading_left_singular_vectors(
    matrix: np.ndarray, k: int, *, method: str = "gram"
) -> np.ndarray:
    """Leading ``k`` left singular vectors of ``matrix``.

    ``method="gram"`` is the paper's Gram+EVD route; ``method="svd"`` calls a
    thin LAPACK SVD directly (the paper's conclusion suggests a distributed
    SVD solver as future work — this is the sequential stand-in used for
    validation). Both return ``matrix.shape[0] x k`` with deterministic signs.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if method == "gram":
        return leading_eigvecs(gram(matrix), k)
    if method == "svd":
        if not 1 <= k <= matrix.shape[0]:
            raise ValueError(f"k must be in [1, {matrix.shape[0]}], got {k}")
        u, _, _ = scipy.linalg.svd(matrix, full_matrices=False)
        return deterministic_sign(u[:, :k])
    raise ValueError(f"unknown method {method!r}; expected 'gram' or 'svd'")
