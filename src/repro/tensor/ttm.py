"""Sequential tensor-times-matrix products.

``Z = T x_n A`` applies the linear map ``A`` (shape ``K x L_n``) to every
mode-n fiber: ``Z_(n) = A @ T_(n)`` (paper section 2.1). The cost is
``K * |T|`` multiply-adds; the output has the same shape as ``T`` except
``L_n -> K``.

The implementation avoids an explicit unfolding copy exactly as the
distributed engine does (paper section 5 credits Austin et al.'s blocking
strategy): ``moveaxis`` produces a view and the single ``reshape`` of that
view is the only data movement before the dgemm.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.util.validation import check_mode


def ttm(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Multiply ``tensor`` by ``matrix`` along ``mode``.

    Parameters
    ----------
    tensor: ndarray of shape ``(L_0, ..., L_{N-1})``.
    matrix: ndarray of shape ``(K, L_mode)``.
    mode: 0-based mode index.

    Returns
    -------
    ndarray with ``L_mode`` replaced by ``K``, C-contiguous.
    """
    tensor = np.asarray(tensor)
    matrix = np.asarray(matrix)
    mode = check_mode(mode, tensor.ndim)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if matrix.shape[1] != tensor.shape[mode]:
        raise ValueError(
            f"matrix columns ({matrix.shape[1]}) must equal tensor length "
            f"along mode {mode} ({tensor.shape[mode]})"
        )
    moved = np.moveaxis(tensor, mode, 0)
    flat = moved.reshape(tensor.shape[mode], -1)
    out_flat = matrix @ flat
    out_shape = (matrix.shape[0],) + moved.shape[1:]
    return np.ascontiguousarray(
        np.moveaxis(out_flat.reshape(out_shape), 0, mode)
    )


def ttm_chain(
    tensor: np.ndarray,
    matrices: Sequence[np.ndarray | None],
    modes: Sequence[int] | None = None,
    *,
    transpose: bool = False,
    skip: int | None = None,
) -> np.ndarray:
    """Multiply along several distinct modes (the TTM-chain of section 2.1).

    Parameters
    ----------
    tensor: input tensor.
    matrices: one matrix per entry of ``modes``; entries may be ``None`` to
        skip a mode when ``modes`` is ``None`` (the convenient HOOI calling
        convention: pass all N factor matrices and ``skip=n``).
    modes: modes to multiply along; default ``range(ndim)``.
    transpose: if True multiply by ``matrix.T`` (HOOI multiplies by the
        factor transposes ``F_j^T``).
    skip: optional mode to leave out (HOOI's "all modes except n").

    The chain is evaluated in the order given; commutativity (paper
    section 2.1) guarantees the result is order-independent, which the
    property tests verify.
    """
    tensor = np.asarray(tensor)
    if modes is None:
        modes = list(range(tensor.ndim))
    modes = [check_mode(m, tensor.ndim) for m in modes]
    if len(modes) != len(set(modes)):
        raise ValueError(f"modes must be distinct, got {modes}")
    if len(matrices) != len(modes):
        raise ValueError(
            f"need one matrix per mode: {len(matrices)} matrices, {len(modes)} modes"
        )
    out = tensor
    for matrix, mode in zip(matrices, modes):
        if mode == skip:
            continue
        if matrix is None:
            raise ValueError(f"matrix for mode {mode} is None and not skipped")
        out = ttm(out, matrix.T if transpose else matrix, mode)
    return out
