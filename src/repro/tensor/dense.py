"""Small helpers over plain ndarrays treated as dense tensors."""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np


def cardinality(dims: Sequence[int]) -> int:
    """Number of elements ``|T|`` of a tensor with the given shape.

    Exact integer arithmetic — benchmark tensors reach 8e9 elements, beyond
    float32 exactness and worth keeping exact for volume formulas.
    """
    return math.prod(int(d) for d in dims)


def num_fibers(dims: Sequence[int], mode: int) -> int:
    """Number of mode-``mode`` fibers: ``|T| / L_mode`` (paper section 2.1)."""
    dims = tuple(int(d) for d in dims)
    return cardinality(dims) // dims[mode]


def fro_norm(tensor: np.ndarray) -> float:
    """Frobenius norm of a dense tensor."""
    return float(np.linalg.norm(np.asarray(tensor).ravel()))


def relative_error(original: np.ndarray, recovered: np.ndarray) -> float:
    """Normalized root-mean-square error ``||T - Z|| / ||T||``.

    This is the paper's decomposition error metric (section 2.2). Returns 0
    for two all-zero tensors and raises if shapes disagree.
    """
    original = np.asarray(original)
    recovered = np.asarray(recovered)
    if original.shape != recovered.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {recovered.shape}"
        )
    denom = fro_norm(original)
    diff = fro_norm(original - recovered)
    if denom == 0.0:
        return 0.0 if diff == 0.0 else float("inf")
    return diff / denom
