"""Dense tensor kernels: unfolding, TTM, Gram-based SVD, generators.

Tensors are plain ``numpy.ndarray`` objects (C-ordered, float64 by default);
this subpackage supplies the sequential reference kernels on top of which
both the distributed engine (:mod:`repro.dist`) and the algorithm layer
(:mod:`repro.hooi`) are built.

Mode indices are **0-based** throughout the code base (the paper uses
1-based modes).
"""

from repro.tensor.dense import cardinality, fro_norm, relative_error, num_fibers
from repro.tensor.unfold import unfold, fold
from repro.tensor.ttm import ttm, ttm_chain
from repro.tensor.linalg import (
    gram,
    leading_eigvecs,
    leading_left_singular_vectors,
    deterministic_sign,
)
from repro.tensor.random import (
    random_tensor,
    random_orthonormal,
    random_tucker,
    low_rank_tensor,
    separable_field_tensor,
)

__all__ = [
    "cardinality",
    "fro_norm",
    "relative_error",
    "num_fibers",
    "unfold",
    "fold",
    "ttm",
    "ttm_chain",
    "gram",
    "leading_eigvecs",
    "leading_left_singular_vectors",
    "deterministic_sign",
    "random_tensor",
    "random_orthonormal",
    "random_tucker",
    "low_rank_tensor",
    "separable_field_tensor",
]
