"""Synthetic tensor generators.

The paper fills its benchmark tensors with random data (section 6.1) because
HOOI's cost depends only on metadata. For *correctness* experiments we also
need tensors with genuine low multilinear rank so that Tucker compression is
meaningful; :func:`random_tucker`, :func:`low_rank_tensor` and
:func:`separable_field_tensor` provide those (the last mimics smooth
combustion-simulation fields: sums of separable Gaussian bumps over a grid,
the structure that makes tensors like SP/HCCI compressible).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.ttm import ttm_chain
from repro.util.validation import check_core_dims, check_dims


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_tensor(
    dims: Sequence[int], seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Uniform(-1, 1) dense tensor of the given shape (float64)."""
    dims = check_dims(dims)
    return _rng(seed).uniform(-1.0, 1.0, size=dims)


def random_orthonormal(
    rows: int, cols: int, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """A ``rows x cols`` matrix with orthonormal columns (Haar-ish via QR)."""
    if cols > rows:
        raise ValueError(f"cols ({cols}) must be <= rows ({rows})")
    q, r = np.linalg.qr(_rng(seed).standard_normal((rows, cols)))
    # Fix QR sign ambiguity so the distribution is rotation invariant.
    return q * np.sign(np.where(np.diag(r) == 0, 1.0, np.diag(r)))


def random_tucker(
    dims: Sequence[int],
    core_dims: Sequence[int],
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Random core + orthonormal factors: the ingredients of a Tucker model.

    Returns ``(core, factors)`` with ``factors[n]`` of shape ``L_n x K_n``.
    """
    dims = check_dims(dims)
    core_dims = check_core_dims(core_dims, dims)
    rng = _rng(seed)
    core = rng.standard_normal(core_dims)
    factors = [random_orthonormal(ell, k, rng) for ell, k in zip(dims, core_dims)]
    return core, factors


def low_rank_tensor(
    dims: Sequence[int],
    core_dims: Sequence[int],
    noise: float = 0.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """An (approximately) low-multilinear-rank tensor.

    ``T = G x_1 F_1 ... x_N F_N + noise * E`` where ``E`` has unit Frobenius
    norm scaled to the signal's norm; with ``noise=0`` the exact multilinear
    rank is at most ``core_dims``.
    """
    dims = check_dims(dims)
    core_dims = check_core_dims(core_dims, dims)
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    rng = _rng(seed)
    core, factors = random_tucker(dims, core_dims, rng)
    signal = ttm_chain(core, factors, list(range(len(dims))))
    if noise == 0.0:
        return signal
    e = rng.standard_normal(dims)
    e *= np.linalg.norm(signal.ravel()) / np.linalg.norm(e.ravel())
    return signal + noise * e


def separable_field_tensor(
    dims: Sequence[int],
    n_bumps: int = 6,
    noise: float = 1e-3,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Smooth synthetic "simulation field": a sum of separable Gaussians.

    Mimics the structure of combustion-simulation tensors (HCCI/TJLR/SP in
    the paper): smooth spatial variation makes every unfolding numerically
    low-rank, so Tucker achieves large compression at small error. Each bump
    contributes ``prod_n exp(-(x_n - c_n)^2 / (2 s_n^2))``.
    """
    dims = check_dims(dims)
    if n_bumps < 1:
        raise ValueError(f"n_bumps must be >= 1, got {n_bumps}")
    rng = _rng(seed)
    out = np.zeros(dims)
    for _ in range(n_bumps):
        weight = rng.uniform(0.5, 2.0)
        factors_1d = []
        for ell in dims:
            grid = np.linspace(0.0, 1.0, ell)
            center = rng.uniform(0.2, 0.8)
            width = rng.uniform(0.08, 0.35)
            factors_1d.append(np.exp(-((grid - center) ** 2) / (2 * width**2)))
        bump = factors_1d[0]
        for f in factors_1d[1:]:
            bump = np.multiply.outer(bump, f)
        out += weight * bump
    if noise > 0:
        e = rng.standard_normal(dims)
        e *= np.linalg.norm(out.ravel()) / max(np.linalg.norm(e.ravel()), 1e-300)
        out += noise * e
    return out
