"""Import-aware dotted-name resolution for rule visitors.

Rules need to know that ``np.random.seed`` *is* ``numpy.random.seed`` and
that ``from multiprocessing import shared_memory as shm`` makes
``shm.SharedMemory`` the shared-memory constructor. :class:`ImportMap`
builds the alias table for one module; :func:`dotted_name` flattens an
attribute chain; :meth:`ImportMap.resolve` combines the two.

Resolution is purely lexical — no imports are executed — so it cannot see
through reassignment (``r = np.random; r.seed(0)`` resolves to nothing).
That keeps the analyzer sound for the patterns the repo actually uses and
silent (never wrong) for the ones it does not.
"""

from __future__ import annotations

import ast

__all__ = ["ImportMap", "dotted_name"]


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Local-name -> absolute dotted-path table for one module."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a`` (to package a).
                        root = alias.name.split(".", 1)[0]
                        self.aliases.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports: outside our vocabulary
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Absolute dotted path of an expression, if statically known."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        return self.resolve_str(dotted)

    def resolve_str(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target
