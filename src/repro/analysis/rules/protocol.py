"""R004 — protocol-drift: every backend matches ``ExecutionBackend``.

The schedule executor is written purely against the nine-primitive
``ExecutionBackend`` protocol, and ``backend="auto"`` dispatch (a-Tucker
style) is only sound if every dispatch target honors the *same* call
shape — a backend that renames a parameter, drops a keyword, or ships a
different default silently diverges the moment a caller passes by
keyword or relies on the default.

The rule parses the base module (option ``base-glob``, default
``*/backends/base.py``), collects the abstract methods of the protocol
class (option ``protocol``, default ``ExecutionBackend``), then checks
every class in the project that lists the protocol as a base:

* every abstract method is implemented (same name);
* positional parameter names match, in order;
* keyword-only parameter names match, in order;
* every default value matches the base's, token for token
  (annotations are deliberately *not* compared — backends legitimately
  narrow ``Any`` handles to their own handle types).

If the base module is not among the analyzed files the rule has nothing
to anchor to and stays silent (lint ``src`` as a whole for full
coverage).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.core import FileContext, Finding, Project, Rule

__all__ = ["ProtocolDriftRule"]

DEFAULT_BASE_GLOB = "*/backends/base.py"
DEFAULT_PROTOCOL = "ExecutionBackend"


@dataclass(frozen=True)
class MethodSig:
    """The comparable shape of one method signature."""

    args: tuple[str, ...]
    defaults: tuple[str, ...]  # unparsed, aligned to the tail of args
    kwonly: tuple[str, ...]
    kw_defaults: tuple[str | None, ...]
    vararg: str | None
    kwarg: str | None


def _signature(node: ast.FunctionDef) -> MethodSig:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return MethodSig(
        args=tuple(names),
        defaults=tuple(ast.unparse(d) for d in args.defaults),
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        kw_defaults=tuple(
            None if d is None else ast.unparse(d) for d in args.kw_defaults
        ),
        vararg=args.vararg.arg if args.vararg else None,
        kwarg=args.kwarg.arg if args.kwarg else None,
    )


def _is_abstract(node: ast.FunctionDef) -> bool:
    for dec in node.decorator_list:
        name = dec.attr if isinstance(dec, ast.Attribute) else (
            dec.id if isinstance(dec, ast.Name) else None
        )
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _class_methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in node.body
        if isinstance(item, ast.FunctionDef)
    }


def _base_names(node: ast.ClassDef) -> set[str]:
    out: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            out.add(base.id)
        elif isinstance(base, ast.Attribute):
            out.add(base.attr)
    return out


def _drift(base: MethodSig, impl: MethodSig) -> list[str]:
    problems: list[str] = []
    if impl.args != base.args:
        problems.append(
            f"positional parameters {list(impl.args)} != protocol's "
            f"{list(base.args)}"
        )
    if impl.kwonly != base.kwonly:
        problems.append(
            f"keyword-only parameters {list(impl.kwonly)} != protocol's "
            f"{list(base.kwonly)}"
        )
    else:
        for name, base_default, impl_default in zip(
            base.kwonly, base.kw_defaults, impl.kw_defaults
        ):
            if base_default != impl_default:
                problems.append(
                    f"default for '{name}' is {impl_default or '<required>'} "
                    f"!= protocol's {base_default or '<required>'}"
                )
    if impl.args == base.args and impl.defaults != base.defaults:
        problems.append(
            f"positional defaults {list(impl.defaults)} != protocol's "
            f"{list(base.defaults)}"
        )
    if impl.vararg != base.vararg:
        problems.append(
            f"*{impl.vararg or ''} != protocol's *{base.vararg or ''}"
        )
    if impl.kwarg != base.kwarg:
        problems.append(
            f"**{impl.kwarg or ''} != protocol's **{base.kwarg or ''}"
        )
    return problems


class ProtocolDriftRule(Rule):
    id = "R004"
    name = "protocol-drift"
    description = (
        "every ExecutionBackend subclass implements each abstract method "
        "with a matching signature and defaults"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        base_glob = str(
            project.config.option(self.id, "base-glob", DEFAULT_BASE_GLOB)
        )
        protocol = str(
            project.config.option(self.id, "protocol", DEFAULT_PROTOCOL)
        )
        base_ctx = project.find_file(base_glob)
        if base_ctx is None:
            return
        base_class = next(
            (
                node
                for node in ast.walk(base_ctx.tree)
                if isinstance(node, ast.ClassDef) and node.name == protocol
            ),
            None,
        )
        if base_class is None:
            yield self.finding(
                base_ctx,
                1,
                f"protocol class {protocol} not found in {base_ctx.path}",
            )
            return
        abstract = {
            name: _signature(fn)
            for name, fn in _class_methods(base_class).items()
            if _is_abstract(fn)
        }
        for ctx in project.files:
            if ctx is base_ctx:
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if protocol not in _base_names(node):
                    continue
                methods = _class_methods(node)
                for name in sorted(abstract):
                    impl = methods.get(name)
                    if impl is None:
                        yield self.finding(
                            ctx,
                            node,
                            f"{node.name} does not implement "
                            f"{protocol}.{name}; the schedule executor "
                            "will hit the abstract method at runtime",
                        )
                        continue
                    for problem in _drift(abstract[name], _signature(impl)):
                        yield self.finding(
                            ctx,
                            impl,
                            f"{node.name}.{name} drifts from "
                            f"{protocol}.{name}: {problem}",
                        )
