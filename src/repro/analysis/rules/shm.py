"""R002 — shm-lifetime: every created shared-memory segment has an owner.

``SharedMemory(create=True)`` allocates a named segment in ``/dev/shm``
that outlives the process unless someone calls ``unlink``. The repo's
contract (established by ``backends/procpool.py``, the reference
consumer) is that the *creating scope* either

* registers a ``weakref.finalize`` whose callback unlinks the segment
  (``ShmTensor`` ties the finalizer to the exporting view), or
* calls ``.unlink()`` on a path through the same scope (the probe
  allocation pattern), or
* carries an explicit ownership-transfer annotation
  (``# repro-lint: shm-transfer=<who owns it now>``) on the creating
  line, documenting that a different scope assumes the unlink duty.

The check is scoped per function (nested functions are separate scopes):
a create with none of the three in scope is a leak waiting for a crash.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import FileContext, FileRule, Finding, Project
from repro.analysis.names import ImportMap

__all__ = ["ShmLifetimeRule"]


def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class scopes."""
    body = getattr(scope, "body", [])
    stack: list[ast.AST] = list(body)
    for extra in ("handlers", "orelse", "finalbody"):
        stack.extend(getattr(scope, extra, []) or [])
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue  # a nested scope: analyzed on its own
        yield node
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def _is_create_call(node: ast.AST, imports: ImportMap) -> bool:
    if not isinstance(node, ast.Call):
        return False
    resolved = imports.resolve(node.func)
    if resolved is None or not resolved.endswith("SharedMemory"):
        return False
    for kw in node.keywords:
        if (
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        ):
            return True
    return False


def _releases_ownership(scope_nodes: list[ast.AST], imports: ImportMap) -> bool:
    for node in scope_nodes:
        if not isinstance(node, ast.Call):
            continue
        resolved = imports.resolve(node.func)
        if resolved is not None and (
            resolved == "weakref.finalize"
            or resolved.endswith(".finalize")
        ):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("unlink", "finalize")
        ):
            return True
    return False


class ShmLifetimeRule(FileRule):
    id = "R002"
    name = "shm-lifetime"
    description = (
        "SharedMemory(create=True) must pair with weakref.finalize or "
        "unlink in the creating scope, or carry an ownership-transfer "
        "annotation"
    )

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(
            node
            for node in ast.walk(ctx.tree)
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            )
        )
        for scope in scopes:
            nodes = list(_own_nodes(scope))
            creates = [
                node for node in nodes if _is_create_call(node, imports)
            ]
            if not creates:
                continue
            released = _releases_ownership(nodes, imports)
            for create in creates:
                line = getattr(create, "lineno", 1)
                if released or ctx.has_directive(line, "shm-transfer"):
                    continue
                where = getattr(scope, "name", "<module>")
                yield self.finding(
                    ctx,
                    create,
                    f"SharedMemory(create=True) in {where}() has no "
                    "weakref.finalize or unlink in the creating scope; "
                    "the segment leaks in /dev/shm on any non-happy path "
                    "(annotate '# repro-lint: shm-transfer=<owner>' if "
                    "ownership moves elsewhere)",
                )
