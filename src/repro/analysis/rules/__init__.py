"""The rule registry: every shipped rule, in id order."""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exceptions import ExceptionHygieneRule
from repro.analysis.rules.ledgertags import LedgerTagRule
from repro.analysis.rules.lockorder import LockOrderRule
from repro.analysis.rules.protocol import ProtocolDriftRule
from repro.analysis.rules.shm import ShmLifetimeRule

__all__ = ["ALL_RULES", "rule_by_id"]

ALL_RULES: tuple[type[Rule], ...] = (
    DeterminismRule,
    ShmLifetimeRule,
    LockOrderRule,
    ProtocolDriftRule,
    LedgerTagRule,
    ExceptionHygieneRule,
)


def rule_by_id(rule_id: str) -> type[Rule] | None:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    return None
