"""R003 — lock-order: the static lock-acquisition graph has no cycles.

The serving stack holds locks across calls into other locked components
(session run lock -> plan-cache lock -> ledger lock; server lock ->
router lock; ...). Two components that ever acquire each other's locks
in opposite orders can deadlock under exactly the concurrent load the
server exists to handle — and that failure is timing-dependent, so tests
rarely see it. This rule builds the acquisition graph statically and
reports every cycle.

How the graph is built (all lexical, no execution):

* **Lock identities.** ``self.X = threading.Lock()/RLock()/Condition()``
  inside a class body defines lock ``Class.X``; ``X = threading.Lock()``
  at module scope defines ``module.X``. ``Condition(self.Y)`` aliases to
  ``Class.Y`` (one underlying lock, two names).
* **Acquisitions.** ``with self.X:`` (and ``with obj.X:`` where ``obj``
  is an attribute/local whose class is statically known) plus explicit
  ``self.X.acquire()`` calls.
* **Edges.** While a ``with`` block holds lock *A*, every lock *B*
  acquired lexically inside it adds edge *A -> B*; every call made
  inside it adds *A -> B* for each *B* in the callee's transitive
  acquire-effect (a fixpoint over the project call graph; calls resolve
  by receiver type — ``self.m()``, ``self.attr.m()``, ``Class()``,
  module functions).
* **Reentrancy.** Self-edges on ``RLock`` are dropped (reacquiring is
  legal). Self-edges on a plain ``Lock``/``Condition`` are reported only
  when provably the same object: lexical nesting on ``self.X``, or a
  direct ``self.m()`` call whose body acquires ``self.X``. Cross-lock
  cycles are reported regardless.

Explicit ``.acquire()`` regions are *not* tracked as held past their
statement (the ``with`` form is the repo idiom; acquire/release pairs
spanning statements under-approximate to their acquisition edge only).
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.core import FileContext, Finding, Project, Rule
from repro.analysis.names import ImportMap

__all__ = ["LockOrderRule"]

LOCK_FACTORIES = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
}


@dataclass(frozen=True)
class LockDef:
    key: str
    kind: str  # "lock" | "rlock"
    path: str
    line: int


@dataclass(frozen=True)
class Acquire:
    lock: str
    line: int
    lexical: bool  # True for `with self.X:`, False for `.acquire()`


@dataclass(frozen=True)
class CallSite:
    held: tuple[str, ...]
    target: tuple[str, ...]  # ("method", T, m) | ("function", mod, f)
    line: int
    receiver_is_self: bool


@dataclass
class FuncInfo:
    key: tuple[str, str]  # (owner, name); owner = class or f"mod:{stem}"
    path: str
    cls: str | None
    acquires: list[Acquire] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: (outer, inner, line) edges from lexical nesting
    nested: list[tuple[str, str, int]] = field(default_factory=list)


@dataclass(frozen=True)
class Edge:
    src: str
    dst: str
    path: str
    line: int
    why: str


class _ModuleIndex:
    """Everything R003 needs to know about one parsed module."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.stem = os.path.splitext(os.path.basename(ctx.path))[0]
        self.imports = ImportMap(ctx.tree)
        #: (class, attr) -> LockDef  /  aliases (class, attr) -> attr
        self.locks: dict[tuple[str, str], LockDef] = {}
        self.aliases: dict[tuple[str, str], str] = {}
        #: (class, attr) -> type name, from `self.attr = ClassName(...)`
        self.attr_types: dict[tuple[str, str], str] = {}
        self.classes: list[ast.ClassDef] = []
        self.functions: list[ast.FunctionDef] = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes.append(node)
            elif isinstance(node, ast.FunctionDef):
                self.functions.append(node)
            elif isinstance(node, ast.Assign):
                self._module_lock(node)

    def _module_lock(self, node: ast.Assign) -> None:
        kind = _lock_kind(node.value, self.imports)
        if kind is None:
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.locks[("", target.id)] = LockDef(
                    key=f"{self.stem}.{target.id}",
                    kind=kind,
                    path=self.ctx.path,
                    line=node.lineno,
                )

    def index_class(self, cls: ast.ClassDef) -> None:
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            param_types: dict[str, str] = {}
            for arg in list(method.args.args) + list(
                method.args.kwonlyargs
            ):
                name = _annotation_class(arg.annotation)
                if name is not None:
                    param_types[arg.arg] = name
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                kind = _lock_kind(node.value, self.imports)
                if kind is not None:
                    cond_of = _condition_wraps(node.value, self.imports)
                    if cond_of is not None:
                        self.aliases[(cls.name, attr)] = cond_of
                    else:
                        self.locks[(cls.name, attr)] = LockDef(
                            key=f"{cls.name}.{attr}",
                            kind=kind,
                            path=self.ctx.path,
                            line=node.lineno,
                        )
                    continue
                type_name = _constructed_class(node.value, self.imports)
                if type_name is None and isinstance(node.value, ast.Name):
                    type_name = param_types.get(node.value.id)
                if type_name is not None:
                    self.attr_types[(cls.name, attr)] = type_name


def _lock_kind(expr: ast.expr, imports: ImportMap) -> str | None:
    if not isinstance(expr, ast.Call):
        return None
    resolved = imports.resolve(expr.func)
    if resolved is None:
        return None
    kind = LOCK_FACTORIES.get(resolved)
    if kind == "condition":
        # Condition() owns a fresh (non-reentrant) lock by default;
        # Condition(existing) aliases, handled by _condition_wraps.
        return "lock"
    return kind


def _condition_wraps(expr: ast.expr, imports: ImportMap) -> str | None:
    """``self.Y`` attr name when ``expr`` is ``Condition(self.Y)``."""
    if not isinstance(expr, ast.Call) or not expr.args:
        return None
    if imports.resolve(expr.func) != "threading.Condition":
        return None
    arg = expr.args[0]
    if (
        isinstance(arg, ast.Attribute)
        and isinstance(arg.value, ast.Name)
        and arg.value.id == "self"
    ):
        return arg.attr
    return None


def _constructed_class(expr: ast.expr, imports: ImportMap) -> str | None:
    """Bare class name when ``expr`` is ``ClassName(...)``."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Name):
        resolved = imports.resolve_str(func.id)
        name = resolved.rsplit(".", 1)[-1]
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    return name if name[:1].isupper() else None


def _annotation_class(expr: ast.expr | None) -> str | None:
    """Bare class name from a parameter annotation, when extractable."""
    if expr is None:
        return None
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value.strip('"').rsplit(".", 1)[-1]
    return None


class _FuncWalker:
    """Collects acquires/calls/nesting for one function body."""

    def __init__(
        self,
        info: FuncInfo,
        module: _ModuleIndex,
        lock_table: dict[tuple[str, str], LockDef],
        alias_table: dict[tuple[str, str], str],
        attr_types: dict[tuple[str, str], str],
        class_names: frozenset[str],
    ) -> None:
        self.info = info
        self.module = module
        self.lock_table = lock_table
        self.alias_table = alias_table
        self.attr_types = attr_types
        self.class_names = class_names
        self.local_types: dict[str, str] = {}
        self.held: list[str] = []

    # -- resolution ------------------------------------------------------- #

    def _lock_of_attr(self, owner: str, attr: str) -> LockDef | None:
        seen: set[str] = set()
        while attr not in seen:
            seen.add(attr)
            lock = self.lock_table.get((owner, attr))
            if lock is not None:
                return lock
            alias = self.alias_table.get((owner, attr))
            if alias is None:
                return None
            attr = alias
        return None

    def _type_of(self, expr: ast.expr) -> str | None:
        """Statically known class of a receiver expression."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.info.cls
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._type_of(expr.value)
            if base is None:
                return None
            return self.attr_types.get((base, expr.attr))
        return None

    def _lock_of(self, expr: ast.expr) -> LockDef | None:
        if isinstance(expr, ast.Attribute):
            base = self._type_of(expr.value)
            if base is not None:
                return self._lock_of_attr(base, expr.attr)
            return None
        if isinstance(expr, ast.Name):
            return self.lock_table.get(("", expr.id)) and self._lock_of_attr(
                "", expr.id
            )
        return None

    def _call_target(
        self, call: ast.Call
    ) -> tuple[tuple[str, ...] | None, bool]:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.module.imports.resolve_str(func.id)
            name = resolved.rsplit(".", 1)[-1]
            if name in self.class_names:
                return ("method", name, "__init__"), False
            return ("function", self.module.stem, func.id), False
        if isinstance(func, ast.Attribute):
            receiver = func.value
            rtype = self._type_of(receiver)
            if rtype is not None:
                is_self = (
                    isinstance(receiver, ast.Name) and receiver.id == "self"
                )
                return ("method", rtype, func.attr), is_self
            if func.attr in self.class_names:  # module.ClassName(...)
                return ("method", func.attr, "__init__"), False
        return None, False

    # -- walking ----------------------------------------------------------- #

    def walk(self, fn: ast.FunctionDef) -> None:
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            name = _annotation_class(arg.annotation)
            if name is not None and name in self.class_names:
                self.local_types[arg.arg] = name
        for stmt in fn.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scope: analyzed as its own function elsewhere
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self._record_acquire(lock, item.context_expr, lexical=True)
                    self.held.append(lock.key)
                    acquired.append(lock.key)
                else:
                    self._visit(item.context_expr)
            for stmt in node.body:
                self._visit(stmt)
            for _ in acquired:
                self.held.pop()
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            cls = _constructed_class(node.value, self.module.imports)
            if (
                isinstance(target, ast.Name)
                and cls is not None
                and cls in self.class_names
            ):
                self.local_types[target.id] = cls
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                lock = self._lock_of(node.func.value)
                if lock is not None:
                    self._record_acquire(lock, node, lexical=False)
            else:
                target, is_self = self._call_target(node)
                if target is not None:
                    self.info.calls.append(
                        CallSite(
                            held=tuple(self.held),
                            target=target,
                            line=node.lineno,
                            receiver_is_self=is_self,
                        )
                    )
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _record_acquire(
        self, lock: LockDef, node: ast.AST, *, lexical: bool
    ) -> None:
        line = getattr(node, "lineno", 1)
        self.info.acquires.append(
            Acquire(lock=lock.key, line=line, lexical=lexical)
        )
        for outer in self.held:
            self.info.nested.append((outer, lock.key, line))


class LockOrderRule(Rule):
    id = "R003"
    name = "lock-order"
    severity = "error"
    description = (
        "the static lock-acquisition graph (with-blocks + call effects) "
        "must be cycle-free; cycles are potential deadlocks"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        modules = [_ModuleIndex(ctx) for ctx in project.files]
        lock_table: dict[tuple[str, str], LockDef] = {}
        alias_table: dict[tuple[str, str], str] = {}
        attr_types: dict[tuple[str, str], str] = {}
        lock_kinds: dict[str, str] = {}
        class_names: set[str] = set()
        for module in modules:
            for cls in module.classes:
                class_names.add(cls.name)
                module.index_class(cls)
            lock_table.update(module.locks)
            alias_table.update(module.aliases)
            attr_types.update(module.attr_types)
        for lock in lock_table.values():
            lock_kinds[lock.key] = lock.kind
        frozen_classes = frozenset(class_names)

        funcs: dict[tuple[str, str], FuncInfo] = {}
        for module in modules:
            scopes: list[tuple[str | None, ast.FunctionDef]] = [
                (None, fn) for fn in module.functions
            ]
            for cls in module.classes:
                scopes.extend(
                    (cls.name, item)
                    for item in cls.body
                    if isinstance(item, ast.FunctionDef)
                )
            for cls_name, fn in scopes:
                owner = cls_name or f"mod:{module.stem}"
                info = FuncInfo(
                    key=(owner, fn.name), path=module.ctx.path, cls=cls_name
                )
                walker = _FuncWalker(
                    info, module, lock_table, alias_table, attr_types,
                    frozen_classes,
                )
                walker.walk(fn)
                funcs[info.key] = info

        # -- transitive acquire-effects (fixpoint) ----------------------- #
        effects: dict[tuple[str, str], set[str]] = {
            key: {a.lock for a in info.acquires}
            for key, info in funcs.items()
        }
        direct_effects = {key: set(val) for key, val in effects.items()}
        changed = True
        while changed:
            changed = False
            for key, info in funcs.items():
                for call in info.calls:
                    callee = self._resolve(call.target, funcs)
                    if callee is None:
                        continue
                    new = effects[callee] - effects[key]
                    if new:
                        effects[key].update(new)
                        changed = True

        # -- edges --------------------------------------------------------- #
        edges: dict[tuple[str, str], Edge] = {}

        def add_edge(src: str, dst: str, path: str, line: int, why: str) -> None:
            if src == dst:
                if lock_kinds.get(src) == "rlock":
                    return  # reentrant: legal
            edges.setdefault(
                (src, dst), Edge(src=src, dst=dst, path=path, line=line, why=why)
            )

        for key in sorted(funcs):
            info = funcs[key]
            for outer, inner, line in info.nested:
                add_edge(
                    outer, inner, info.path, line,
                    f"{key[1]} acquires {inner} while holding {outer}",
                )
            for call in info.calls:
                if not call.held:
                    continue
                callee = self._resolve(call.target, funcs)
                if callee is None:
                    continue
                for inner in sorted(effects[callee]):
                    for outer in call.held:
                        if inner == outer and not (
                            call.receiver_is_self
                            and inner in direct_effects[callee]
                        ):
                            # A call-mediated self-edge is only provably
                            # the same lock object for self-calls that
                            # acquire it directly.
                            continue
                        add_edge(
                            outer, inner, info.path, call.line,
                            f"{key[1]} holds {outer} and calls "
                            f"{'.'.join(call.target[1:])} which acquires "
                            f"{inner}",
                        )

        yield from self._report(edges, lock_table)

    @staticmethod
    def _resolve(
        target: tuple[str, ...], funcs: dict[tuple[str, str], FuncInfo]
    ) -> tuple[str, str] | None:
        kind, owner, name = target[0], target[1], target[2]
        if kind == "method":
            return (owner, name) if (owner, name) in funcs else None
        key = (f"mod:{owner}", name)
        return key if key in funcs else None

    def _report(
        self,
        edges: dict[tuple[str, str], Edge],
        lock_table: dict[tuple[str, str], LockDef],
    ) -> Iterator[Finding]:
        graph: dict[str, list[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        for node in graph:
            graph[node].sort()

        # self-loops first (same-object double acquire)
        for (src, dst), edge in sorted(edges.items()):
            if src == dst:
                yield Finding(
                    path=edge.path,
                    line=edge.line,
                    rule=self.id,
                    message=(
                        f"non-reentrant lock {src} may be acquired while "
                        f"already held ({edge.why}); this self-deadlocks"
                    ),
                    severity=self.severity,
                )

        for scc in _sccs(graph):
            if len(scc) < 2:
                continue
            cycle = _cycle_within(scc, graph)
            witness = [
                edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
                for i in range(len(cycle))
            ]
            first = witness[0]
            chain = " -> ".join(cycle + [cycle[0]])
            details = "; ".join(
                f"{e.why} ({e.path}:{e.line})" for e in witness
            )
            yield Finding(
                path=first.path,
                line=first.line,
                rule=self.id,
                message=(
                    f"lock-order cycle {chain} is a potential deadlock: "
                    f"{details}"
                ),
                severity=self.severity,
            )


def _sccs(graph: dict[str, list[str]]) -> list[list[str]]:
    """Tarjan SCCs, iterative, deterministic order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, pos = work[-1]
            if pos == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = graph.get(node, [])
            while pos < len(successors):
                succ = successors[pos]
                pos += 1
                work[-1] = (node, pos)
                if succ not in index:
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                out.append(sorted(scc))
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return out


def _cycle_within(scc: list[str], graph: dict[str, list[str]]) -> list[str]:
    """A concrete cycle through an SCC (for the finding's witness)."""
    members = set(scc)
    start = scc[0]
    path = [start]
    seen = {start}
    node = start
    while True:
        for succ in graph.get(node, []):
            if succ == start and len(path) > 1:
                return path
            if succ in members and succ not in seen:
                path.append(succ)
                seen.add(succ)
                node = succ
                break
        else:
            # dead end inside the SCC (shouldn't happen); fall back
            return path
        continue
