"""R001 — determinism: no hidden global randomness, no wall-clock math.

The repo's bit-for-bit reproducibility contract (same seed, same backend,
same bytes) dies the moment any execution-path code consults process-global
random state or the wall clock. Three sub-checks:

* legacy ``numpy.random.*`` module-state APIs (``seed``, ``rand``,
  ``shuffle``, ``RandomState``, ...) are banned everywhere — all
  randomness flows through explicitly seeded ``default_rng`` generators;
* ``time.time()`` / ``datetime.now()``-style wall-clock reads are banned
  in kernel/schedule/backend code (``perf_counter`` durations are fine —
  they are measurements, not inputs); option ``time-globs`` names the
  scoped paths;
* ``numpy.random.default_rng()`` *without a seed argument* is banned
  outside the one designated entropy module (option ``rng-globs``,
  default ``*/tensor/random.py``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import FileContext, FileRule, Finding, Project
from repro.analysis.names import ImportMap

__all__ = ["DeterminismRule"]

#: numpy.random module-state APIs (operate on the hidden global
#: RandomState). ``default_rng`` / ``Generator`` / ``SeedSequence`` are
#: deliberately absent — they are the sanctioned replacements.
LEGACY_NP_RANDOM = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_integers",
    "random_sample", "ranf", "sample", "choice", "bytes", "shuffle",
    "permutation", "beta", "binomial", "chisquare", "dirichlet",
    "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto", "poisson",
    "power", "rayleigh", "set_state", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald", "weibull",
    "zipf", "RandomState",
})

#: wall-clock reads that leak nondeterminism into computed values.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

DEFAULT_TIME_GLOBS = ("*/backends/*.py", "*/dist/*.py", "*/tensor/*.py")
DEFAULT_RNG_GLOBS = ("*/tensor/random.py",)


class DeterminismRule(FileRule):
    id = "R001"
    name = "determinism"
    description = (
        "ban legacy numpy.random module-state APIs, wall-clock reads in "
        "kernel/backend code, and unseeded default_rng() outside the "
        "designated entropy module"
    )

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        time_globs = project.config.str_list_option(
            self.id, "time-globs", DEFAULT_TIME_GLOBS
        )
        rng_globs = project.config.str_list_option(
            self.id, "rng-globs", DEFAULT_RNG_GLOBS
        )
        time_scoped = ctx.matches(*time_globs)
        rng_exempt = ctx.matches(*rng_globs)
        called_funcs = {
            id(node.func) for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) or (
                isinstance(node, ast.Name)
            ):
                resolved = imports.resolve(node)
                if resolved is None:
                    continue
                if resolved.startswith("numpy.random."):
                    # Sub-chains resolve to "numpy.random" (no legacy
                    # leaf), so each legacy access is reported once.
                    leaf = resolved.rsplit(".", 1)[1]
                    if leaf in LEGACY_NP_RANDOM:
                        yield self.finding(
                            ctx,
                            node,
                            f"legacy numpy.random.{leaf} uses hidden "
                            "module state; draw from an explicitly "
                            "seeded numpy.random.default_rng(seed) "
                            "generator instead",
                        )
                if (
                    time_scoped
                    and resolved in WALL_CLOCK_CALLS
                    and id(node) in called_funcs
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read {resolved}() in kernel/backend "
                        "code breaks reproducibility; use "
                        "time.perf_counter() for durations or thread a "
                        "timestamp in from the caller",
                    )
            if isinstance(node, ast.Call):
                resolved = imports.resolve(node.func)
                if (
                    resolved == "numpy.random.default_rng"
                    and not node.args
                    and not node.keywords
                    and not rng_exempt
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "unseeded default_rng() draws OS entropy; pass an "
                        "explicit seed (only the designated entropy "
                        "module may omit it)",
                    )
