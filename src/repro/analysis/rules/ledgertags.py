"""R005 — ledger-tag registry: step tags trace back to the schedule.

PR 6 established the span-tag == ledger-tag contract: every executed
Step produces exactly one ledger record whose tag is reconstructed as
``{prefix}:{step.tag}``, and the tracing bridge names step spans by that
same tag — so modeled volumes, measured seconds and golden-ledger
fixtures all aggregate on one vocabulary. A ledger ``add_*`` call (or a
kernel invocation) with a tag outside that vocabulary silently falls out
of every aggregation.

This rule derives the canonical vocabulary *statically*:

* ``Step(tag=...)`` literals and f-strings in the schedule module
  (option ``schedule-glob``, default ``*/backends/schedule.py``) —
  f-string placeholders become wildcards, and any ``prefix:`` chain is
  allowed in front (the interpreters prepend ``hooi:it3:`` etc.);
* the ``tag=`` keyword-only defaults of the kernel methods in the base
  module (option ``base-glob``) — the kernel-family roots (``ttm``,
  ``svd``, ``norm``, ...), each allowed an optional ``:detail`` suffix;
* fnmatch-style patterns from option ``extra-tags`` for vocabularies
  that predate the Step compiler (the exact-STHOSVD phase tags).

Checked call sites: literal ``tag=`` arguments to ``add_comm`` /
``add_compute`` and to the kernel methods. F-string tags that *start*
with a literal part are checked with placeholders sampled as ``0``
(``f"sthosvd:ttm{mode}"`` checks ``"sthosvd:ttm0"``); fully dynamic tags
(``f"{tag}:gram"``) are the runtime conformance suite's job. The
schedule module itself is the vocabulary's source and is exempt.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from collections.abc import Iterator

from repro.analysis.core import FileContext, Finding, Project, Rule

__all__ = ["LedgerTagRule"]

DEFAULT_SCHEDULE_GLOB = "*/backends/schedule.py"
DEFAULT_BASE_GLOB = "*/backends/base.py"

#: ledger-recording calls whose ``tag=`` lands verbatim in the ledger.
LEDGER_CALLS = frozenset({"add_comm", "add_compute"})
#: backend kernel methods whose ``tag=`` labels the resulting record.
KERNEL_CALLS = frozenset({
    "ttm", "leading_factor", "sketch", "cross_gram", "regrid",
    "fro_norm_sq",
})


def _fstring_pattern(node: ast.JoinedStr) -> str | None:
    """Regex for an f-string tag; ``None`` when it starts dynamic."""
    if not node.values or isinstance(node.values[0], ast.FormattedValue):
        return None
    parts: list[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant):
            parts.append(re.escape(str(value.value)))
        else:
            parts.append(".+")
    return "".join(parts)


def _fstring_sample(node: ast.JoinedStr) -> str | None:
    """A representative concrete tag; ``None`` when it starts dynamic."""
    if not node.values or isinstance(node.values[0], ast.FormattedValue):
        return None
    parts: list[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant):
            parts.append(str(value.value))
        else:
            parts.append("0")
    return "".join(parts)


def _step_tag_patterns(tree: ast.Module) -> list[str]:
    """Patterns of every ``Step(tag=...)`` in the schedule module."""
    patterns: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "Step":
            continue
        for kw in node.keywords:
            if kw.arg != "tag":
                continue
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, str
            ):
                patterns.append(re.escape(kw.value.value))
            elif isinstance(kw.value, ast.JoinedStr):
                pattern = _fstring_pattern(kw.value)
                if pattern is not None:
                    patterns.append(pattern)
    return patterns


def _kernel_default_tags(tree: ast.Module) -> list[str]:
    """``tag=`` keyword-only defaults of the base module's methods."""
    tags: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        for arg, default in zip(
            node.args.kwonlyargs, node.args.kw_defaults
        ):
            if (
                arg.arg == "tag"
                and isinstance(default, ast.Constant)
                and isinstance(default.value, str)
            ):
                tags.append(default.value)
    return tags


class TagRegistry:
    """The canonical tag vocabulary as one compiled alternation."""

    def __init__(
        self,
        step_patterns: list[str],
        kernel_tags: list[str],
        extra_globs: tuple[str, ...],
    ) -> None:
        alternatives: list[str] = []
        for pattern in step_patterns:
            # any "prefix:" chain, then the step tag (with optional
            # power-iteration style ":detail" continuations).
            alternatives.append(f"(?:.+:)?{pattern}(?::.+)?")
        for tag in kernel_tags:
            alternatives.append(f"{re.escape(tag)}(?::.+)?")
        for glob in extra_globs:
            alternatives.append(fnmatch.translate(glob))
        self.known = bool(alternatives)
        self._regex = re.compile(
            "^(?:" + "|".join(alternatives) + ")$"
        ) if alternatives else None

    def allows(self, tag: str) -> bool:
        return self._regex is not None and bool(self._regex.match(tag))


class LedgerTagRule(Rule):
    id = "R005"
    name = "ledger-tag-registry"
    description = (
        "every literal ledger/kernel tag must belong to the canonical "
        "step-tag vocabulary derived from backends/schedule.py"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        schedule_glob = str(project.config.option(
            self.id, "schedule-glob", DEFAULT_SCHEDULE_GLOB
        ))
        base_glob = str(project.config.option(
            self.id, "base-glob", DEFAULT_BASE_GLOB
        ))
        extra = project.config.str_list_option(self.id, "extra-tags", ())
        schedule_ctx = project.find_file(schedule_glob)
        if schedule_ctx is None:
            return  # no vocabulary source to anchor to
        base_ctx = project.find_file(base_glob)
        registry = TagRegistry(
            _step_tag_patterns(schedule_ctx.tree),
            _kernel_default_tags(base_ctx.tree) if base_ctx else [],
            extra,
        )
        if not registry.known:
            yield self.finding(
                schedule_ctx,
                1,
                f"no Step(tag=...) vocabulary found in "
                f"{schedule_ctx.path}; the ledger-tag registry is empty",
            )
            return
        for ctx in project.files:
            if ctx is schedule_ctx:
                continue
            yield from self._check_calls(ctx, registry)

    def _check_calls(
        self, ctx: FileContext, registry: TagRegistry
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in LEDGER_CALLS | KERNEL_CALLS:
                continue
            for kw in node.keywords:
                if kw.arg != "tag":
                    continue
                tag: str | None = None
                shown: str | None = None
                if isinstance(kw.value, ast.Constant) and isinstance(
                    kw.value.value, str
                ):
                    tag = shown = kw.value.value
                elif isinstance(kw.value, ast.JoinedStr):
                    tag = _fstring_sample(kw.value)
                    if tag is not None:
                        shown = ast.unparse(kw.value)
                if tag is None:
                    continue  # dynamic: the conformance suite's job
                if not registry.allows(tag):
                    yield self.finding(
                        ctx,
                        kw.value,
                        f"tag {shown!r} is not in the canonical step-tag "
                        "vocabulary (backends/schedule.py Step tags + "
                        "kernel default roots); ledger aggregations and "
                        "the span-tag==ledger-tag contract will not see "
                        "it — add the Step tag or extend "
                        "[tool.repro.lint.rules.R005] extra-tags",
                    )
