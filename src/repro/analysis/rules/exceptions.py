"""R006 — exception-hygiene: no silent swallows of broad exceptions.

A ``bare except:`` or an ``except Exception:`` whose handler neither
re-raises nor logs turns every future bug into a silent no-op — the
serving layer's shed/failed requests and the batch layer's skipped items
must always leave a trail. The rule flags:

* ``except:`` (always — it also catches ``KeyboardInterrupt``);
* ``except Exception`` / ``except BaseException`` (alone or in a tuple)
  whose body contains neither a ``raise`` nor a call to a logger method
  (an attribute call like ``logger.warning(...)`` on a receiver whose
  dotted name contains ``log``).

Handlers that *narrow* the catch (``except (OSError, ValueError):``) are
out of scope — naming the expected failure set is exactly the fix this
rule pushes toward.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import FileContext, FileRule, Finding, Project
from repro.analysis.names import dotted_name

__all__ = ["ExceptionHygieneRule"]

BROAD = frozenset({"Exception", "BaseException"})
LOG_METHODS = frozenset({
    "debug", "info", "warning", "warn", "error", "exception", "critical",
    "log",
})


def _broad_names(node: ast.expr | None) -> list[str]:
    """The broad exception names caught by this handler's type expr."""
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    out: list[str] = []
    for expr in exprs:
        name: str | None = None
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        if name in BROAD:
            out.append(name)  # type: ignore[arg-type]
    return out


def _leaves_a_trail(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in LOG_METHODS
        ):
            receiver = dotted_name(node.func.value)
            if receiver is not None and "log" in receiver.lower():
                return True
    return False


class ExceptionHygieneRule(FileRule):
    id = "R006"
    name = "exception-hygiene"
    description = (
        "bare except / broad except Exception must re-raise or log; "
        "silent swallows hide failures"
    )

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt/SystemExit; name the expected "
                    "exception types",
                )
                continue
            broad = _broad_names(node.type)
            if broad and not _leaves_a_trail(node):
                yield self.finding(
                    ctx,
                    node,
                    f"broad 'except {broad[0]}' swallows without "
                    "re-raising or logging; narrow the caught types or "
                    "route the failure through "
                    "logging.getLogger('repro')",
                )
