"""``repro.analysis`` — the repo's own static analyzer.

Zero-dependency (stdlib ``ast`` only) lint layer that encodes the
invariants the runtime cannot cheaply check: seeded-RNG determinism
(R001), shared-memory segment ownership (R002), lock-order acyclicity
(R003), ``ExecutionBackend`` protocol conformance (R004), the canonical
ledger/span tag vocabulary (R005), and exception hygiene (R006).

Entry points:

* :func:`run_lint` — analyze a set of paths, return a
  :class:`LintReport` (active findings, suppressed findings, counts);
* ``repro lint [paths]`` — the CLI wrapper (text or ``--json``).

Suppression is layered and *reported*: inline
``# repro-lint: disable=R001`` pragmas and ``pyproject.toml``
``[tool.repro.lint]`` per-file ignores move findings into
``report.suppressed`` rather than discarding them, so the JSON artifact
always shows what the gate chose to ignore.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.analysis.config import LintConfig
from repro.analysis.core import FileContext, Finding, Project, Rule
from repro.analysis.rules import ALL_RULES, rule_by_id

__all__ = [
    "LintConfig",
    "LintReport",
    "Finding",
    "ALL_RULES",
    "rule_by_id",
    "collect_files",
    "run_lint",
]

#: pseudo-rule id for files the analyzer cannot parse.
PARSE_ERROR_RULE = "E000"


@dataclass
class LintReport:
    """The outcome of one analyzer run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files": self.files,
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LintReport":
        findings = [
            Finding.from_dict(item)  # type: ignore[arg-type]
            for item in data.get("findings", [])  # type: ignore[union-attr]
        ]
        suppressed = [
            Finding.from_dict(item)  # type: ignore[arg-type]
            for item in data.get("suppressed", [])  # type: ignore[union-attr]
        ]
        return cls(
            findings=findings,
            suppressed=suppressed,
            files=int(data.get("files", 0)),  # type: ignore[arg-type]
        )


def collect_files(
    paths: Sequence[str], config: LintConfig
) -> tuple[list[str], list[str]]:
    """Expand ``paths`` into ``.py`` files, honoring ``config.exclude``.

    Returns ``(selected, excluded)`` — both sorted, both relative to the
    caller's working directory when the inputs were relative.
    """
    selected: set[str] = set()
    excluded: set[str] = set()

    def consider(path: str) -> None:
        normalized = path.replace(os.sep, "/")
        if config.excluded(normalized):
            excluded.add(normalized)
        else:
            selected.add(normalized)

    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                consider(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if d not in ("__pycache__",) and not d.startswith(".")
            )
            for name in sorted(names):
                if name.endswith(".py"):
                    consider(os.path.join(root, name))
    return sorted(selected), sorted(excluded)


def _parse(path: str) -> tuple[FileContext | None, Finding | None]:
    try:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError) as exc:
        return None, Finding(
            path=path,
            line=getattr(exc, "lineno", None) or 1,
            rule=PARSE_ERROR_RULE,
            message=f"cannot analyze: {exc}",
            severity="error",
        )
    return FileContext(path, source, tree), None


def run_lint(
    paths: Sequence[str],
    *,
    config: LintConfig | None = None,
    rules: Iterable[str] | None = None,
) -> LintReport:
    """Analyze ``paths`` and return the :class:`LintReport`.

    ``rules`` restricts the run to the given rule ids (unknown ids raise
    ``ValueError`` — a typo must not silently pass the gate). ``config``
    defaults to the nearest ``pyproject.toml``'s ``[tool.repro.lint]``.
    """
    if config is None:
        anchor = paths[0] if paths else os.getcwd()
        config = LintConfig.load(anchor)

    selected_rules: list[Rule] = []
    if rules is None:
        selected_rules = [cls() for cls in ALL_RULES]
    else:
        for rule_id in rules:
            cls = rule_by_id(rule_id)
            if cls is None:
                known = ", ".join(r.id for r in ALL_RULES)
                raise ValueError(
                    f"unknown rule id {rule_id!r} (known: {known})"
                )
            selected_rules.append(cls())

    report = LintReport()
    contexts: list[FileContext] = []
    files, _ = collect_files(paths, config)
    for path in files:
        ctx, error = _parse(path)
        if error is not None:
            report.findings.append(error)
        if ctx is not None:
            contexts.append(ctx)
    report.files = len(contexts)

    project = Project(contexts, config)
    by_path = {ctx.path: ctx for ctx in project.files}
    raw: list[Finding] = []
    for rule in selected_rules:
        raw.extend(rule.check(project))

    for finding in sorted(raw):
        ctx = by_path.get(finding.path)
        inline = ctx is not None and ctx.suppressed(
            finding.rule, finding.line
        )
        configured = config.ignored(finding.path, finding.rule)
        if inline or configured:
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    report.findings.sort()
    report.suppressed.sort()
    return report
