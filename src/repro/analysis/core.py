"""Core of the static analyzer: findings, pragmas, files, projects.

The analyzer is deliberately zero-dependency: everything is built on the
stdlib ``ast`` module. A :class:`Project` is a parsed snapshot of the
files under analysis; each :class:`Rule` walks it and yields
:class:`Finding` records. Suppression happens *after* rules run — rules
stay oblivious to pragmas and configuration, which keeps every rule
testable in isolation and lets the driver report suppressed findings
(they are counted, not silently dropped).

Inline pragmas use the ``# repro-lint:`` marker::

    x = np.random.rand(3)  # repro-lint: disable=R001
    shm = SharedMemory(create=True, size=n)  # repro-lint: shm-transfer=returned to caller

``disable`` without rule ids suppresses every rule on that line;
``shm-transfer`` is the ownership-transfer annotation rule R002 honors.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.analysis.config import LintConfig

__all__ = [
    "Finding",
    "FileContext",
    "Pragma",
    "Project",
    "Rule",
    "FileRule",
    "parse_pragmas",
    "match_path",
]

#: rule id shape: one capital letter, three digits (R001, E000, ...).
RULE_ID_RE = re.compile(r"^[A-Z]\d{3}$")

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>[^#]*)")
_DIRECTIVE_RE = re.compile(
    r"(?P<key>[a-z][a-z-]*)(?:=(?P<value>[^;]*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
        )

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro-lint:`` directive on one line."""

    directive: str
    #: for ``disable``: the suppressed rule ids (empty = all rules).
    rules: frozenset[str]
    value: str = ""


def parse_pragmas(source: str) -> dict[int, tuple[Pragma, ...]]:
    """Extract ``# repro-lint:`` directives, keyed by 1-based line.

    Directives are comma/semicolon tolerant: ``disable=R001,R002`` names
    two rules, ``disable`` alone suppresses everything on the line, and
    multiple directives may share a line separated by ``;``.
    """
    out: dict[int, tuple[Pragma, ...]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        pragmas: list[Pragma] = []
        for part in match.group("body").split(";"):
            part = part.strip()
            if not part:
                continue
            dmatch = _DIRECTIVE_RE.match(part)
            if dmatch is None:
                continue
            key = dmatch.group("key")
            value = (dmatch.group("value") or "").strip()
            rules = frozenset(
                token.strip()
                for token in value.split(",")
                if RULE_ID_RE.match(token.strip())
            )
            pragmas.append(Pragma(directive=key, rules=rules, value=value))
        if pragmas:
            out[lineno] = tuple(pragmas)
    return out


def match_path(path: str, pattern: str) -> bool:
    """fnmatch with a repo-friendly twist: patterns match full relative
    paths or any path suffix (``backends/*.py`` matches
    ``src/repro/backends/base.py``)."""
    normalized = path.replace("\\", "/")
    return fnmatch.fnmatch(normalized, pattern) or fnmatch.fnmatch(
        normalized, "*/" + pattern
    )


class FileContext:
    """One parsed source file: path, text, AST, pragmas."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.pragmas = parse_pragmas(source)

    def pragmas_on(self, line: int) -> tuple[Pragma, ...]:
        return self.pragmas.get(line, ())

    def has_directive(self, line: int, directive: str) -> bool:
        return any(
            p.directive == directive for p in self.pragmas_on(line)
        )

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Does an inline pragma suppress ``rule_id`` on ``line``?"""
        for pragma in self.pragmas_on(line):
            if pragma.directive != "disable":
                continue
            if not pragma.rules or rule_id in pragma.rules:
                return True
        return False

    def matches(self, *patterns: str) -> bool:
        return any(match_path(self.path, p) for p in patterns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileContext(path={self.path!r})"


class Project:
    """Every file under analysis plus the active configuration."""

    def __init__(
        self, files: Iterable[FileContext], config: LintConfig
    ) -> None:
        self.files = sorted(files, key=lambda ctx: ctx.path)
        self.config = config

    def find_file(self, *patterns: str) -> FileContext | None:
        """First file whose path matches any of ``patterns``."""
        for ctx in self.files:
            if ctx.matches(*patterns):
                return ctx
        return None

    def __iter__(self) -> Iterator[FileContext]:
        return iter(self.files)


class Rule:
    """A lint rule: an id, a severity, and a :meth:`check` visitor.

    Subclasses override :meth:`check` (project-wide rules) or derive from
    :class:`FileRule` and override :meth:`check_file` (per-file rules).
    Rules read options via ``project.config.option(self.id, key, default)``
    so every knob is overridable from ``[tool.repro.lint.rules.<id>]``.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST | int, message: str
    ) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            path=ctx.path,
            line=int(line),
            rule=self.id,
            message=message,
            severity=self.severity,
        )


class FileRule(Rule):
    """A rule that inspects each file independently."""

    def check(self, project: Project) -> Iterator[Finding]:
        for ctx in project.files:
            yield from self.check_file(ctx, project)

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Finding]:
        raise NotImplementedError
