"""Configuration for ``repro lint``: ``pyproject.toml [tool.repro.lint]``.

Recognized keys::

    [tool.repro.lint]
    disable = ["R006"]                 # rule ids off everywhere
    exclude = ["src/repro/_vendored/*"]  # file globs never analyzed

    [tool.repro.lint.per-file-ignores]
    "src/repro/bench/*.py" = ["R001"]  # rules off for matching files

    [tool.repro.lint.rules.R005]
    extra-tags = ["sthosvd:*"]         # rule-specific options

Globs match full relative paths or any path suffix (see
:func:`repro.analysis.core.match_path`). Loading is tolerant of a missing
file or a missing table — the defaults are an empty configuration — but a
*malformed* table (wrong types) raises ``ValueError`` so a typo cannot
silently disable the gate.
"""

from __future__ import annotations

import fnmatch
import os
import tomllib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

__all__ = ["LintConfig", "find_pyproject"]


def _str_list(value: object, key: str) -> tuple[str, ...]:
    if value is None:
        return ()
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ValueError(f"[tool.repro.lint] {key} must be a list of strings")
    out: list[str] = []
    for item in value:
        if not isinstance(item, str):
            raise ValueError(
                f"[tool.repro.lint] {key} entries must be strings, "
                f"got {item!r}"
            )
        out.append(item)
    return tuple(out)


def find_pyproject(start: str) -> str | None:
    """Nearest ``pyproject.toml`` at or above ``start`` (a file or dir)."""
    path = os.path.abspath(start)
    if os.path.isfile(path):
        path = os.path.dirname(path)
    while True:
        candidate = os.path.join(path, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(path)
        if parent == path:
            return None
        path = parent


@dataclass(frozen=True)
class LintConfig:
    """Parsed ``[tool.repro.lint]`` settings."""

    disable: frozenset[str] = frozenset()
    exclude: tuple[str, ...] = ()
    per_file_ignores: tuple[tuple[str, frozenset[str]], ...] = ()
    rule_options: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict
    )
    source: str = "<defaults>"

    @classmethod
    def from_mapping(
        cls, table: Mapping[str, object], *, source: str = "<mapping>"
    ) -> "LintConfig":
        disable = frozenset(_str_list(table.get("disable"), "disable"))
        exclude = _str_list(table.get("exclude"), "exclude")
        raw_ignores = table.get("per-file-ignores", {})
        if not isinstance(raw_ignores, Mapping):
            raise ValueError(
                "[tool.repro.lint] per-file-ignores must be a table"
            )
        ignores: list[tuple[str, frozenset[str]]] = []
        for pattern, rules in raw_ignores.items():
            ignores.append(
                (str(pattern), frozenset(_str_list(rules, "per-file-ignores")))
            )
        raw_rules = table.get("rules", {})
        if not isinstance(raw_rules, Mapping):
            raise ValueError("[tool.repro.lint] rules must be a table")
        rule_options: dict[str, Mapping[str, object]] = {}
        for rule_id, options in raw_rules.items():
            if not isinstance(options, Mapping):
                raise ValueError(
                    f"[tool.repro.lint.rules.{rule_id}] must be a table"
                )
            rule_options[str(rule_id)] = dict(options)
        return cls(
            disable=disable,
            exclude=exclude,
            per_file_ignores=tuple(ignores),
            rule_options=rule_options,
            source=source,
        )

    @classmethod
    def load(cls, start: str | None = None) -> "LintConfig":
        """Load from the nearest ``pyproject.toml`` (empty when absent)."""
        pyproject = find_pyproject(start or os.getcwd())
        if pyproject is None:
            return cls()
        return cls.load_file(pyproject)

    @classmethod
    def load_file(cls, path: str) -> "LintConfig":
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
        tool = data.get("tool", {})
        if not isinstance(tool, Mapping):
            return cls(source=path)
        repro = tool.get("repro", {})
        if not isinstance(repro, Mapping):
            return cls(source=path)
        lint = repro.get("lint", {})
        if not isinstance(lint, Mapping):
            raise ValueError(f"{path}: [tool.repro.lint] must be a table")
        return cls.from_mapping(lint, source=path)

    # -- queries ---------------------------------------------------------- #

    def excluded(self, path: str) -> bool:
        return any(_match(path, pattern) for pattern in self.exclude)

    def ignored(self, path: str, rule_id: str) -> bool:
        """Is ``rule_id`` configured off for ``path``?"""
        if rule_id in self.disable:
            return True
        for pattern, rules in self.per_file_ignores:
            if _match(path, pattern) and (not rules or rule_id in rules):
                return True
        return False

    def option(self, rule_id: str, key: str, default: object) -> object:
        options = self.rule_options.get(rule_id)
        if options is None or key not in options:
            return default
        return options[key]

    def str_list_option(
        self, rule_id: str, key: str, default: Sequence[str]
    ) -> tuple[str, ...]:
        value = self.option(rule_id, key, None)
        if value is None:
            return tuple(default)
        return _str_list(value, f"rules.{rule_id}.{key}")


def _match(path: str, pattern: str) -> bool:
    normalized = path.replace("\\", "/")
    return fnmatch.fnmatch(normalized, pattern) or fnmatch.fnmatch(
        normalized, "*/" + pattern
    )
