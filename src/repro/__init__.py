"""repro: a reproduction of "On Optimizing Distributed Tucker Decomposition
for Dense Tensors" (Chakaravarthy et al., IPDPS 2017).

The package implements the paper's full system:

* the **planner** — optimal TTM-trees (O(4^N) DP), optimal static grids and
  the optimal dynamic-gridding DP, plus every prior-work heuristic the paper
  benchmarks (chain/balanced trees, K-/h-orderings);
* the **engine** — a block-distributed dense-tensor runtime (distributed
  TTM via reduce-scatter, regridding via all-to-all, Gram+EVD SVD) running
  on a deterministic in-process virtual cluster with exact communication
  volume accounting and an alpha-beta time model (the paper's BG/Q is
  unavailable; volumes and FLOPs are machine-independent, see DESIGN.md);
* the **algorithms** — HOOI (Figure 2) and STHOSVD, sequential and
  distributed;
* the **benchmark harness** regenerating every table and figure of the
  paper's evaluation (see benchmarks/ and EXPERIMENTS.md).

Quickstart (the session API: plan once, compile, run many tensors)::

    import numpy as np
    from repro import TuckerSession

    T = np.random.default_rng(0).standard_normal((40, 30, 20, 10))
    session = TuckerSession(backend="simcluster", n_procs=8)
    result = session.run(T, (8, 6, 5, 4))      # compiles + caches the plan
    print(result.error, result.backend, session.backend.stats())

Backends: ``"sequential"`` (numpy), ``"simcluster"`` (the virtual cluster
with exact volume accounting), ``"threaded"`` (shared-memory block
parallelism), ``"procpool"`` (multi-core process pool over shared-memory
segments) — or ``"auto"``, which scores the input's metadata against a
calibratable cost model and picks per tensor. The legacy one-shot entry
points (``tucker``, ``hooi_sequential``, ``hooi_distributed``) remain as
deprecation shims.
"""

import logging as _logging

# Library logging hygiene: "repro" and its children emit through here; a
# NullHandler keeps us silent unless the application (or `repro -v`)
# attaches a real handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro._version import __version__
from repro.core import (
    TensorMeta,
    TTMTree,
    chain_tree,
    balanced_tree,
    optimal_tree,
    optimal_tree_cost,
    tree_cost,
    psi,
    valid_grids,
    optimal_static_grid,
    optimal_dynamic_scheme,
    GridScheme,
    Plan,
    Planner,
)
from repro.mpi import MachineModel, SimCluster
from repro.dist import DistTensor, dist_ttm, regrid
from repro.backends import (
    BackendUnavailableError,
    ExecutionBackend,
    ProcessPoolBackend,
    Selection,
    SequentialBackend,
    SimClusterBackend,
    ThreadedBackend,
    get_backend,
    select_backend,
)
from repro.session import (
    BatchFailure,
    BatchItem,
    BatchResult,
    CompiledPlan,
    TuckerSession,
    compile_plan,
)
from repro.hooi import (
    TuckerDecomposition,
    sthosvd,
    dist_sthosvd,
    sthosvd_grid_plan,
    hooi_sequential,
    hooi_distributed,
    hooi_reference_step,
    ModelReport,
    predict,
    select_plan,
    tucker,
    TuckerResult,
)
from repro.tensor import (
    ttm,
    ttm_chain,
    unfold,
    fold,
    random_tensor,
    low_rank_tensor,
    separable_field_tensor,
)

__all__ = [
    "__version__",
    "TensorMeta",
    "TTMTree",
    "chain_tree",
    "balanced_tree",
    "optimal_tree",
    "optimal_tree_cost",
    "tree_cost",
    "psi",
    "valid_grids",
    "optimal_static_grid",
    "optimal_dynamic_scheme",
    "GridScheme",
    "Plan",
    "Planner",
    "MachineModel",
    "SimCluster",
    "DistTensor",
    "dist_ttm",
    "regrid",
    "ExecutionBackend",
    "BackendUnavailableError",
    "SequentialBackend",
    "SimClusterBackend",
    "ThreadedBackend",
    "ProcessPoolBackend",
    "Selection",
    "select_backend",
    "get_backend",
    "BatchFailure",
    "BatchItem",
    "BatchResult",
    "CompiledPlan",
    "TuckerSession",
    "compile_plan",
    "TuckerDecomposition",
    "sthosvd",
    "dist_sthosvd",
    "sthosvd_grid_plan",
    "hooi_sequential",
    "hooi_distributed",
    "hooi_reference_step",
    "ModelReport",
    "predict",
    "select_plan",
    "tucker",
    "TuckerResult",
    "ttm",
    "ttm_chain",
    "unfold",
    "fold",
    "random_tensor",
    "low_rank_tensor",
    "separable_field_tensor",
]
