"""repro: a reproduction of "On Optimizing Distributed Tucker Decomposition
for Dense Tensors" (Chakaravarthy et al., IPDPS 2017).

The package implements the paper's full system:

* the **planner** — optimal TTM-trees (O(4^N) DP), optimal static grids and
  the optimal dynamic-gridding DP, plus every prior-work heuristic the paper
  benchmarks (chain/balanced trees, K-/h-orderings);
* the **engine** — a block-distributed dense-tensor runtime (distributed
  TTM via reduce-scatter, regridding via all-to-all, Gram+EVD SVD) running
  on a deterministic in-process virtual cluster with exact communication
  volume accounting and an alpha-beta time model (the paper's BG/Q is
  unavailable; volumes and FLOPs are machine-independent, see DESIGN.md);
* the **algorithms** — HOOI (Figure 2) and STHOSVD, sequential and
  distributed;
* the **benchmark harness** regenerating every table and figure of the
  paper's evaluation (see benchmarks/ and EXPERIMENTS.md).

Quickstart::

    import numpy as np
    from repro import TensorMeta, Planner, SimCluster, sthosvd, hooi_distributed

    T = np.random.default_rng(0).standard_normal((40, 30, 20, 10))
    meta = TensorMeta(dims=T.shape, core=(8, 6, 5, 4))
    plan = Planner(n_procs=8, tree="optimal", grid="dynamic").plan(meta)
    init = sthosvd(T, meta.core)
    cluster = SimCluster(8)
    result = hooi_distributed(cluster, T, init, plan=plan)
    print(result.errors, cluster.stats.volume())
"""

from repro._version import __version__
from repro.core import (
    TensorMeta,
    TTMTree,
    chain_tree,
    balanced_tree,
    optimal_tree,
    optimal_tree_cost,
    tree_cost,
    psi,
    valid_grids,
    optimal_static_grid,
    optimal_dynamic_scheme,
    GridScheme,
    Plan,
    Planner,
)
from repro.mpi import MachineModel, SimCluster
from repro.dist import DistTensor, dist_ttm, regrid
from repro.hooi import (
    TuckerDecomposition,
    sthosvd,
    dist_sthosvd,
    sthosvd_grid_plan,
    hooi_sequential,
    hooi_distributed,
    hooi_reference_step,
    ModelReport,
    predict,
    select_plan,
    tucker,
    TuckerResult,
)
from repro.tensor import (
    ttm,
    ttm_chain,
    unfold,
    fold,
    random_tensor,
    low_rank_tensor,
    separable_field_tensor,
)

__all__ = [
    "__version__",
    "TensorMeta",
    "TTMTree",
    "chain_tree",
    "balanced_tree",
    "optimal_tree",
    "optimal_tree_cost",
    "tree_cost",
    "psi",
    "valid_grids",
    "optimal_static_grid",
    "optimal_dynamic_scheme",
    "GridScheme",
    "Plan",
    "Planner",
    "MachineModel",
    "SimCluster",
    "DistTensor",
    "dist_ttm",
    "regrid",
    "TuckerDecomposition",
    "sthosvd",
    "dist_sthosvd",
    "sthosvd_grid_plan",
    "hooi_sequential",
    "hooi_distributed",
    "hooi_reference_step",
    "ModelReport",
    "predict",
    "select_plan",
    "tucker",
    "TuckerResult",
    "ttm",
    "ttm_chain",
    "unfold",
    "fold",
    "random_tensor",
    "low_rank_tensor",
    "separable_field_tensor",
]
