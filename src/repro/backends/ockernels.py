"""Out-of-core kernels shared by the in-process shared-memory backends.

When a run spills (handle = :class:`~repro.storage.StoredTensor` instead
of an ndarray), the sequential and threaded backends execute these
implementations: every kernel walks the tensor in store-budgeted blocks
(:func:`~repro.backends.blockpar.oc_block_slices`), materializes one
block at a time under a :class:`~repro.storage.ResidentGauge` lease, and
writes TTM outputs through a freshly allocated store block — so the full
tensor is never resident, only ``O(block)`` bytes per in-flight worker.

The two backends differ only in how blocks are mapped over workers, so
each kernel takes a ``map_fn``: ``serial_map`` for the sequential
backend, an executor's ``map`` for the threaded one. Both preserve
ascending block order in reductions, the same fixed-order discipline the
rest of the codebase uses, so out-of-core runs remain deterministic and
agree with the in-memory reference to the conformance harness's 1e-10.

The process-pool backend does not use these (its workers map the spill
files directly — see :mod:`repro.backends.procpool`), but shares the
block geometry, so all three cut identical blocks for a given store.
"""

from __future__ import annotations

import numpy as np

from repro.backends.blockpar import (
    OC_LEASE_FACTOR,
    oc_block_slices,
    reduce_partials,
    split_mode,
)
from repro.backends.sketch import add_block_contribution, out_shape
from repro.storage import BlockStore, StoredTensor
from repro.tensor.ttm import ttm
from repro.tensor.unfold import unfold


def serial_map(func, items) -> list:
    """The sequential backend's one-block-at-a-time map."""
    return [func(item) for item in items]


def oc_distribute(tensor: np.ndarray, store: BlockStore) -> StoredTensor:
    """Place a tensor into the store without materializing it.

    An already memory-mapped C-contiguous input (a lazily opened ``.npy``)
    is wrapped in place — zero copy, zero spill bytes; anything else is
    written through in store-chunked slabs.
    """
    if (
        isinstance(tensor, np.memmap)
        and tensor.filename is not None
        and tensor.flags["C_CONTIGUOUS"]
    ):
        try:
            return StoredTensor.external(store, tensor)
        except ValueError:
            pass  # unlocatable backing region: spill a copy instead
    return StoredTensor.spill(store, np.asarray(tensor))


def _block_index(ndim: int, split: int, sl: slice) -> tuple:
    index: list[slice] = [slice(None)] * ndim
    index[split] = sl
    return tuple(index)


def _slab_bytes(handle: StoredTensor, split: int) -> int:
    """Bytes of one unit of the split axis."""
    return max(1, handle.nbytes // max(1, handle.shape[split]))


def oc_ttm(
    handle: StoredTensor,
    matrix: np.ndarray,
    mode: int,
    n_workers: int,
    map_fn,
) -> StoredTensor:
    """``Z = X x_mode matrix`` block by block, output spilled to the store."""
    store = handle.store
    matrix = np.asarray(matrix)
    out_shape = (
        handle.shape[:mode] + (matrix.shape[0],) + handle.shape[mode + 1 :]
    )
    out_dtype = np.result_type(handle.dtype, matrix.dtype)
    out = StoredTensor.allocate(store, out_shape, out_dtype)
    src = handle.open()
    dst = out.writer()
    try:
        split = split_mode(handle.shape, avoid=mode)
        if split is None:
            with store.gauge.lease(OC_LEASE_FACTOR * handle.nbytes):
                dst[...] = ttm(np.ascontiguousarray(src), matrix, mode)
        else:
            slab = _slab_bytes(handle, split)
            slices = oc_block_slices(
                handle.shape,
                split,
                handle.dtype.itemsize,
                store.per_block_bytes(n_workers),
                n_workers,
            )

            def work(sl: slice) -> None:
                index = _block_index(handle.ndim, split, sl)
                with store.gauge.lease(
                    OC_LEASE_FACTOR * (sl.stop - sl.start) * slab
                ):
                    dst[index] = ttm(
                        np.ascontiguousarray(src[index]), matrix, mode
                    )

            map_fn(work, slices)
        if hasattr(dst, "flush"):
            dst.flush()
    finally:
        del dst, src
    return out


def oc_gram(
    handle: StoredTensor,
    mode: int,
    n_workers: int,
    map_fn,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """The mode-``mode`` Gram matrix ``U U^T``, accumulated block-wise.

    Partials are summed in ascending block order
    (:func:`~repro.backends.blockpar.reduce_partials`), so the result is
    deterministic and matches the threaded backend's reduction discipline.
    """
    store = handle.store
    length = handle.shape[mode]
    src = handle.open()
    try:
        split = split_mode(handle.shape, avoid=mode)
        if split is None:
            with store.gauge.lease(OC_LEASE_FACTOR * handle.nbytes):
                u = unfold(np.ascontiguousarray(src), mode)
                return u @ u.T
        slab = _slab_bytes(handle, split)
        slices = oc_block_slices(
            handle.shape,
            split,
            handle.dtype.itemsize,
            store.per_block_bytes(n_workers),
            n_workers,
        )

        def partial(sl: slice) -> np.ndarray:
            index = _block_index(handle.ndim, split, sl)
            with store.gauge.lease(
                OC_LEASE_FACTOR * (sl.stop - sl.start) * slab
            ):
                u = unfold(np.ascontiguousarray(src[index]), mode)
                return u @ u.T

        partials = map_fn(partial, slices)
        return reduce_partials(partials, length, out)
    finally:
        del src


def oc_norm_sq(handle: StoredTensor, n_workers: int, map_fn) -> float:
    """Squared Frobenius norm over budget-bounded flat chunks."""
    store = handle.store
    src = handle.open()
    try:
        flat = src.reshape(-1)
        slices = oc_block_slices(
            (handle.size,),
            0,
            handle.dtype.itemsize,
            store.per_block_bytes(n_workers),
            n_workers,
        )
        if len(slices) <= 1:
            with store.gauge.lease(OC_LEASE_FACTOR * handle.nbytes):
                piece = np.ascontiguousarray(flat)
                return float(np.dot(piece, piece))

        def partial(sl: slice) -> float:
            with store.gauge.lease(
                OC_LEASE_FACTOR
                * (sl.stop - sl.start)
                * handle.dtype.itemsize
            ):
                piece = np.ascontiguousarray(flat[sl])
                return float(np.dot(piece, piece))

        # Ascending chunk order: deterministic, same discipline as the
        # in-memory threaded reduction.
        return float(sum(map_fn(partial, slices)))
    finally:
        del src


def oc_sketch(
    handle: StoredTensor,
    specs,
    n_workers: int,
    map_fn,
) -> tuple[list[np.ndarray], float]:
    """All sketches plus the squared norm in **one read pass** over blocks.

    This is the out-of-core payoff of sketching: every spec's
    contribution and the norm partial are computed from a block while it
    is resident under its lease, so a spilled input is read exactly once
    no matter how many sketches are requested. Partials are summed in
    ascending block order, the usual determinism discipline.
    """
    store = handle.store
    full = tuple((0, int(d)) for d in handle.shape)
    src = handle.open()
    try:
        split = split_mode(handle.shape, avoid=None)
        if split is None:
            with store.gauge.lease(OC_LEASE_FACTOR * handle.nbytes):
                block = np.ascontiguousarray(src)
                outs = []
                for spec in specs:
                    out = np.zeros(
                        out_shape(handle.shape, spec), dtype=handle.dtype
                    )
                    add_block_contribution(out, block, spec, full)
                    outs.append(out)
                flat = block.reshape(-1)
                return outs, float(np.dot(flat, flat))
        slab = _slab_bytes(handle, split)
        slices = oc_block_slices(
            handle.shape,
            split,
            handle.dtype.itemsize,
            store.per_block_bytes(n_workers),
            n_workers,
        )

        def partial(sl: slice):
            index = _block_index(handle.ndim, split, sl)
            ranges = tuple(
                (sl.start, sl.stop) if m == split else full[m]
                for m in range(handle.ndim)
            )
            with store.gauge.lease(
                OC_LEASE_FACTOR * (sl.stop - sl.start) * slab
            ):
                block = np.ascontiguousarray(src[index])
                contribs = []
                for spec in specs:
                    out = np.zeros(
                        out_shape(handle.shape, spec), dtype=handle.dtype
                    )
                    add_block_contribution(out, block, spec, ranges)
                    contribs.append(out)
                flat = block.reshape(-1)
                return contribs, float(np.dot(flat, flat))

        results = map_fn(partial, slices)
        outs = [
            np.zeros(out_shape(handle.shape, spec), dtype=handle.dtype)
            for spec in specs
        ]
        norm_sq = 0.0
        for contribs, part in results:  # ascending block order
            for out, contrib in zip(outs, contribs):
                out += contrib
            norm_sq += part
        return outs, float(norm_sq)
    finally:
        del src


def oc_cross_gram(
    a: StoredTensor,
    b: StoredTensor,
    mode: int,
    n_workers: int,
    map_fn,
) -> np.ndarray:
    """``unfold(A, mode) @ unfold(B, mode).T`` accumulated block-wise.

    Both tensors are cut along the same (non-``mode``) axis so each
    block pair restricts the unfoldings to identical column sets; block
    products then simply add, in ascending block order.
    """
    store = a.store
    length = a.shape[mode]
    src_a = a.open()
    src_b = b.open()
    try:
        split = split_mode(a.shape, avoid=mode)
        if split is None:
            with store.gauge.lease(OC_LEASE_FACTOR * (a.nbytes + b.nbytes)):
                ua = unfold(np.ascontiguousarray(src_a), mode)
                ub = unfold(np.ascontiguousarray(src_b), mode)
                return ua @ ub.T
        slab = _slab_bytes(a, split) + _slab_bytes(b, split)
        slices = oc_block_slices(
            a.shape,
            split,
            a.dtype.itemsize,
            store.per_block_bytes(n_workers),
            n_workers,
        )

        def partial(sl: slice) -> np.ndarray:
            index = _block_index(a.ndim, split, sl)
            with store.gauge.lease(
                OC_LEASE_FACTOR * (sl.stop - sl.start) * slab
            ):
                ua = unfold(np.ascontiguousarray(src_a[index]), mode)
                ub = unfold(np.ascontiguousarray(src_b[index]), mode)
                return ua @ ub.T

        partials = map_fn(partial, slices)
        return reduce_partials(partials, length)
    finally:
        del src_a, src_b


__all__ = [
    "oc_cross_gram",
    "oc_distribute",
    "oc_gram",
    "oc_norm_sq",
    "oc_sketch",
    "serial_map",
]
