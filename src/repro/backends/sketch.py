"""Shared math for randomized (sketched) Tucker decomposition.

Implements the building blocks of randomized-range-finder STHOSVD and
the single-pass sketching variant of Minster, Li & Ballard ("Parallel
Randomized Tucker Decomposition Algorithms", PAPERS.md):

* a :class:`SketchSpec` names one sketch of the input: which mode is
  *kept* (uncompressed) and one Gaussian test matrix per compressed
  mode. Contracting the input with all the test matrices yields a small
  tensor ``W = Y x_{m != n} Omega_m`` whose mode-``n`` unfolding spans
  (approximately) the top left-singular subspace of ``Y_(n)``;
* :func:`add_block_contribution` is the one kernel every backend blocks
  over: a *block's* contribution to a sketch is the same TTM chain with
  the test matrices column-restricted to the block's global ranges, and
  block contributions simply **add** — which is what makes a sketch a
  single read pass over spilled blocks and a single reduced-volume
  allreduce on the virtual cluster;
* factor extraction, sign-fixed orthonormalization for power
  iterations, and the small least-squares core solve of the single-pass
  variant.

Determinism contract: all test matrices are drawn host-side from one
``numpy.random.default_rng(seed)`` in a documented fixed order (the
spec builders below), in float64, then cast to the working dtype — so
every backend contracts the *same* matrices and a given ``(seed,
backend)`` pair is bitwise reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tensor.linalg import (
    deterministic_sign,
    leading_left_singular_vectors,
)
from repro.tensor.ttm import ttm_chain
from repro.tensor.unfold import unfold

__all__ = [
    "SketchSpec",
    "add_block_contribution",
    "core_sketch_spec",
    "factor_from_matrix",
    "mode_sketch_spec",
    "orthonormal_cols",
    "out_shape",
    "single_pass_specs",
    "sketch_arrays",
    "sketch_flops",
    "sketch_width",
    "solve_core",
]


@dataclass(frozen=True, eq=False)
class SketchSpec:
    """One sketch: keep ``mode``, compress every mode in ``omegas``.

    ``mode`` is the kept (uncompressed) mode, or ``-1`` for a *core*
    sketch that compresses every mode. ``omegas`` maps each compressed
    mode ``m`` to its test matrix of shape ``(s_m, L_m)``.
    """

    mode: int
    omegas: dict[int, np.ndarray] = field(repr=False)

    def out_dims(self, dims: tuple[int, ...]) -> tuple[int, ...]:
        return out_shape(dims, self)


def sketch_width(k: int, p: int, dim: int) -> int:
    """Oversampled sketch width ``min(k + p, dim)`` (clamped, >= 1).

    Oversampling past the mode length buys nothing (the range is already
    exact), so ``rank + p > dim`` clamps instead of crashing.
    """
    return max(1, min(int(k) + int(p), int(dim)))


def out_shape(dims, spec: SketchSpec) -> tuple[int, ...]:
    """The sketch tensor's shape: ``s_m`` on compressed modes."""
    return tuple(
        spec.omegas[m].shape[0] if m in spec.omegas else int(d)
        for m, d in enumerate(dims)
    )


def _draw(rng: np.random.Generator, rows: int, cols: int, dtype) -> np.ndarray:
    matrix = rng.standard_normal((rows, cols))
    return np.ascontiguousarray(matrix.astype(dtype, copy=False))


def mode_sketch_spec(
    rng: np.random.Generator,
    dims,
    mode: int,
    k: int,
    p: int,
    dtype,
) -> SketchSpec:
    """The rsthosvd sketch for one mode at the input's *current* dims.

    Draw order (the determinism contract): one ``(s_m, L_m)`` Gaussian
    per compressed mode, modes ascending.
    """
    dims = tuple(int(d) for d in dims)
    omegas = {
        m: _draw(rng, sketch_width(k, p, dims[m]), dims[m], dtype)
        for m in range(len(dims))
        if m != mode
    }
    return SketchSpec(mode=int(mode), omegas=omegas)


def core_sketch_spec(
    rng: np.random.Generator,
    dims,
    core,
    p: int,
    dtype,
) -> SketchSpec:
    """The single-pass *core* sketch: compress every mode.

    Core sketch widths follow Minster et al.: ``t_m = min(2 s_m + 1,
    L_m)`` with ``s_m = min(k_m + p, L_m)``, so the small least-squares
    solve recovering the core is overdetermined. Draw order: one
    ``(t_m, L_m)`` Gaussian per mode, modes ascending.
    """
    dims = tuple(int(d) for d in dims)
    omegas = {}
    for m, (d, k) in enumerate(zip(dims, core)):
        s = sketch_width(k, p, d)
        omegas[m] = _draw(rng, min(2 * s + 1, d), d, dtype)
    return SketchSpec(mode=-1, omegas=omegas)


def single_pass_specs(
    rng: np.random.Generator,
    dims,
    core,
    p: int,
    dtype,
) -> list[SketchSpec]:
    """All sp-rsthosvd specs: one per mode (ascending), then the core.

    Every spec is materialized up front so one pass over the input's
    blocks accumulates all of them.
    """
    specs = [
        mode_sketch_spec(rng, dims, n, core[n], p, dtype)
        for n in range(len(dims))
    ]
    specs.append(core_sketch_spec(rng, dims, core, p, dtype))
    return specs


def add_block_contribution(
    out: np.ndarray,
    block: np.ndarray,
    spec: SketchSpec,
    ranges,
) -> np.ndarray:
    """Accumulate one block's sketch contribution into ``out``.

    ``ranges`` gives the block's global ``(lo, hi)`` per mode; each test
    matrix is column-restricted to its mode's range, and the result adds
    into ``out`` at the kept mode's slice (everywhere, for a core
    sketch). Accumulation order is the caller's responsibility — every
    backend adds blocks in ascending block order so blocked results are
    bitwise reproducible for a fixed worker count.
    """
    matrices, modes = [], []
    for m in sorted(spec.omegas):
        lo, hi = ranges[m]
        matrices.append(spec.omegas[m][:, lo:hi])
        modes.append(m)
    contribution = ttm_chain(block, matrices, modes)
    if spec.mode >= 0:
        lo, hi = ranges[spec.mode]
        index = [slice(None)] * out.ndim
        index[spec.mode] = slice(lo, hi)
        out[tuple(index)] += contribution
    else:
        out += contribution
    return out


def sketch_arrays(tensor: np.ndarray, specs) -> tuple[list[np.ndarray], float]:
    """Dense reference: all sketches plus ``||Y||_F^2`` in one logical pass."""
    tensor = np.asarray(tensor)
    ranges = tuple((0, int(d)) for d in tensor.shape)
    outs = []
    for spec in specs:
        out = np.zeros(out_shape(tensor.shape, spec), dtype=tensor.dtype)
        add_block_contribution(out, tensor, spec, ranges)
        outs.append(out)
    norm_sq = float(np.linalg.norm(tensor.ravel())) ** 2
    return outs, norm_sq


def sketch_flops(dims, spec: SketchSpec) -> float:
    """Modeled multiply-adds of one sketch's TTM chain (ascending modes)."""
    current = [float(d) for d in dims]
    total = 0.0
    for m in sorted(spec.omegas):
        s = float(spec.omegas[m].shape[0])
        total += s * float(np.prod(current))
        current[m] = s
    return total


def factor_from_matrix(w_mat: np.ndarray, k: int) -> np.ndarray:
    """Leading ``k`` left singular vectors of an unfolded sketch.

    Gram+EVD route with the repo's deterministic sign convention — the
    same extraction the exact path uses, so factors are comparable.
    """
    return leading_left_singular_vectors(w_mat, k, method="gram")


def orthonormal_cols(matrix: np.ndarray) -> np.ndarray:
    """Sign-fixed orthonormal basis of ``matrix``'s column space (QR)."""
    q, _ = np.linalg.qr(np.asarray(matrix))
    return np.ascontiguousarray(deterministic_sign(q))


def solve_core(
    h: np.ndarray,
    core_spec: SketchSpec,
    factors,
) -> np.ndarray:
    """Recover the core from the core sketch (single-pass variant).

    Solves the mode-wise least-squares problems ``H ~= G x_n (Phi_n
    U_n)`` for ``G`` via pseudo-inverses: ``G = H x_n pinv(Phi_n U_n)``.
    """
    h = np.asarray(h)
    matrices = [
        np.linalg.pinv(core_spec.omegas[n] @ np.asarray(factors[n]))
        for n in range(h.ndim)
    ]
    return ttm_chain(h, matrices, list(range(h.ndim))).astype(
        h.dtype, copy=False
    )


def unfold_sketch(w: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding of a sketch tensor (thin re-export)."""
    return unfold(w, mode)
