"""Input-adaptive backend selection (a-Tucker style).

Hand-picking an execution backend per tensor is exactly the kind of
decision the planner was built to make for trees and grids; this module
closes the loop for backends. Given an input's *metadata* — dims, core,
requested processor count, dtype — and the machine's available cores, it
scores every auto-eligible backend under a small calibratable cost model
and picks the cheapest:

``time(backend) = startup + tasks * per_task + copy + flops / throughput``

where ``throughput = rate * dtype_speedup * efficiency * cores_used``.
The model's per-backend parameters ship with conservative defaults and can
be *calibrated* on the actual machine (``repro calibrate``): measured
throughputs are persisted to a JSON profile (``~/.cache/repro/``, or
``$REPRO_CALIBRATION``) that :func:`load_profile` merges over the
defaults.

``simcluster`` is deliberately not auto-eligible: it is a measurement
instrument (exact communication-volume accounting on a virtual cluster),
not a fast path, so it must always be an explicit choice.

Selection is a pure function of its inputs — same metadata, same profile,
same answer — which is what the property-test suite pins down.
"""

from __future__ import annotations

import json
import logging
import math
import os
import warnings
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.storage import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_ZLIB_LEVEL,
    check_codec,
    codec_kind,
    default_memory_budget,
    parse_bytes,
)
from repro.util.dtypes import resolve_dtype

logger = logging.getLogger("repro.backends.select")


def _warn(message: str) -> None:
    """Degraded-profile warning: both channels, one call site.

    ``warnings.warn`` stays the API contract (callers filter/assert on
    ``RuntimeWarning``); the logger copy makes the event visible in
    log-based observability (``repro -v``) where warnings are invisible.
    """
    warnings.warn(message, RuntimeWarning, stacklevel=3)
    logger.warning(message)

#: backends the auto-selector may choose, in tie-break priority order.
AUTO_CANDIDATES = ("sequential", "threaded", "procpool")

#: storage specs the session accepts; "auto" resolves per input.
STORAGE_MODES = ("auto", "memory", "mmap")

#: profile schema version (bump on incompatible changes).
PROFILE_VERSION = 1

#: conservative built-in cost-model parameters. ``rate`` is sustained
#: float64 multiply-adds per second per core; ``sketch_rate`` is the
#: same quantity for the randomized methods' sketch contractions (tall
#: skinny gemms stream differently than square ones, and calibration /
#: :func:`profile_from_trace` can measure them apart); ``startup`` is
#: the one-off cost of bringing the backend up (process pools fork +
#: import); ``per_task`` is the dispatch overhead per block task;
#: ``efficiency`` discounts parallel scaling; ``copy_elems_per_s``
#: charges moving the tensor into backend-owned storage (shared-memory
#: segments), 0 = free.
_DEFAULT_BACKENDS = {
    "sequential": {
        "rate": 2.0e9,
        "sketch_rate": 2.0e9,
        "startup": 0.0,
        "per_task": 0.0,
        "efficiency": 1.0,
        "copy_elems_per_s": 0.0,
        "max_cores": 1.0,
    },
    "threaded": {
        "rate": 2.0e9,
        "sketch_rate": 2.0e9,
        "startup": 2.0e-3,
        "per_task": 1.0e-4,
        "efficiency": 0.85,
        "copy_elems_per_s": 0.0,
        "max_cores": 0.0,  # 0 = no backend-imposed cap
    },
    "procpool": {
        "rate": 2.0e9,
        "sketch_rate": 2.0e9,
        "startup": 1.5e-1,
        "per_task": 2.0e-3,
        "efficiency": 0.90,
        "copy_elems_per_s": 1.0e9,
        "max_cores": 0.0,
    },
}

#: initialization methods the cost model knows how to charge.
_METHODS = ("exact", "rsthosvd", "sp-rsthosvd")

#: machine-level spill-storage parameters (backend-independent: the
#: spill directory's device doesn't care which backend reads it).
#: ``spill_read_passes`` models how many full-tensor read passes a
#: spilled run makes over its blocks on top of the one staging write.
#: Codec terms extend the same section: encode/decode bandwidths are
#: *logical* bytes per second through the codec (measured by the
#: calibrate storage probe or learned from codec-attributed
#: ``spill:write`` / ``spill:decode`` spans); ``zlib_ratio`` is
#: stored/logical bytes; ``spill_chunk_bytes`` is the write-through
#: chunk size the probe found fastest. The defaults are conservative
#: placeholders — :func:`select_storage` only prefers a codec over raw
#: when the profile is actually calibrated.
_DEFAULT_STORAGE = {
    "spill_write_bytes_per_s": 8.0e8,
    "spill_read_bytes_per_s": 1.6e9,
    "spill_read_passes": 1.0,
    "zlib_encode_bytes_per_s": 1.2e8,
    "zlib_decode_bytes_per_s": 3.0e8,
    "zlib_ratio": 0.9,
    "narrow_encode_bytes_per_s": 1.5e9,
    "narrow_decode_bytes_per_s": 3.0e9,
    "spill_chunk_bytes": float(DEFAULT_CHUNK_BYTES),
}


def default_profile() -> dict:
    """A fresh copy of the built-in profile."""
    return {
        "version": PROFILE_VERSION,
        "calibrated": False,
        "measured": [],
        "backends": {k: dict(v) for k, v in _DEFAULT_BACKENDS.items()},
        "storage": dict(_DEFAULT_STORAGE),
    }


def default_profile_path() -> str:
    """Where profiles persist: ``$REPRO_CALIBRATION`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CALIBRATION")
    if env:
        return env
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "calibration.json"
    )


def merge_profile(partial: dict) -> dict:
    """Merge a (possibly partial) profile dict over the defaults.

    Unknown backends and unknown parameter keys are dropped; every known
    backend keeps default values for any parameter the partial omits, so
    hand-written overrides like ``{"backends": {"procpool": {"rate":
    5e9}}}`` are valid. The ``measured`` list (which backends calibration
    actually probed) is carried through, filtered to known backends.

    Merging never raises: a value of the wrong type (``"rate": "fast"``,
    a null, a nested object) keeps its default and is reported in a
    single :class:`RuntimeWarning` — a stale or hand-mangled calibration
    file must degrade selection quality, not crash a run.
    """
    profile = default_profile()
    if not isinstance(partial, dict):
        return profile
    invalid: list[str] = []
    backends = partial.get("backends") or {}
    if not isinstance(backends, dict):
        invalid.append("backends")
        backends = {}
    for name, params in backends.items():
        if name not in profile["backends"]:
            continue
        if not isinstance(params, dict):
            invalid.append(str(name))
            continue
        for key, value in params.items():
            if key not in profile["backends"][name]:
                continue
            try:
                value = float(value)
            except (TypeError, ValueError):
                invalid.append(f"{name}.{key}")
                continue
            if not math.isfinite(value):
                invalid.append(f"{name}.{key}")
                continue
            profile["backends"][name][key] = value
    storage = partial.get("storage")
    if storage is not None:
        if not isinstance(storage, dict):
            invalid.append("storage")
        else:
            for key, value in storage.items():
                if key not in profile["storage"]:
                    continue
                try:
                    value = float(value)
                except (TypeError, ValueError):
                    invalid.append(f"storage.{key}")
                    continue
                if not math.isfinite(value) or value <= 0:
                    invalid.append(f"storage.{key}")
                    continue
                profile["storage"][key] = value
    measured = partial.get("measured") or []
    if not isinstance(measured, (list, tuple)):
        invalid.append("measured")
        measured = []
    profile["measured"] = [
        name
        for name in measured
        if isinstance(name, str) and name in profile["backends"]
    ]
    profile["calibrated"] = bool(partial.get("calibrated", False))
    if invalid:
        _warn(
            f"calibration profile has invalid entries "
            f"({', '.join(sorted(set(invalid)))}); using defaults for those"
        )
    return profile


def load_profile(path: str | None = None) -> dict:
    """Load a persisted profile merged over the defaults.

    A profile is an optimization hint, never a correctness input, so a
    *corrupt or stale* file — truncated/empty JSON, a version mismatch,
    wrong-typed values — falls back to :func:`default_profile` with a
    :class:`RuntimeWarning` instead of failing a run that was about to
    use it. Two cases stay distinct:

    * with ``path=None`` (the implicit machine profile), a *missing*
      file is simply the uncalibrated state: defaults, silently;
    * a path the caller *named* is a promise — if the file cannot be
      read at all (missing, permission denied), that is a caller error
      and a :class:`ValueError` is raised.
    """
    explicit = path is not None
    path = path or default_profile_path()
    try:
        with open(path, encoding="utf-8") as fh:
            stored = json.load(fh)
    except OSError as exc:
        if explicit:
            raise ValueError(
                f"cannot read calibration profile {path!r}: {exc}"
            ) from exc
        return default_profile()
    except ValueError as exc:  # corrupt JSON, including an empty file
        _warn(
            f"calibration profile {path!r} is not valid JSON ({exc}); "
            f"falling back to the default profile"
        )
        return default_profile()
    if not isinstance(stored, dict) or stored.get("version") != PROFILE_VERSION:
        _warn(
            f"calibration profile {path!r} is not a version-"
            f"{PROFILE_VERSION} profile; falling back to the default "
            f"profile"
        )
        return default_profile()
    return merge_profile(stored)


def save_profile(profile: dict, path: str | None = None) -> str:
    """Persist ``profile`` as JSON; returns the path written."""
    path = path or default_profile_path()
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(profile, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# --------------------------------------------------------------------- #
# the cost model
# --------------------------------------------------------------------- #


def _check_dims(name: str, dims) -> tuple[int, ...]:
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise ValueError(f"{name} must be positive integers, got {dims}")
    return dims


def sweep_flops(dims: tuple[int, ...], core: tuple[int, ...]) -> float:
    """Modeled multiply-adds of one HOOI sweep (TTMs + Gram syrks).

    Dominated by each mode's first TTM from the full tensor plus the Gram
    accumulation per mode — a deliberate over-approximation that is
    monotone in the tensor size, which is all selection needs.
    """
    card = float(np.prod([float(d) for d in dims]))
    ttm = sum(float(k) * card for k in core)
    gram = sum(float(d + 1) / 2.0 * card for d in dims)
    return ttm + gram


def init_flops(
    dims: tuple[int, ...],
    core: tuple[int, ...],
    method: str = "exact",
    oversample: int = 5,
    power_iters: int = 0,
) -> float:
    """Modeled multiply-adds of one initialization pass, per method.

    ``"exact"`` is a HOOI-shaped sweep (:func:`sweep_flops`, whose Gram
    term charges ``(d+1)/2 * card`` per mode). The randomized methods
    replace each mode's Gram with a sketch contraction of width ``s =
    min(k + oversample, d)`` — the whole point of sketching is ``s <<
    d``. ``rsthosvd`` keeps the sequential-truncation TTM term and adds
    one TTM-plus-cross-Gram round per power iteration; ``sp-rsthosvd``
    drops the TTMs (the input is never modified) but adds the core
    sketch's dominant first contraction. Like :func:`sweep_flops`, a
    deliberate over-approximation monotone in tensor size.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if method == "exact":
        return sweep_flops(dims, core)
    card = float(np.prod([float(d) for d in dims]))
    widths = [
        float(max(1, min(int(k) + int(oversample), int(d))))
        for d, k in zip(dims, core)
    ]
    sketch = sum(s * card for s in widths)
    if method == "rsthosvd":
        ttm = sum(float(k) * card for k in core)
        return sketch * (1.0 + 2.0 * float(power_iters)) + ttm
    t_max = max(
        float(min(2 * int(s) + 1, int(d))) for s, d in zip(widths, dims)
    )
    return sketch + t_max * card


def estimate_seconds(
    params: dict,
    dims: tuple[int, ...],
    core: tuple[int, ...],
    *,
    n_procs: int,
    dtype,
    available_cores: int,
    spilled: bool = False,
    storage_params: dict | None = None,
    codec: str = "raw",
    method: str = "exact",
    oversample: int = 5,
    power_iters: int = 0,
) -> float:
    """Modeled wall seconds of one sweep under one backend's parameters.

    ``spilled`` switches the model to the out-of-core regime: the copy
    charge is *dropped* (workers memory-map the spill blocks in place —
    there is no staging copy into backend-owned segments) and a spill
    I/O term is *added* — one full write pass to stage the tensor plus
    ``spill_read_passes`` read passes at the machine's measured (or
    default) spill bandwidths from ``storage_params``. ``codec`` prices
    the spilled regime codec-aware (see :func:`spill_seconds`): an
    encoded stage writes fewer bytes but pays encode once and decode
    before the read passes.

    ``method`` charges the pass method-aware: the randomized methods'
    flops come from :func:`init_flops` (sketch widths instead of Gram
    halves) at the backend's ``sketch_rate`` throughput — so a
    randomized run is no longer mispriced as an exact sweep.
    """
    flops = init_flops(dims, core, method, oversample, power_iters)
    itemsize = float(np.dtype(dtype).itemsize)
    # Narrower dtypes stream more elements per second, but BLAS only
    # has a real fast path down to float32 — clamping at 2x keeps
    # float16/float8 inputs from being modeled at throughputs numpy
    # cannot deliver (they'd otherwise auto-select on mispriced speed).
    dtype_speedup = min(2.0, 8.0 / itemsize)
    cores_used = max(1, min(int(n_procs), int(available_cores)))
    max_cores = int(params.get("max_cores", 0.0))
    if max_cores > 0:
        cores_used = min(cores_used, max_cores)
    if cores_used == 1:
        efficiency = 1.0
    else:
        efficiency = float(params["efficiency"])
    rate = (
        float(params["rate"])
        if method == "exact"
        else float(params.get("sketch_rate", params["rate"]))
    )
    throughput = rate * dtype_speedup * efficiency * cores_used
    seconds = float(params["startup"]) + flops / throughput
    # ~2 kernels per mode per sweep, each fanning out one task per worker.
    n_tasks = 2.0 * len(dims) * cores_used if cores_used > 1 else 0.0
    seconds += n_tasks * float(params["per_task"])
    if spilled:
        storage = {**_DEFAULT_STORAGE, **(storage_params or {})}
        nbytes = float(np.prod([float(d) for d in dims])) * itemsize
        seconds += spill_seconds(nbytes, codec, storage)
    else:
        copy_rate = float(params["copy_elems_per_s"])
        if copy_rate > 0:
            seconds += float(np.prod([float(d) for d in dims])) / copy_rate
    return seconds


def spill_seconds(nbytes: float, codec: str, storage: dict) -> float:
    """Modeled spill I/O seconds for one staged tensor under a codec.

    ``raw`` is the historical charge: one full write plus
    ``spill_read_passes`` reads. An encoded stage replaces the write
    with encode + writing the (smaller) encoded bytes, then pays one
    decode into a raw scratch before the read passes run at raw
    bandwidth — exactly the storage layer's decode-to-scratch shape.
    """
    nbytes = float(nbytes)
    write = float(storage["spill_write_bytes_per_s"])
    read = float(storage["spill_read_bytes_per_s"])
    passes = float(storage["spill_read_passes"])
    kind = codec_kind(codec) if codec else "raw"
    if kind == "zlib":
        stored = float(storage["zlib_ratio"]) * nbytes
        return (
            nbytes / float(storage["zlib_encode_bytes_per_s"])
            + stored / write
            + nbytes / float(storage["zlib_decode_bytes_per_s"])
            + passes * nbytes / read
        )
    if kind == "narrow":
        return (
            nbytes / float(storage["narrow_encode_bytes_per_s"])
            + nbytes / 2.0 / write
            + nbytes / float(storage["narrow_decode_bytes_per_s"])
            + passes * nbytes / read
        )
    return nbytes / write + passes * nbytes / read


def resolve_auto_procs(n_procs, available_cores: int | None = None) -> int:
    """The processor count a selection will use (explicit or natural).

    The natural default mirrors the pool backends' sizing: all but one of
    the available cores, capped at 8. Exposed so callers (the session's
    warm-instance bookkeeping) can predict the count before selecting.
    """
    if available_cores is None:
        available_cores = os.cpu_count() or 1
    available_cores = max(1, int(available_cores))
    if n_procs is None:
        return max(1, min(8, available_cores - 1)) if available_cores > 1 else 1
    n_procs = int(n_procs)
    if n_procs < 1:
        raise ValueError(f"n_procs must be >= 1, got {n_procs}")
    return n_procs


def candidate_procs(available_cores: int | None = None) -> tuple[int, ...]:
    """The ``n_procs`` values a calibrated selection ranks.

    Powers of two up to all-but-one core, the natural all-but-one count
    itself, and the uncalibrated cap-8 default — a small, deterministic
    ladder that covers both "fan wide" and "dispatch overhead beats
    parallelism" regimes without an unbounded search.
    """
    if available_cores is None:
        available_cores = os.cpu_count() or 1
    cores = max(1, int(available_cores))
    cands = {1, resolve_auto_procs(None, cores)}
    power = 2
    while power <= cores - 1:
        cands.add(power)
        power *= 2
    if cores > 1:
        cands.add(cores - 1)
    return tuple(sorted(cands))


@dataclass(frozen=True)
class Selection:
    """The auto-selector's verdict for one input."""

    backend: str
    n_procs: int
    dtype: str
    scores: dict = field(compare=False)
    reason: str = ""


def select_backend(
    dims,
    core,
    *,
    n_procs: int | None = None,
    dtype=None,
    available_cores: int | None = None,
    profile: dict | None = None,
    warm=(),
    spilled: bool = False,
    codec: str = "raw",
    method: str = "exact",
    oversample: int = 5,
    power_iters: int = 0,
) -> Selection:
    """Pick the cheapest auto-eligible backend for this input.

    Pure and deterministic: the same ``(dims, core, n_procs, dtype,
    available_cores, profile, warm, spilled, codec)`` always selects
    the same backend. Ties break toward the earlier entry of
    :data:`AUTO_CANDIDATES`. ``warm`` names backends whose instance
    already exists (a session's cached pools): their one-off startup
    cost is sunk and is not charged. ``spilled`` scores the run in the
    out-of-core regime — spill I/O charged at the profile's measured
    storage bandwidths under ``codec``, staging copies dropped (see
    :func:`estimate_seconds`) — which notably removes procpool's copy
    handicap on runs that stream from spill files anyway.

    ``n_procs``: an explicit count is honored verbatim. With
    ``n_procs=None`` and an *uncalibrated* profile the legacy cap-8
    natural default applies (and the clamp is spelled out in the
    reason); with a **calibrated** profile the selector ranks every
    :func:`candidate_procs` value per backend and the winner's cheapest
    count becomes the selection — the cost model, not a constant,
    chooses the pool size.
    """
    dims = _check_dims("dims", dims)
    core = _check_dims("core", core)
    if len(core) != len(dims):
        raise ValueError(
            f"core has {len(core)} modes but dims has {len(dims)}"
        )
    if available_cores is None:
        available_cores = os.cpu_count() or 1
    available_cores = max(1, int(available_cores))
    explicit_procs = n_procs is not None
    n_procs = resolve_auto_procs(n_procs, available_cores)
    work_dtype = resolve_dtype(np.float64, dtype) if dtype is not None else np.dtype(np.float64)
    profile = profile if profile is not None else default_profile()
    backends = profile.get("backends") or {}
    rank_procs = not explicit_procs and bool(profile.get("calibrated"))
    candidates = (
        candidate_procs(available_cores) if rank_procs else (n_procs,)
    )
    scores: dict[str, float] = {}
    chosen: dict[str, int] = {}
    warm = frozenset(warm)
    for name in AUTO_CANDIDATES:
        params = backends.get(name)
        if params is None:
            continue
        if name in warm:
            params = {**params, "startup": 0.0}
        per_candidate = {
            procs: estimate_seconds(
                params,
                dims,
                core,
                n_procs=procs,
                dtype=work_dtype,
                available_cores=available_cores,
                spilled=spilled,
                storage_params=profile.get("storage"),
                codec=codec,
                method=method,
                oversample=oversample,
                power_iters=power_iters,
            )
            for procs in candidates
        }
        # Tie-break toward fewer processes: equal modeled time means the
        # extra workers buy nothing.
        chosen[name] = min(
            per_candidate, key=lambda procs: (per_candidate[procs], procs)
        )
        scores[name] = per_candidate[chosen[name]]
    if not scores:
        raise ValueError(
            f"profile names no auto-eligible backend "
            f"(candidates: {AUTO_CANDIDATES})"
        )
    best = min(scores, key=lambda name: (scores[name], AUTO_CANDIDATES.index(name)))
    best_procs = chosen[best]
    ranked = ", ".join(
        f"{name} {scores[name]:.3g}s" for name in sorted(scores, key=scores.get)
    )
    regime = " (spilled: I/O charged, staging copies dropped)" if spilled else ""
    algo = f" method={method}" if method != "exact" else ""
    notes = []
    if rank_procs and len(candidates) > 1:
        notes.append(
            f"n_procs={best_procs} ranked cheapest of "
            f"candidates {list(candidates)} (calibrated profile)"
        )
    elif not explicit_procs:
        natural = available_cores - 1 if available_cores > 1 else 1
        if n_procs < natural:
            notes.append(
                f"n_procs clamped to {n_procs} (uncalibrated cap 8 of "
                f"{natural} usable cores; calibrate to rank candidates)"
            )
    best_max_cores = int((backends.get(best) or {}).get("max_cores", 0.0))
    if 0 < best_max_cores < min(best_procs, available_cores):
        notes.append(
            f"{best} capped at {best_max_cores} core(s) by its "
            f"max_cores parameter"
        )
    suffix = "".join(f"; {note}" for note in notes)
    reason = (
        f"modeled fastest for dims={'x'.join(map(str, dims))} "
        f"core={'x'.join(map(str, core))} on {available_cores} core(s) "
        f"with {best_procs} proc(s){algo}{regime}: {ranked}{suffix}"
    )
    logger.debug("select_backend: %s (%s)", best, ranked)
    return Selection(
        backend=best,
        n_procs=best_procs,
        dtype=work_dtype.name,
        scores=scores,
        reason=reason,
    )


# --------------------------------------------------------------------- #
# storage selection (the budget half of the cost model)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StorageSelection:
    """The storage policy's verdict for one input.

    ``codec`` / ``chunk_bytes`` only matter to spilled (``mmap``)
    selections: the codec the store will encode staged blocks with, and
    the write-through chunk size (``None`` = let the store derive it
    from the budget). Memory-mode selections keep the raw defaults.
    """

    mode: str  # "memory" or "mmap"
    memory_budget: int | None
    reason: str = ""
    codec: str = "raw"
    chunk_bytes: int | None = None

    @property
    def spilled(self) -> bool:
        return self.mode == "mmap"


def _pick_codec(
    nbytes: int, codec: str, profile: dict | None
) -> tuple[str, int | None, str]:
    """Codec + chunk size for a spilled selection: ``(codec, chunk, note)``.

    An explicit ``codec`` is honored verbatim (``narrow`` included —
    lossy narrowing is always an explicit opt-in, never auto-chosen).
    ``"auto"`` ranks raw against zlib with :func:`spill_seconds` — but
    only under a *calibrated* profile; the shipped defaults are
    placeholders, and guessing a codec from placeholders could slow the
    run down. The chunk size likewise comes from a calibrated
    ``spill_chunk_bytes`` or stays ``None`` (store default).
    """
    prof = profile if isinstance(profile, dict) else {}
    storage = {**_DEFAULT_STORAGE, **(prof.get("storage") or {})}
    calibrated = bool(prof.get("calibrated"))
    chunk: int | None = None
    if calibrated:
        chunk = max(4096, int(storage["spill_chunk_bytes"]))
    if codec != "auto":
        choice = check_codec(codec)
        if choice == "raw":
            return choice, chunk, ""
        return choice, chunk, f"; codec {choice} (explicit)"
    if not calibrated:
        return "raw", chunk, ""
    candidates = ["raw", f"zlib:{DEFAULT_ZLIB_LEVEL}"]
    times = {
        cand: spill_seconds(float(nbytes), cand, storage)
        for cand in candidates
    }
    best = min(times, key=lambda cand: (times[cand], candidates.index(cand)))
    ranked = ", ".join(
        f"{cand} {times[cand]:.3g}s"
        for cand in sorted(times, key=times.get)
    )
    return best, chunk, f"; codec {best} modeled cheapest ({ranked})"


def select_storage(
    nbytes: int,
    storage: str = "auto",
    memory_budget: int | str | None = None,
    *,
    codec: str = "auto",
    profile: dict | None = None,
) -> StorageSelection:
    """Decide where an input's working set lives: RAM or spill files.

    ``storage`` is one of :data:`STORAGE_MODES`: ``"memory"`` and
    ``"mmap"`` are explicit; ``"auto"`` spills exactly when a memory
    budget constrains the run (``memory_budget`` argument, else
    ``$REPRO_MEMORY_BUDGET``) and the input's bytes exceed it — the same
    input-adaptive shape as backend selection, driven by metadata only.
    Pure and deterministic in its inputs, like :func:`select_backend`.

    ``memory_budget`` accepts bytes or a ``"512M"``-style string. A
    budget of 0 with ``storage="auto"`` always spills.

    For spilled selections, ``codec`` picks the block codec: a spec
    from :data:`repro.storage.SPILL_CODECS` is explicit, ``"auto"``
    ranks raw vs zlib under a calibrated ``profile`` (and never picks
    the lossy ``narrow``); the profile's calibrated chunk size rides
    along as ``chunk_bytes``.
    """
    if storage not in STORAGE_MODES:
        raise ValueError(
            f"storage must be one of {STORAGE_MODES}, got {storage!r}"
        )
    nbytes = int(nbytes)
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if codec != "auto":
        check_codec(codec)  # validate early, even for memory-mode runs
    budget = (
        parse_bytes(memory_budget)
        if memory_budget is not None
        else default_memory_budget()
    )
    if storage == "memory":
        return StorageSelection(
            mode="memory", memory_budget=budget, reason="explicit memory"
        )
    if storage == "mmap":
        chosen, chunk, note = _pick_codec(nbytes, codec, profile)
        return StorageSelection(
            mode="mmap", memory_budget=budget,
            reason=f"explicit mmap{note}",
            codec=chosen, chunk_bytes=chunk,
        )
    if budget is not None and nbytes > budget:
        chosen, chunk, note = _pick_codec(nbytes, codec, profile)
        return StorageSelection(
            mode="mmap",
            memory_budget=budget,
            reason=(
                f"input is {nbytes} bytes, over the {budget}-byte "
                f"memory budget: spilling{note}"
            ),
            codec=chosen, chunk_bytes=chunk,
        )
    return StorageSelection(
        mode="memory",
        memory_budget=budget,
        reason=(
            "no memory budget set"
            if budget is None
            else f"input is {nbytes} bytes, within the {budget}-byte budget"
        ),
    )


def profile_from_trace(trace) -> dict:
    """Measured spill bandwidths from one traced run's I/O spans.

    Every ``kind="io"`` span the storage layer emits (``spill:write`` /
    ``spill:read``) carries its byte count and wall seconds; aggregating
    them yields this machine-and-directory's *observed* spill bandwidth,
    which is exactly the ``storage`` term the cost model charges spilled
    runs. Returns a partial profile — ``{"storage": {...}}`` with only
    the directions the trace actually exercised — ready for
    :func:`merge_profile` or the session's ``calibration=`` argument.

    Write spans time the chunked copy to disk, so their bandwidth is a
    faithful measurement. Read spans time manifest validation plus the
    ``mmap`` call (pages fault in lazily inside the consuming kernels),
    so sub-millisecond aggregates are discarded rather than reported as
    an absurd bandwidth; with enough read spans the syscall overhead
    itself is the honest per-pass cost.

    Randomized runs contribute a second measurement: a ``rsthosvd`` /
    ``sp-rsthosvd`` phase span times the whole sketch pipeline, and with
    the trace meta's dims/core/backend the modeled :func:`init_flops`
    yield the executing backend's observed ``sketch_rate`` — returned as
    ``{"backends": {name: {"sketch_rate": ...}}}`` alongside (or instead
    of) the storage term.

    Codec-encoded spills are learned apart: a ``spill:write`` span that
    carries a ``codec`` attribute times encode + encoded write, so it
    feeds ``<kind>_encode_bytes_per_s`` (over its logical ``raw_bytes``)
    and — for zlib — the observed ``zlib_ratio`` (encoded over logical
    bytes), never the raw ``spill_write_bytes_per_s``. ``spill:decode``
    spans feed ``<kind>_decode_bytes_per_s`` the same way.
    """
    totals = {"spill:write": [0.0, 0.0], "spill:read": [0.0, 0.0]}
    # per codec kind: [logical_bytes, seconds, encoded_bytes]
    encodes: dict[str, list[float]] = {}
    decodes: dict[str, list[float]] = {}
    sketch_spans: list[tuple[str, dict, float]] = []
    for span in getattr(trace, "spans", ()) or ():
        kind = getattr(span, "kind", None)
        if kind == "phase" and span.name in ("rsthosvd", "sp-rsthosvd"):
            sketch_spans.append(
                (span.name, dict(span.attrs or {}), float(span.seconds))
            )
            continue
        if kind != "io":
            continue
        attrs = span.attrs or {}
        codec = attrs.get("codec")
        try:
            nbytes = float(attrs.get("bytes", 0) or 0)
        except (TypeError, ValueError):
            continue
        seconds = float(span.seconds)
        if not (nbytes > 0 and math.isfinite(seconds) and seconds > 0):
            continue
        if codec and codec != "raw" and span.name in (
            "spill:write", "spill:decode"
        ):
            family = str(codec).split(":", 1)[0]
            if span.name == "spill:write":
                try:
                    raw_bytes = float(attrs.get("raw_bytes", 0) or 0)
                except (TypeError, ValueError):
                    continue
                if raw_bytes > 0:
                    slot = encodes.setdefault(family, [0.0, 0.0, 0.0])
                    slot[0] += raw_bytes
                    slot[1] += seconds
                    slot[2] += nbytes
            else:
                # spill:decode reports bytes as the logical decoded size
                slot = decodes.setdefault(family, [0.0, 0.0])
                slot[0] += nbytes
                slot[1] += seconds
            continue
        slot = totals.get(span.name)
        if slot is None:
            continue
        slot[0] += nbytes
        slot[1] += seconds
    storage: dict[str, float] = {}
    written, w_seconds = totals["spill:write"]
    if written > 0 and w_seconds > 1e-6:
        storage["spill_write_bytes_per_s"] = written / w_seconds
    read, r_seconds = totals["spill:read"]
    if read > 0 and r_seconds > 1e-6:
        storage["spill_read_bytes_per_s"] = read / r_seconds
    for family, (logical, seconds, encoded) in encodes.items():
        key = f"{family}_encode_bytes_per_s"
        if key in _DEFAULT_STORAGE and logical > 0 and seconds > 1e-6:
            storage[key] = logical / seconds
            if family == "zlib" and encoded > 0:
                storage["zlib_ratio"] = encoded / logical
    for family, (logical, seconds) in decodes.items():
        key = f"{family}_decode_bytes_per_s"
        if key in _DEFAULT_STORAGE and logical > 0 and seconds > 1e-6:
            storage[key] = logical / seconds
    profile: dict = {}
    if storage:
        profile["storage"] = storage
    rate = _sketch_rate_from_spans(
        getattr(trace, "meta", None) or {}, sketch_spans
    )
    if rate is not None:
        backend, value = rate
        profile["backends"] = {backend: {"sketch_rate": value}}
    return profile


def _sketch_rate_from_spans(
    meta: dict, sketch_spans: list[tuple[str, dict, float]]
) -> tuple[str, float] | None:
    """Observed per-core sketch throughput, or ``None`` without evidence.

    The rate is normalized exactly the way :func:`estimate_seconds`
    consumes it — divided by cores, efficiency and the dtype speedup —
    so a round trip through the profile reprices the very run that was
    measured.
    """
    backend = meta.get("backend")
    dims = tuple(int(d) for d in meta.get("dims") or ())
    core = tuple(int(k) for k in meta.get("core") or ())
    if backend not in _DEFAULT_BACKENDS or not dims or len(core) != len(dims):
        return None
    flops = 0.0
    seconds = 0.0
    for name, attrs, span_seconds in sketch_spans:
        if not math.isfinite(span_seconds) or span_seconds <= 0:
            continue
        try:
            oversample = int(attrs.get("oversample", 5))
            power_iters = int(attrs.get("power_iters", 0))
        except (TypeError, ValueError):
            continue
        flops += init_flops(dims, core, name, oversample, power_iters)
        seconds += span_seconds
    if flops <= 0 or seconds <= 1e-6:
        return None
    params = _DEFAULT_BACKENDS[backend]
    cores = max(1, int(meta.get("n_procs", 1) or 1))
    max_cores = int(params["max_cores"])
    if max_cores > 0:
        cores = min(cores, max_cores)
    efficiency = float(params["efficiency"]) if cores > 1 else 1.0
    itemsize = float(meta.get("itemsize", 8) or 8)
    # Same clamp as estimate_seconds, so the measured rate round-trips.
    dtype_speedup = min(2.0, 8.0 / itemsize)
    return backend, flops / seconds / (cores * efficiency * dtype_speedup)


# --------------------------------------------------------------------- #
# calibration
# --------------------------------------------------------------------- #


def _probe_storage(rng, probe_bytes: int) -> dict[str, float] | None:
    """Measure spill write/read and codec encode/decode bandwidths.

    One throwaway :class:`MmapStore` in the default spill root: a raw
    put/get pass gives the directory's write/read rates, a zlib and a
    narrow put/get give the codec rates (logical bytes per second, the
    way :func:`spill_seconds` charges them) plus the observed
    compression ratio, and a small chunk-size ladder finds the fastest
    write-through granularity. Best-of is not needed — each direction
    moves ``probe_bytes``, big enough to dominate syscall noise.
    Returns ``None`` if the spill directory cannot be used at all.
    """
    from repro.storage import MmapStore  # lazy: avoids an import cycle

    data = rng.standard_normal(max(1, int(probe_bytes) // 8))
    nbytes = float(data.nbytes)
    out: dict[str, float] = {}
    try:
        store = MmapStore()
    except OSError:
        return None
    with store:
        t0 = perf_counter()
        store.put("raw", data)
        out["spill_write_bytes_per_s"] = nbytes / max(
            perf_counter() - t0, 1e-9
        )
        t0 = perf_counter()
        float(np.asarray(store.get("raw")).sum())  # fault every page
        out["spill_read_bytes_per_s"] = nbytes / max(
            perf_counter() - t0, 1e-9
        )
        t0 = perf_counter()
        store.put("z", data, codec=f"zlib:{DEFAULT_ZLIB_LEVEL}")
        out["zlib_encode_bytes_per_s"] = nbytes / max(
            perf_counter() - t0, 1e-9
        )
        stored = store.block_meta("z").stored_nbytes
        out["zlib_ratio"] = max(1e-6, float(stored) / nbytes)
        t0 = perf_counter()
        float(np.asarray(store.get("z")).sum())  # decode + full read
        out["zlib_decode_bytes_per_s"] = nbytes / max(
            perf_counter() - t0, 1e-9
        )
        t0 = perf_counter()
        store.put("n", data, codec="narrow")
        out["narrow_encode_bytes_per_s"] = nbytes / max(
            perf_counter() - t0, 1e-9
        )
        t0 = perf_counter()
        float(np.asarray(store.get("n")).sum())
        out["narrow_decode_bytes_per_s"] = nbytes / max(
            perf_counter() - t0, 1e-9
        )
    best_chunk = None
    best_seconds = float("inf")
    for chunk in (256 * 2**10, 2**20, 4 * 2**20, DEFAULT_CHUNK_BYTES):
        try:
            chunked = MmapStore(chunk_bytes=chunk)
        except OSError:
            break
        with chunked:
            t0 = perf_counter()
            chunked.put("c", data)
            seconds = perf_counter() - t0
        if seconds < best_seconds:
            best_seconds = seconds
            best_chunk = chunk
    if best_chunk is not None:
        out["spill_chunk_bytes"] = float(best_chunk)
    return out


def calibrate(
    dims=(48, 40, 32),
    core=(8, 8, 8),
    *,
    repeats: int = 3,
    n_procs: int | None = None,
    backends=AUTO_CANDIDATES,
    seed: int = 0,
    storage_probe: bool = True,
    probe_bytes: int = 4 * 2**20,
) -> dict:
    """Measure per-backend throughput on this machine; returns a profile.

    For each backend the probe times ``repeats`` TTMs of a random
    ``dims`` tensor by a ``core[0] x dims[0]`` factor (taking the fastest
    repeat, standard benchmarking practice) and the one-off startup cost
    of bringing the backend up. The returned profile is the defaults with
    ``rate`` / ``startup`` replaced by measurements; persist it with
    :func:`save_profile` and it is picked up by every ``backend="auto"``
    session.

    With ``storage_probe`` (the default) the profile's ``storage``
    section is measured too — spill write/read bandwidth, zlib/narrow
    encode+decode rates, the observed compression ratio and the fastest
    write-through chunk size (:func:`_probe_storage`) — which is what
    arms :func:`select_storage`'s codec/chunk choice and the spilled
    backend charge with real numbers.
    """
    from repro.backends import (  # lazy: avoids an import cycle
        BackendUnavailableError,
        get_backend,
    )

    dims = _check_dims("dims", dims)
    core = _check_dims("core", core)
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    rng = np.random.default_rng(seed)
    tensor = rng.standard_normal(dims)
    matrix = rng.standard_normal((core[0], dims[0]))
    flops = float(core[0]) * tensor.size
    profile = default_profile()
    for name in backends:
        if name not in profile["backends"]:
            continue
        start = perf_counter()
        try:
            backend = get_backend(name, n_procs=n_procs)
        except BackendUnavailableError:
            # An absent backend keeps its defaults and stays out of the
            # "measured" list; the others still calibrate. If it is still
            # unavailable at selection time, auto mode falls back past it.
            continue
        handle = backend.distribute(tensor, ())
        backend.fro_norm_sq(handle, tag="calibrate:warmup")
        startup = perf_counter() - start
        best = float("inf")
        for _ in range(repeats):
            t0 = perf_counter()
            backend.ttm(handle, matrix, 0, tag="calibrate:ttm")
            best = min(best, perf_counter() - t0)
        cores_used = max(1, min(backend.default_procs, os.cpu_count() or 1))
        params = profile["backends"][name]
        params["rate"] = flops / best / (
            cores_used * params["efficiency"] if cores_used > 1 else 1.0
        )
        params["startup"] = startup if name != "sequential" else 0.0
        profile["measured"].append(name)
        backend.close()
    storage_probed = False
    if storage_probe:
        measured_storage = _probe_storage(rng, probe_bytes)
        if measured_storage:
            profile["storage"].update(measured_storage)
            storage_probed = True
    # Only a profile with at least one real measurement counts as
    # calibrated; skipped backends are visible via the "measured" list.
    profile["calibrated"] = bool(profile["measured"]) or storage_probed
    return profile


__all__ = [
    "AUTO_CANDIDATES",
    "PROFILE_VERSION",
    "STORAGE_MODES",
    "Selection",
    "StorageSelection",
    "calibrate",
    "candidate_procs",
    "default_profile",
    "default_profile_path",
    "estimate_seconds",
    "init_flops",
    "load_profile",
    "merge_profile",
    "profile_from_trace",
    "resolve_auto_procs",
    "save_profile",
    "select_backend",
    "select_storage",
    "spill_seconds",
    "sweep_flops",
]
