"""Typed backend errors.

A backend that *cannot* serve a request — wrong processor count for the
cluster it wraps, a grid that does not fit its world size, a platform
missing the primitives it needs — raises
:class:`BackendUnavailableError` instead of a bare ``RuntimeError`` /
``ValueError``. Callers (the session, the auto-selector, the conformance
harness) can then distinguish "this backend is the wrong tool for this
configuration" from genuine argument errors and react: surface the
offending config, fall back to another backend, or skip a test.

The class subclasses :class:`ValueError` so existing ``except ValueError``
call sites keep working while new code can catch the precise type.
"""

from __future__ import annotations


class BackendUnavailableError(ValueError):
    """A backend cannot execute the requested configuration.

    Parameters
    ----------
    message:
        Human-readable description of what is wrong.
    backend:
        Name of the backend that refused (``"threaded"``, ``"simcluster"``,
        ``"procpool"``, ...).
    config:
        The offending configuration, as a dict (``n_procs``, ``grid``,
        ``dims``, ...). Stored for programmatic inspection and appended to
        the message for humans.
    """

    def __init__(
        self,
        message: str,
        *,
        backend: str = "",
        config: dict | None = None,
    ) -> None:
        self.backend = backend
        self.config = dict(config) if config else {}
        detail = ""
        if self.config:
            pairs = ", ".join(f"{k}={v!r}" for k, v in self.config.items())
            detail = f" [{pairs}]"
        prefix = f"backend {backend!r}: " if backend else ""
        super().__init__(f"{prefix}{message}{detail}")


__all__ = ["BackendUnavailableError"]
