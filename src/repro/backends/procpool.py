"""Process-pool backend: true multi-core block parallelism.

The first backend that leaves the GIL behind entirely. Handles are
:class:`ShmTensor` instances — tensors living in named
``multiprocessing.shared_memory`` segments — and every kernel partitions
its work over the exact block geometry the threaded backend uses
(:mod:`repro.backends.blockpar`), fanning block tasks out to a pool of
worker *processes*. Workers attach to the segments by name, so no tensor
ever crosses a pipe: a task message carries a segment name, a shape, a
dtype and a slice — plus the (small) factor matrix for TTM steps.

Determinism is preserved exactly as in the threaded backend:

* TTM blocks write disjoint slices of a preallocated output segment (no
  cross-process reduction at all);
* Gram partials and norm partials come back to the parent and are summed
  in ascending block order, the fixed-order discipline shared with the
  virtual cluster.

Because the block geometry and reduction order are *identical* to the
threaded backend's, both produce bit-identical results — and agree with
the sequential reference to the conformance harness's 1e-10.

The parent owns the only :class:`~repro.mpi.stats.StatsLedger`; workers
return bare partial results and the parent folds them into single
per-kernel records (wall-clock seconds, the same ops/tags/FLOP formulas
the other shared-memory backends use). Regridding is the identity and no
communication volume is recorded — one address space, honestly accounted.

Out-of-core runs swap the transport: when the handle is a
:class:`~repro.storage.StoredTensor` (a spill block or a lazily opened
``.npy``), workers ``np.memmap`` the underlying *files* directly — read-
only for inputs, read-write disjoint slices for outputs — instead of
copying the tensor through ``shared_memory``. Task messages shrink to
paths plus geometry, and a tensor larger than RAM streams through the
pool one budget-bounded block per worker at a time.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import weakref
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.backends.blockpar import (
    OC_LEASE_FACTOR,
    block_slices,
    check_worker_count,
    gram_evd_flops,
    oc_block_slices,
    reduce_partials,
    split_mode,
)
from repro.backends.errors import BackendUnavailableError
from repro.backends.ockernels import (
    oc_cross_gram,
    oc_distribute,
    oc_gram,
    oc_norm_sq,
    oc_sketch,
    oc_ttm,
    serial_map,
)
from repro.backends.sketch import (
    add_block_contribution,
    out_shape as sketch_out_shape,
    sketch_flops,
)
from repro.storage import CorruptBlockError, StorageError, StoredTensor
from repro.tensor.linalg import leading_eigvecs
from repro.tensor.ttm import ttm
from repro.tensor.unfold import unfold

try:  # gated: some platforms build Python without shared memory
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - absent only on exotic builds
    shared_memory = None


def _pool_context():
    """Fork on Linux (cheap workers, stable even if the default shifts);
    everywhere else the platform default — forking is unsafe where CPython
    itself switched away from it (macOS system frameworks)."""
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# --------------------------------------------------------------------- #
# shared-memory handles
# --------------------------------------------------------------------- #


class ShmTensor:
    """A tensor in a named shared-memory segment (the procpool handle).

    The creating process owns the segment and unlinks it when the handle
    is garbage collected (or when :meth:`close` is called). Workers attach
    by :attr:`name` for the duration of one block task.
    """

    def __init__(self, shape: tuple[int, ...], dtype) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._array: np.ndarray | None = np.ndarray(
            self.shape, dtype=self.dtype, buffer=self._shm.buf
        )
        # The finalizer tracks the *view*, not the handle: an ndarray
        # built over a memoryview does not hold a buffer export on it
        # (numpy >= 2), so destroying the segment when the handle dies
        # would unmap memory under a still-referenced gather() view.
        # Tied to the view, the mapping lives exactly as long as anything
        # can read it — and no longer.
        self._finalizer = weakref.finalize(
            self._array, _destroy_segment, self._shm
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def array(self) -> np.ndarray:
        """The parent's live view of the segment."""
        if self._array is None:
            raise ValueError("ShmTensor is closed")
        return self._array

    def close(self) -> None:
        """Release the parent's view and unlink the segment."""
        self._array = None
        self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShmTensor(name={self.name!r}, shape={self.shape})"


def _destroy_segment(shm) -> None:
    """Finalizer: drop the mapping and the name (best effort)."""
    try:
        shm.close()
    except BufferError:  # a view outlived the handle; name still goes away
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


# --------------------------------------------------------------------- #
# worker-side task functions (module level: picklable under spawn)
# --------------------------------------------------------------------- #


def _attach(name: str):
    """Attach to a segment by name for the duration of one block task.

    Python < 3.13 registers *attached* segments with the resource tracker
    as if the worker owned them; pool workers inherit the parent's tracker,
    so the duplicate register is an idempotent set-add that the parent's
    ``unlink`` cleanly retires — no compensation needed.
    """
    return shared_memory.SharedMemory(name=name)


def _release(shm) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - view not yet collected
        pass


def _view(shm, shape, dtype) -> np.ndarray:
    return np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)


def _block_index(ndim: int, split: int, lo: int, hi: int) -> tuple:
    index: list[slice] = [slice(None)] * ndim
    index[split] = slice(lo, hi)
    return tuple(index)


def _run_timed(func, *args):
    """Run one worker task, shipping back a span fragment with the result.

    ``perf_counter`` is CLOCK_MONOTONIC on Linux — shared across
    processes — so the fragment's timestamps land directly on the
    parent's trace timeline. Only used when tracing is enabled; the
    untraced path submits the task function bare.
    """
    t0 = perf_counter()
    value = func(*args)
    return (os.getpid(), t0, perf_counter()), value


def _ttm_block(
    in_name, in_shape, in_dtype, out_name, out_shape, out_dtype,
    matrix, mode, split, lo, hi,
) -> None:
    """One TTM block: read a slice of ``in``, write a disjoint slice of ``out``."""
    src = _attach(in_name)
    dst = _attach(out_name)
    try:
        x = _view(src, in_shape, in_dtype)
        out = _view(dst, out_shape, out_dtype)
        index = _block_index(len(in_shape), split, lo, hi)
        out[index] = ttm(x[index], matrix, mode)
        del x, out
    finally:
        _release(src)
        _release(dst)


def _gram_block(name, shape, dtype, mode, split, lo, hi):
    """One Gram partial: ``U U^T`` of the slice's mode unfolding."""
    shm = _attach(name)
    try:
        x = _view(shm, shape, dtype)
        index = _block_index(len(shape), split, lo, hi)
        u = unfold(x[index], mode)
        g = u @ u.T
        del x
    finally:
        _release(shm)
    return g


def _sketch_partials(dims, specs, split, lo, hi, block):
    """One block's full-size sketch partials plus its norm partial.

    Shared by the shm and file task functions (and the serial fallback),
    so every transport computes bit-identical per-block contributions.
    ``split=-1`` means the block is the whole tensor.
    """
    ranges = tuple(
        (lo, hi) if m == split else (0, int(dims[m]))
        for m in range(len(dims))
    )
    contribs = []
    for spec in specs:
        out = np.zeros(sketch_out_shape(dims, spec), dtype=block.dtype)
        add_block_contribution(out, block, spec, ranges)
        contribs.append(out)
    flat = block.reshape(-1)
    return contribs, float(np.dot(flat, flat))


def _sketch_block(name, shape, dtype, specs, split, lo, hi):
    """One block's contributions to every sketch plus its norm partial."""
    shm = _attach(name)
    try:
        x = _view(shm, shape, dtype)
        index = _block_index(len(shape), split, lo, hi)
        result = _sketch_partials(
            tuple(shape), specs, split, lo, hi,
            np.ascontiguousarray(x[index]),
        )
        del x
    finally:
        _release(shm)
    return result


def _xgram_block(
    a_name, a_shape, a_dtype, b_name, b_shape, b_dtype, mode, split, lo, hi
):
    """One cross-Gram partial ``unfold(A)[cols] @ unfold(B)[cols].T``."""
    sa = _attach(a_name)
    sb = _attach(b_name)
    try:
        a = _view(sa, a_shape, a_dtype)
        b = _view(sb, b_shape, b_dtype)
        index = _block_index(len(a_shape), split, lo, hi)
        ua = unfold(a[index], mode)
        ub = unfold(b[index], mode)
        g = ua @ ub.T
        del a, b
    finally:
        _release(sa)
        _release(sb)
    return g


def _norm_block(name, shape, dtype, lo, hi):
    """Partial squared norm of the flat range ``[lo, hi)``."""
    shm = _attach(name)
    try:
        flat = _view(shm, shape, dtype).reshape(-1)
        piece = flat[lo:hi]
        value = float(np.dot(piece, piece))
        del flat, piece
    finally:
        _release(shm)
    return value


# --------------------------------------------------------------------- #
# worker-side task functions over spill files (out-of-core handles)
#
# When the source tensor is mmap-backed (a StoredTensor: a spill block or
# a lazily opened .npy), workers map the *files* directly instead of
# copying the tensor through shared_memory segments — a task message is
# just paths + geometry, and the only bytes that move are the pages each
# worker actually touches.
# --------------------------------------------------------------------- #


def _map_file(path, offset, shape, dtype, mode):
    return np.memmap(
        path, dtype=np.dtype(dtype), mode=mode,
        offset=int(offset), shape=tuple(shape),
    )


def _mappable(handle: StoredTensor):
    """``(path, offset)`` workers can map, or ``None`` for the serial path.

    Codec-encoded blocks decode into a raw scratch file here (parent
    side, chunked and gauge-leased) so the fan-out still ships nothing
    but paths + geometry; a corrupt block surfaces through the usual
    typed errors on the in-process fallback read instead.
    """
    try:
        return handle.mappable()
    except CorruptBlockError:
        raise
    except (OSError, StorageError):
        return None


def _ttm_block_file(
    in_path, in_offset, in_shape, in_dtype,
    out_path, out_shape, out_dtype,
    matrix, mode, split, lo, hi,
) -> None:
    """One TTM block: map input ro + output r+, write a disjoint slice."""
    src = _map_file(in_path, in_offset, in_shape, in_dtype, "r")
    dst = _map_file(out_path, 0, out_shape, out_dtype, "r+")
    try:
        index = _block_index(len(in_shape), split, lo, hi)
        dst[index] = ttm(np.ascontiguousarray(src[index]), matrix, mode)
        dst.flush()
    finally:
        del src, dst


def _gram_block_file(path, offset, shape, dtype, mode, split, lo, hi):
    """One Gram partial read straight off the mapped file."""
    src = _map_file(path, offset, shape, dtype, "r")
    try:
        index = _block_index(len(shape), split, lo, hi)
        u = unfold(np.ascontiguousarray(src[index]), mode)
        return u @ u.T
    finally:
        del src


def _sketch_block_file(path, offset, shape, dtype, specs, split, lo, hi):
    """Sketch partials of one block read straight off the mapped file."""
    src = _map_file(path, offset, shape, dtype, "r")
    try:
        index = _block_index(len(shape), split, lo, hi)
        return _sketch_partials(
            tuple(shape), specs, split, lo, hi,
            np.ascontiguousarray(src[index]),
        )
    finally:
        del src


def _xgram_block_file(
    a_path, a_offset, a_shape, a_dtype,
    b_path, b_offset, b_shape, b_dtype,
    mode, split, lo, hi,
):
    """One cross-Gram partial off two mapped files."""
    sa = _map_file(a_path, a_offset, a_shape, a_dtype, "r")
    sb = _map_file(b_path, b_offset, b_shape, b_dtype, "r")
    try:
        index = _block_index(len(a_shape), split, lo, hi)
        ua = unfold(np.ascontiguousarray(sa[index]), mode)
        ub = unfold(np.ascontiguousarray(sb[index]), mode)
        return ua @ ub.T
    finally:
        del sa, sb


def _norm_block_file(path, offset, shape, dtype, lo, hi):
    """Partial squared norm of the flat range ``[lo, hi)`` off the file."""
    src = _map_file(path, offset, shape, dtype, "r")
    try:
        piece = np.ascontiguousarray(src.reshape(-1)[lo:hi])
        return float(np.dot(piece, piece))
    finally:
        del src


# --------------------------------------------------------------------- #
# the backend
# --------------------------------------------------------------------- #


class ProcessPoolBackend(ExecutionBackend):
    """Block-parallel execution over a pool of worker processes.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to ``min(8, cpu_count - 1)``. Also the
        processor count plans default to, so planning granularity matches
        execution granularity.
    """

    name = "procpool"

    def __init__(self, n_workers: int | None = None) -> None:
        super().__init__()
        self._pool: ProcessPoolExecutor | None = None  # before any raise
        if shared_memory is None:  # pragma: no cover - exotic builds only
            raise BackendUnavailableError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform",
                backend=self.name,
            )
        n_workers = check_worker_count(n_workers, self.name)
        try:  # probe: /dev/shm may be missing or unwritable in sandboxes
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
        except OSError as exc:
            raise BackendUnavailableError(
                f"cannot allocate shared memory ({exc})",
                backend=self.name,
                config={"n_workers": n_workers},
            ) from exc
        self.n_workers = n_workers

    @property
    def default_procs(self) -> int:
        return self.n_workers

    # -- pool lifecycle --------------------------------------------------- #

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=_pool_context()
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down; the backend stays usable (pool reopens)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # -- helpers ----------------------------------------------------------- #

    def _await_all(self, futures, owned: tuple = ()) -> list:
        """Collect fan-out results; on failure leave the backend healthy.

        A worker exception must not poison the backend: pending tasks are
        cancelled and drained first (so no worker is still writing when
        segments go away), then every handle in ``owned`` — output
        segments that will never reach the caller — is unlinked so
        ``/dev/shm`` stays clean. A pool whose workers died
        (:class:`BrokenProcessPool`) is shut down and dropped; the next
        kernel transparently spins up a fresh one.
        """
        try:
            return [f.result() for f in futures]
        except BaseException as exc:
            for f in futures:
                f.cancel()
            wait(futures)
            for handle in owned:
                handle.close()
            if isinstance(exc, BrokenProcessPool) and self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
            raise

    def _submit(self, func, *args):
        """Submit one worker task, wrapped for span capture when traced."""
        if self.tracer.enabled:
            return self._executor().submit(_run_timed, func, *args)
        return self._executor().submit(func, *args)

    def _collect(self, label: str, futures, owned: tuple = ()) -> list:
        """:meth:`_await_all`, unwrapping traced span fragments.

        Each fragment becomes a ``kind="worker"`` span named
        ``worker:{label}`` parented on the currently open span (the
        enclosing kernel's phase). Fragments of a failed fan-out are
        dropped with their results — `_await_all` raises first.
        """
        results = self._await_all(futures, owned)
        if not self.tracer.enabled:
            return results
        out = []
        for (pid, t0, t1), value in results:
            self.tracer.add_span(
                f"worker:{label}", t0, t1, kind="worker", pid=pid
            )
            out.append(value)
        return out

    def _store(self, array: np.ndarray) -> ShmTensor:
        handle = ShmTensor(array.shape, array.dtype)
        handle.array[...] = array
        return handle

    def _parallel(self) -> bool:
        return self.n_workers > 1

    # -- data placement -------------------------------------------------- #

    def distribute(self, tensor: np.ndarray, grid, *, store=None):
        if store is not None:
            # Out-of-core placement: a lazily mapped .npy is wrapped in
            # place (workers will map the file directly — no copy through
            # shared_memory at all); anything else spills write-through.
            return oc_distribute(tensor, store)
        return self._store(np.ascontiguousarray(tensor))

    def gather(self, handle) -> np.ndarray:
        if isinstance(handle, StoredTensor):
            return handle.open()
        # The live view, not a copy — the session copies cores it keeps,
        # and the segment finalizer is tied to this very view, so the
        # mapping stays valid for as long as the caller holds it.
        return handle.array

    def shape(self, handle) -> tuple[int, ...]:
        return handle.shape

    # -- out-of-core fan-out ---------------------------------------------- #

    def _stored_slices(self, handle: StoredTensor, split: int) -> list[slice]:
        return oc_block_slices(
            handle.shape,
            split,
            handle.dtype.itemsize,
            handle.store.per_block_bytes(self.n_workers),
            self.n_workers,
        )

    def _worker_lease(self, handle: StoredTensor, slices: list[slice]):
        """Parent-side lease modeling the workers' concurrent residency.

        Workers are separate processes, so their block copies cannot
        charge the in-process gauge directly; the parent charges the
        worst case — every pool worker holding one leased block at once —
        for the duration of the fan-out.
        """
        split_total = sum(sl.stop - sl.start for sl in slices)
        slab = max(1, handle.nbytes // max(1, split_total))
        biggest = max(sl.stop - sl.start for sl in slices)
        concurrency = min(len(slices), self.n_workers)
        return handle.store.gauge.lease(
            OC_LEASE_FACTOR * biggest * slab * concurrency
        )

    # -- kernels ---------------------------------------------------------- #

    def _ttm_stored(
        self, handle: StoredTensor, matrix: np.ndarray, mode: int
    ) -> StoredTensor:
        """TTM over a spilled handle: workers map the files directly."""
        split = split_mode(handle.shape, avoid=mode)
        mapped = _mappable(handle) if self._parallel() else None
        if split is None or mapped is None:
            return oc_ttm(handle, matrix, mode, 1, serial_map)
        in_path, in_offset = mapped
        matrix = np.asarray(matrix)
        out_shape = (
            handle.shape[:mode]
            + (matrix.shape[0],)
            + handle.shape[mode + 1 :]
        )
        out_dtype = np.result_type(handle.dtype, matrix.dtype)
        out = StoredTensor.allocate(handle.store, out_shape, out_dtype)
        slices = self._stored_slices(handle, split)
        with self._worker_lease(handle, slices):
            futures = [
                self._submit(
                    _ttm_block_file,
                    in_path, in_offset, handle.shape,
                    handle.dtype.str,
                    out.path, out_shape, out_dtype.str,
                    matrix, mode, split, sl.start, sl.stop,
                )
                for sl in slices
            ]
            self._collect("ttm", futures, owned=(out,))
        return out

    def ttm(
        self, handle, matrix: np.ndarray, mode: int, *, tag="ttm"
    ) -> ShmTensor:
        if isinstance(handle, StoredTensor):
            start = perf_counter()
            out = self._ttm_stored(handle, matrix, mode)
            self.ledger.add_compute(
                op="gemm",
                tag=tag,
                flops=float(matrix.shape[0] * handle.size),
                seconds=perf_counter() - start,
            )
            return out
        start = perf_counter()
        split = split_mode(handle.shape, avoid=mode)
        if split is None or not self._parallel():
            out = self._store(ttm(handle.array, matrix, mode))
        else:
            out_shape = (
                handle.shape[:mode]
                + (matrix.shape[0],)
                + handle.shape[mode + 1 :]
            )
            out_dtype = np.result_type(handle.dtype, matrix.dtype)
            out = ShmTensor(out_shape, out_dtype)
            futures = [
                self._submit(
                    _ttm_block,
                    handle.name, handle.shape, handle.dtype.str,
                    out.name, out_shape, out_dtype.str,
                    matrix, mode, split, sl.start, sl.stop,
                )
                for sl in block_slices(handle.shape[split], self.n_workers)
            ]
            self._collect("ttm", futures, owned=(out,))
        size = int(np.prod(handle.shape))
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(matrix.shape[0] * size),
            seconds=perf_counter() - start,
        )
        return out

    def _gram_stored(
        self,
        handle: StoredTensor,
        mode: int,
        out: np.ndarray | None,
    ) -> np.ndarray:
        """Gram accumulation over a spilled handle via file-mapped workers."""
        split = split_mode(handle.shape, avoid=mode)
        mapped = _mappable(handle) if self._parallel() else None
        if split is None or mapped is None:
            return oc_gram(handle, mode, 1, serial_map, out)
        path, offset = mapped
        slices = self._stored_slices(handle, split)
        with self._worker_lease(handle, slices):
            futures = [
                self._submit(
                    _gram_block_file,
                    path, offset, handle.shape,
                    handle.dtype.str,
                    mode, split, sl.start, sl.stop,
                )
                for sl in slices
            ]
            partials = self._collect("gram", futures)
        # Fixed ascending-block reduction order (determinism).
        return reduce_partials(partials, handle.shape[mode], out)

    def leading_factor(
        self,
        handle,
        mode: int,
        k: int,
        *,
        tag: str = "svd",
        method: str = "gram",
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        if method != "gram":
            raise ValueError(
                f"ProcessPoolBackend only supports the Gram+EVD route, "
                f"got method={method!r}"
            )
        if isinstance(handle, StoredTensor):
            start = perf_counter()
            g = self._gram_stored(handle, mode, out)
            g = (g + g.T) * 0.5
            factor = leading_eigvecs(g, k)
            self.ledger.add_compute(
                op="syrk",
                tag=tag,
                flops=float(gram_evd_flops(handle.shape[mode], handle.size)),
                seconds=perf_counter() - start,
            )
            return factor
        start = perf_counter()
        length = handle.shape[mode]
        split = split_mode(handle.shape, avoid=mode)
        if split is None or not self._parallel():
            u = unfold(handle.array, mode)
            g = u @ u.T
        else:
            futures = [
                self._submit(
                    _gram_block,
                    handle.name, handle.shape, handle.dtype.str,
                    mode, split, sl.start, sl.stop,
                )
                for sl in block_slices(handle.shape[split], self.n_workers)
            ]
            partials = self._collect("gram", futures)
            # Fixed ascending-block reduction order (determinism).
            g = reduce_partials(partials, length, out)
        g = (g + g.T) * 0.5
        flops = gram_evd_flops(length, int(np.prod(handle.shape)))
        factor = leading_eigvecs(g, k)
        self.ledger.add_compute(
            op="syrk",
            tag=tag,
            flops=float(flops),
            seconds=perf_counter() - start,
        )
        return factor

    def _accumulate_sketches(self, dims, specs, results):
        """Ascending-block accumulation shared by both sketch transports."""
        outs = [
            np.zeros(sketch_out_shape(dims, spec), dtype=np.dtype(
                results[0][0][i].dtype if results else np.float64
            ))
            for i, spec in enumerate(specs)
        ]
        norm_sq = 0.0
        for contribs, part in results:  # ascending block order
            for out, contrib in zip(outs, contribs):
                out += contrib
            norm_sq += part
        return outs, float(norm_sq)

    def _sketch_stored(self, handle: StoredTensor, specs):
        split = split_mode(handle.shape, avoid=None)
        mapped = _mappable(handle) if self._parallel() else None
        if split is None or mapped is None:
            return oc_sketch(handle, specs, 1, serial_map)
        path, offset = mapped
        slices = self._stored_slices(handle, split)
        with self._worker_lease(handle, slices):
            futures = [
                self._submit(
                    _sketch_block_file,
                    path, offset, handle.shape,
                    handle.dtype.str, specs, split, sl.start, sl.stop,
                )
                for sl in slices
            ]
            results = self._collect("sketch", futures)
        return self._accumulate_sketches(tuple(handle.shape), specs, results)

    def sketch(self, handle, specs, *, tag="sketch"):
        start = perf_counter()
        specs = list(specs)
        if isinstance(handle, StoredTensor):
            sketches, norm_sq = self._sketch_stored(handle, specs)
        else:
            dims = tuple(handle.shape)
            split = split_mode(dims, avoid=None)
            if split is None or not self._parallel():
                sketches, norm_sq = _sketch_partials(
                    dims, specs, -1, 0, 0,
                    np.ascontiguousarray(handle.array),
                )
            else:
                futures = [
                    self._submit(
                        _sketch_block,
                        handle.name, handle.shape, handle.dtype.str,
                        specs, split, sl.start, sl.stop,
                    )
                    for sl in block_slices(dims[split], self.n_workers)
                ]
                results = self._collect("sketch", futures)
                sketches, norm_sq = self._accumulate_sketches(
                    dims, specs, results
                )
        size = int(np.prod(handle.shape))
        flops = sum(sketch_flops(handle.shape, spec) for spec in specs)
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(flops) + float(size),
            seconds=perf_counter() - start,
        )
        return sketches, norm_sq

    def _xgram_stored(self, a: StoredTensor, b: StoredTensor, mode: int):
        split = split_mode(a.shape, avoid=mode)
        mapped_a = _mappable(a) if self._parallel() else None
        mapped_b = _mappable(b) if self._parallel() else None
        if split is None or mapped_a is None or mapped_b is None:
            return oc_cross_gram(a, b, mode, 1, serial_map)
        a_path, a_offset = mapped_a
        b_path, b_offset = mapped_b
        slices = self._stored_slices(a, split)
        with self._worker_lease(a, slices), self._worker_lease(b, slices):
            futures = [
                self._submit(
                    _xgram_block_file,
                    a_path, a_offset, a.shape, a.dtype.str,
                    b_path, b_offset, b.shape, b.dtype.str,
                    mode, split, sl.start, sl.stop,
                )
                for sl in slices
            ]
            partials = self._collect("xgram", futures)
        # Fixed ascending-block reduction order (determinism).
        return reduce_partials(partials, a.shape[mode])

    def cross_gram(self, handle, other, mode: int, *, tag="xgram"):
        start = perf_counter()
        if isinstance(handle, StoredTensor):
            g = self._xgram_stored(handle, other, mode)
        else:
            split = split_mode(handle.shape, avoid=mode)
            if split is None or not self._parallel():
                g = unfold(handle.array, mode) @ unfold(other.array, mode).T
            else:
                futures = [
                    self._submit(
                        _xgram_block,
                        handle.name, handle.shape, handle.dtype.str,
                        other.name, other.shape, other.dtype.str,
                        mode, split, sl.start, sl.stop,
                    )
                    for sl in block_slices(
                        handle.shape[split], self.n_workers
                    )
                ]
                partials = self._collect("xgram", futures)
                # Fixed ascending-block reduction order (determinism).
                g = reduce_partials(partials, handle.shape[mode])
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(other.shape[mode]) * float(np.prod(handle.shape)),
            seconds=perf_counter() - start,
        )
        return g

    def regrid(self, handle, grid, *, tag="regrid"):
        return handle

    def _norm_stored(self, handle: StoredTensor) -> float:
        slices = oc_block_slices(
            (handle.size,),
            0,
            handle.dtype.itemsize,
            handle.store.per_block_bytes(self.n_workers),
            self.n_workers,
        )
        mapped = _mappable(handle) if self._parallel() else None
        if len(slices) <= 1 or mapped is None:
            return oc_norm_sq(handle, 1, serial_map)
        path, offset = mapped
        # flat slices cover handle.size, so _worker_lease's slab reduces
        # to the itemsize — one formula for every fan-out
        with self._worker_lease(handle, slices):
            futures = [
                self._submit(
                    _norm_block_file,
                    path, offset, handle.shape,
                    handle.dtype.str, sl.start, sl.stop,
                )
                for sl in slices
            ]
            partials = self._collect("norm", futures)
        # Ascending block order, same as every other backend.
        return float(sum(partials))

    def fro_norm_sq(self, handle, *, tag="norm") -> float:
        if isinstance(handle, StoredTensor):
            return self._norm_stored(handle)
        size = int(np.prod(handle.shape))
        slices = block_slices(size, self.n_workers)
        if len(slices) <= 1 or not self._parallel():
            flat = handle.array.reshape(-1)
            return float(np.dot(flat, flat))
        futures = [
            self._submit(
                _norm_block,
                handle.name, handle.shape, handle.dtype.str,
                sl.start, sl.stop,
            )
            for sl in slices
        ]
        # Ascending block order, same as the threaded backend.
        return float(sum(self._collect("norm", futures)))
