"""Single-process NumPy backend.

Handles are plain ndarrays; regridding is the identity. Every kernel
records its multiply-add count (and measured wall seconds) in the ledger so
sequential runs expose the same ``stats()`` surface as the virtual cluster
— with zero communication volume, as expected of one rank.

When a run spills (``distribute(..., store=...)``), handles become
:class:`~repro.storage.StoredTensor` block descriptions and every kernel
runs its out-of-core form (:mod:`repro.backends.ockernels`): one
budget-bounded block resident at a time, same ledger records, same
numerics to 1e-10.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.backends.ockernels import (
    oc_cross_gram,
    oc_distribute,
    oc_gram,
    oc_norm_sq,
    oc_sketch,
    oc_ttm,
    serial_map,
)
from repro.backends.sketch import sketch_arrays, sketch_flops
from repro.storage import StoredTensor
from repro.tensor.linalg import (
    leading_eigvecs,
    leading_left_singular_vectors,
)
from repro.tensor.ttm import ttm
from repro.tensor.unfold import unfold


class SequentialBackend(ExecutionBackend):
    """The numpy reference path (one rank, shared memory)."""

    name = "sequential"

    # -- data placement -------------------------------------------------- #

    def distribute(self, tensor: np.ndarray, grid, *, store=None):
        if store is not None:
            return oc_distribute(tensor, store)
        return np.ascontiguousarray(tensor)

    def gather(self, handle) -> np.ndarray:
        if isinstance(handle, StoredTensor):
            return handle.open()
        return handle

    def shape(self, handle) -> tuple[int, ...]:
        return tuple(handle.shape)

    # -- kernels ---------------------------------------------------------- #

    def ttm(
        self, handle, matrix: np.ndarray, mode: int, *, tag="ttm"
    ) -> np.ndarray:
        start = perf_counter()
        if isinstance(handle, StoredTensor):
            out = oc_ttm(handle, matrix, mode, 1, serial_map)
        else:
            out = ttm(handle, matrix, mode)
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(matrix.shape[0] * handle.size),
            seconds=perf_counter() - start,
        )
        return out

    def leading_factor(
        self,
        handle,
        mode: int,
        k: int,
        *,
        tag: str = "svd",
        method: str = "gram",
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        start = perf_counter()
        length = handle.shape[mode]
        if isinstance(handle, StoredTensor):
            if method != "gram":
                raise ValueError(
                    f"out-of-core handles only support the Gram+EVD "
                    f"route, got method={method!r}"
                )
            g = oc_gram(handle, mode, 1, serial_map, out)
            g = (g + g.T) * 0.5
            factor = leading_eigvecs(g, k)
        elif method == "gram":
            u = unfold(handle, mode)
            if (
                out is not None
                and out.shape == (length, length)
                and out.dtype == u.dtype
            ):
                g = np.matmul(u, u.T, out=out)
            else:
                g = u @ u.T
            g = (g + g.T) * 0.5
            factor = leading_eigvecs(g, k)
        else:
            factor = leading_left_singular_vectors(
                unfold(handle, mode), k, method=method
            )
        flops = (
            length * (length + 1) // 2 * (handle.size // length)
            + 4 * length**3 // 3
        )
        self.ledger.add_compute(
            op="syrk",
            tag=tag,
            flops=float(flops),
            seconds=perf_counter() - start,
        )
        return factor

    def sketch(self, handle, specs, *, tag="sketch"):
        start = perf_counter()
        if isinstance(handle, StoredTensor):
            sketches, norm_sq = oc_sketch(handle, specs, 1, serial_map)
        else:
            sketches, norm_sq = sketch_arrays(handle, specs)
        flops = sum(sketch_flops(handle.shape, spec) for spec in specs)
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(flops) + float(handle.size),
            seconds=perf_counter() - start,
        )
        return sketches, norm_sq

    def cross_gram(self, handle, other, mode: int, *, tag="xgram"):
        start = perf_counter()
        if isinstance(handle, StoredTensor):
            g = oc_cross_gram(handle, other, mode, 1, serial_map)
        else:
            ua = unfold(handle, mode)
            ub = unfold(other, mode)
            g = ua @ ub.T
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(other.shape[mode]) * float(handle.size),
            seconds=perf_counter() - start,
        )
        return g

    def regrid(self, handle, grid, *, tag="regrid"):
        return handle

    def fro_norm_sq(self, handle, *, tag="norm") -> float:
        if isinstance(handle, StoredTensor):
            return oc_norm_sq(handle, 1, serial_map)
        # sqrt-then-square matches the historical fro_norm()**2 path bit for
        # bit — it matters at the norm-identity cancellation floor.
        return float(np.linalg.norm(handle.ravel())) ** 2
