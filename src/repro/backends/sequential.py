"""Single-process NumPy backend.

Handles are plain ndarrays; regridding is the identity. Every kernel
records its multiply-add count (and measured wall seconds) in the ledger so
sequential runs expose the same ``stats()`` surface as the virtual cluster
— with zero communication volume, as expected of one rank.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.tensor.linalg import (
    leading_eigvecs,
    leading_left_singular_vectors,
)
from repro.tensor.ttm import ttm
from repro.tensor.unfold import unfold


class SequentialBackend(ExecutionBackend):
    """The numpy reference path (one rank, shared memory)."""

    name = "sequential"

    # -- data placement -------------------------------------------------- #

    def distribute(self, tensor: np.ndarray, grid) -> np.ndarray:
        return np.ascontiguousarray(tensor)

    def gather(self, handle: np.ndarray) -> np.ndarray:
        return handle

    def shape(self, handle: np.ndarray) -> tuple[int, ...]:
        return tuple(handle.shape)

    # -- kernels ---------------------------------------------------------- #

    def ttm(
        self, handle: np.ndarray, matrix: np.ndarray, mode: int, *, tag="ttm"
    ) -> np.ndarray:
        start = perf_counter()
        out = ttm(handle, matrix, mode)
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(matrix.shape[0] * handle.size),
            seconds=perf_counter() - start,
        )
        return out

    def leading_factor(
        self,
        handle: np.ndarray,
        mode: int,
        k: int,
        *,
        tag: str = "svd",
        method: str = "gram",
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        start = perf_counter()
        length = handle.shape[mode]
        if method == "gram":
            u = unfold(handle, mode)
            if (
                out is not None
                and out.shape == (length, length)
                and out.dtype == u.dtype
            ):
                g = np.matmul(u, u.T, out=out)
            else:
                g = u @ u.T
            g = (g + g.T) * 0.5
            factor = leading_eigvecs(g, k)
        else:
            factor = leading_left_singular_vectors(
                unfold(handle, mode), k, method=method
            )
        flops = (
            length * (length + 1) // 2 * (handle.size // length)
            + 4 * length**3 // 3
        )
        self.ledger.add_compute(
            op="syrk",
            tag=tag,
            flops=float(flops),
            seconds=perf_counter() - start,
        )
        return factor

    def regrid(self, handle: np.ndarray, grid, *, tag="regrid") -> np.ndarray:
        return handle

    def fro_norm_sq(self, handle: np.ndarray, *, tag="norm") -> float:
        # sqrt-then-square matches the historical fro_norm()**2 path bit for
        # bit — it matters at the norm-identity cancellation floor.
        return float(np.linalg.norm(handle.ravel())) ** 2
