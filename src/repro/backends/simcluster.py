"""Virtual-cluster backend: the ``repro.dist`` engine behind the protocol.

Handles are :class:`~repro.dist.dtensor.DistTensor` instances; the ledger
is the wrapped :class:`~repro.mpi.comm.SimCluster`'s own
:class:`~repro.mpi.stats.StatsLedger` (shared, not copied), so exact
communication volumes keep landing where the benchmark harness and the
engine-vs-model reconciliation expect them.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.backends.errors import BackendUnavailableError
from repro.dist.dtensor import DistTensor
from repro.dist.gram import dist_leading_factor
from repro.dist.regrid import regrid as dist_regrid
from repro.dist.sketch import dist_cross_gram, dist_sketch
from repro.dist.ttm import dist_ttm
from repro.mpi.comm import SimCluster
from repro.mpi.machine import MachineModel


class SimClusterBackend(ExecutionBackend):
    """Distributed execution on an in-process virtual cluster.

    Parameters
    ----------
    cluster:
        The virtual cluster to run on; created from ``n_procs`` when absent.
    n_procs:
        World size for a freshly created cluster (ignored when ``cluster``
        is given).
    machine:
        Performance model for a freshly created cluster.
    """

    name = "simcluster"

    def __init__(
        self,
        cluster: SimCluster | None = None,
        *,
        n_procs: int | None = None,
        machine: MachineModel | None = None,
    ) -> None:
        super().__init__()
        if cluster is None:
            if n_procs is None:
                raise BackendUnavailableError(
                    "needs a cluster or n_procs", backend=self.name
                )
            cluster = SimCluster(n_procs, machine=machine)
        self.cluster = cluster
        # Share the cluster's ledger so stats() sees the engine's records.
        self.ledger = cluster.stats

    @property
    def default_procs(self) -> int:
        return self.cluster.n_procs

    # -- data placement -------------------------------------------------- #

    def _check_grid(self, grid: tuple[int, ...]) -> tuple[int, ...]:
        """A grid must tile exactly this cluster's world size."""
        grid = tuple(int(q) for q in grid)
        n = 1
        for q in grid:
            n *= q
        if n != self.cluster.n_procs:
            raise BackendUnavailableError(
                "grid does not tile the cluster",
                backend=self.name,
                config={"grid": grid, "n_procs": self.cluster.n_procs},
            )
        return grid

    def distribute(self, tensor: np.ndarray, grid, *, store=None) -> DistTensor:
        return DistTensor.from_global(
            self.cluster, tensor, self._check_grid(grid), store=store
        )

    def gather(self, handle: DistTensor) -> np.ndarray:
        return handle.to_global()

    def shape(self, handle: DistTensor) -> tuple[int, ...]:
        return handle.global_shape

    # -- kernels ---------------------------------------------------------- #

    def ttm(
        self, handle: DistTensor, matrix: np.ndarray, mode: int, *, tag="ttm"
    ) -> DistTensor:
        return dist_ttm(handle, matrix, mode, tag=tag)

    def leading_factor(
        self,
        handle: DistTensor,
        mode: int,
        k: int,
        *,
        tag: str = "svd",
        method: str = "gram",
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        if method != "gram":
            raise ValueError(
                f"SimClusterBackend only supports the Gram+EVD route, "
                f"got method={method!r}"
            )
        return dist_leading_factor(handle, mode, k, tag=tag)

    def sketch(self, handle: DistTensor, specs, *, tag="sketch"):
        return dist_sketch(handle, specs, tag=tag)

    def cross_gram(
        self, handle: DistTensor, other: DistTensor, mode: int, *, tag="xgram"
    ) -> np.ndarray:
        return dist_cross_gram(handle, other, mode, tag=tag)

    def regrid(self, handle: DistTensor, grid, *, tag="regrid") -> DistTensor:
        return dist_regrid(handle, self._check_grid(grid), tag=tag)

    def fro_norm_sq(self, handle: DistTensor, *, tag="norm") -> float:
        return handle.fro_norm_sq(tag=tag)
