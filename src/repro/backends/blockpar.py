"""Block parallelism shared by the shared-memory pool backends.

The threaded and process-pool backends partition every kernel the same
way: pick the longest mode other than the one the kernel operates on,
split it into near-even contiguous ranges (:func:`repro.dist.blocks
.block_ranges`, the same partitioning the distributed engine uses), and
fan the blocks out to workers. The partial-reduction discipline (ascending
block order into an optional preallocated workspace) and the ledger FLOP
formulas live here too. Keeping all of it in one place guarantees the two
backends perform *identical* floating-point operations in *identical*
reduction order — which is what lets the conformance harness hold every
backend to the sequential reference at 1e-10 and the golden tests pin
their FLOP tallies bit-for-bit.
"""

from __future__ import annotations

import operator
import os

import numpy as np

from repro.backends.errors import BackendUnavailableError
from repro.dist.blocks import block_ranges


def split_mode(shape: tuple[int, ...], avoid: int | None) -> int | None:
    """Mode to partition along: the longest mode other than ``avoid``.

    Returns ``None`` when no mode longer than 1 exists outside ``avoid``
    (the kernel then runs unsplit).
    """
    candidates = [
        (length, m)
        for m, length in enumerate(shape)
        if m != avoid and length > 1
    ]
    if not candidates:
        return None
    return max(candidates)[1]


def block_slices(length: int, n_workers: int) -> list[slice]:
    """Near-even contiguous slices covering ``range(length)``."""
    n_blocks = min(n_workers, length)
    return [slice(a, b) for a, b in block_ranges(length, n_blocks)]


def reduce_partials(partials, length: int, out=None) -> np.ndarray:
    """Sum ``L x L`` Gram partials in ascending block order (determinism).

    ``out``, when shape/dtype-compatible, is the preallocated workspace a
    compiled plan carries; otherwise a fresh accumulator is used.
    """
    if out is not None and out.shape == (length, length) and (
        out.dtype == partials[0].dtype
    ):
        g = out
        g[...] = partials[0]
    else:
        g = partials[0].copy()
    for p in partials[1:]:
        g += p
    return g


def gram_evd_flops(length: int, size: int) -> int:
    """Modeled multiply-adds of one Gram accumulation + EVD.

    Shared by every shared-memory backend so their ledger tallies agree
    exactly (the golden tests pin this).
    """
    return (
        length * (length + 1) // 2 * (size // length)
        + 4 * length**3 // 3
    )


def oc_block_slices(
    shape: tuple[int, ...],
    split: int,
    itemsize: int,
    per_block_bytes: int,
    n_workers: int = 1,
) -> list[slice]:
    """Split-axis slices for out-of-core kernels, bounded two ways.

    Blocks are cut so each holds at most ``per_block_bytes`` (so a
    worker's resident copy stays under the store's budget-derived
    ceiling) *and* there are at least ``n_workers`` of them when the
    split axis allows it (so every pool worker gets work). When one unit
    of the split axis already exceeds ``per_block_bytes`` the slices
    degrade to single-unit slabs — the finest cut one axis admits.

    Deterministic in its arguments: the same handle geometry always
    yields the same blocks, which keeps out-of-core runs bit-reproducible
    like every other path.
    """
    size = 1
    for length in shape:
        size *= int(length)
    slab_bytes = max(1, size // max(1, shape[split]) * int(itemsize))
    per_units = max(1, int(per_block_bytes) // slab_bytes)
    n_blocks = -(-int(shape[split]) // per_units)  # ceil
    n_blocks = min(max(n_blocks, min(n_workers, shape[split])), shape[split])
    return [slice(a, b) for a, b in block_ranges(shape[split], n_blocks)]


#: resident charge per in-flight out-of-core block, as a multiple of the
#: block's bytes: the read copy, the kernel temporary (an unfold or gemm
#: output), and the output slab. Sessions size ``max_block_bytes`` as
#: ``memory_budget // OC_LEASE_FACTOR`` so the concurrent leases of a
#: full worker fan-out stay within the budget.
OC_LEASE_FACTOR = 3


def default_workers() -> int:
    """Natural pool size: all but one core, capped at 8."""
    return max(1, min(8, (os.cpu_count() or 2) - 1))


def check_worker_count(n_workers, backend_name: str) -> int:
    """Validate a pool size (``None`` = the natural default).

    Accepts any integral type (plain or numpy ints — worker counts often
    come out of grid arithmetic); anything else, or a non-positive count,
    is a typed unavailability.
    """
    if n_workers is None:
        return default_workers()
    try:
        n_workers = int(operator.index(n_workers))
    except TypeError:
        raise BackendUnavailableError(
            "needs an integral worker count",
            backend=backend_name,
            config={"n_workers": n_workers},
        ) from None
    if n_workers < 1:
        raise BackendUnavailableError(
            "needs a positive worker count",
            backend=backend_name,
            config={"n_workers": n_workers},
        )
    return n_workers


__all__ = [
    "OC_LEASE_FACTOR",
    "block_slices",
    "check_worker_count",
    "default_workers",
    "gram_evd_flops",
    "oc_block_slices",
    "reduce_partials",
    "split_mode",
]
