"""The :class:`ExecutionBackend` protocol.

A backend is the thing a :class:`~repro.session.CompiledPlan` runs on. It
exposes exactly the capabilities the paper's execution layer needs — TTM,
Gram/leading-factor extraction, randomized sketching (single-pass, with
its power-iteration companion ``cross_gram``), regridding, and the two
reductions (Frobenius norm, gather) — over an opaque *handle* type of its
choosing
(a plain ndarray for the shared-memory backends, a
:class:`~repro.dist.dtensor.DistTensor` for the virtual cluster). Every
backend also carries a :class:`~repro.mpi.stats.StatsLedger` so callers can
read volumes/FLOPs/seconds uniformly via :meth:`ExecutionBackend.stats`.

The schedule executor (:mod:`repro.backends.schedule`) is written purely
against this interface; adding a backend means implementing these nine
primitives, nothing more.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.mpi.stats import StatsLedger
from repro.obs.trace import NULL_TRACER


class ExecutionBackend(abc.ABC):
    """Abstract execution backend: primitives + a stats ledger.

    Handles are opaque to callers; only the backend that produced a handle
    may consume it. ``tag`` arguments label ledger records with the usual
    ``component:detail`` convention.
    """

    #: short identifier ("sequential", "simcluster", "threaded", ...)
    name: str = "abstract"

    def __init__(self) -> None:
        self.ledger = StatsLedger()
        #: where span-producing backends report (procpool worker
        #: fragments, out-of-core block I/O). The session points this at
        #: its live tracer for traced runs; the default no-op tracer
        #: keeps untraced kernels branch- and allocation-free.
        self.tracer = NULL_TRACER

    # -- planning ------------------------------------------------------- #

    @property
    def default_procs(self) -> int:
        """Processor count plans default to when the caller names none."""
        return 1

    # -- data placement -------------------------------------------------- #

    @abc.abstractmethod
    def distribute(
        self, tensor: np.ndarray, grid: tuple[int, ...], *, store=None
    ) -> Any:
        """Place a global ndarray per ``grid`` and return a handle.

        ``store``, when given, is a :class:`~repro.storage.BlockStore`
        the run has spilled to: the backend must place the tensor
        *through the store* (out-of-core block handles) instead of
        materializing it in RAM, and every kernel must accept the
        resulting handle. ``store=None`` keeps the historical fully
        resident behavior.
        """

    @abc.abstractmethod
    def gather(self, handle: Any) -> np.ndarray:
        """Assemble a handle back into a global ndarray."""

    @abc.abstractmethod
    def shape(self, handle: Any) -> tuple[int, ...]:
        """Global shape of the tensor behind ``handle``."""

    # -- kernels ---------------------------------------------------------- #

    @abc.abstractmethod
    def ttm(
        self, handle: Any, matrix: np.ndarray, mode: int, *, tag: str = "ttm"
    ) -> Any:
        """``Z = X x_mode matrix`` (``matrix`` is ``K x L_mode``)."""

    @abc.abstractmethod
    def leading_factor(
        self,
        handle: Any,
        mode: int,
        k: int,
        *,
        tag: str = "svd",
        method: str = "gram",
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Leading-``k`` left factor of the mode-``mode`` unfolding.

        Always returns a replicated (plain ndarray) factor with the
        deterministic sign convention. ``out``, when given and compatible,
        is scratch for the Gram accumulation (a preallocated workspace from
        a compiled plan); backends may ignore it.
        """

    @abc.abstractmethod
    def sketch(
        self, handle: Any, specs, *, tag: str = "sketch"
    ) -> tuple[list[np.ndarray], float]:
        """All randomized sketches of ``handle`` in **one pass**, plus norm.

        ``specs`` is a sequence of :class:`~repro.backends.sketch
        .SketchSpec`; the return is ``(sketches, norm_sq)`` where
        ``sketches[i]`` is spec ``i``'s replicated (plain ndarray)
        sketch tensor and ``norm_sq`` is the input's squared Frobenius
        norm, accumulated in the same pass. The single-pass contract is
        load-bearing: a spilled input's blocks are each read exactly
        once no matter how many specs are given, and the virtual
        cluster reduces each small sketch instead of the input.
        """

    @abc.abstractmethod
    def cross_gram(
        self, handle: Any, other: Any, mode: int, *, tag: str = "xgram"
    ) -> np.ndarray:
        """``unfold(A, mode) @ unfold(B, mode).T`` as a replicated ndarray.

        ``other`` must come from the same backend and agree with
        ``handle`` on every mode length except ``mode``. This is the
        power-iteration primitive: with ``B = A x_mode Q^T`` it yields
        ``A_(mode) A_(mode)^T Q`` without ever forming the Gram matrix.
        """

    @abc.abstractmethod
    def regrid(
        self, handle: Any, grid: tuple[int, ...], *, tag: str = "regrid"
    ) -> Any:
        """Move the tensor onto ``grid`` (a no-op for shared memory)."""

    @abc.abstractmethod
    def fro_norm_sq(self, handle: Any, *, tag: str = "norm") -> float:
        """Squared Frobenius norm (a full reduction)."""

    # -- ledger ----------------------------------------------------------- #

    def stats(self) -> dict[str, float]:
        """Uniform ledger summary: volumes, FLOPs and modeled/measured time.

        The ledger is *cumulative* over the backend's lifetime: a reused
        backend keeps accumulating across runs. Callers that need one
        run's worth of records should scope with :meth:`mark_stats` /
        :meth:`ledger_since` (the session attaches a per-run ledger to
        every :class:`~repro.session.TuckerResult` this way) or call
        :meth:`reset_stats` between runs.
        """
        return self.ledger.summary()

    def mark_stats(self) -> int:
        """Opaque ledger position; pass to :meth:`ledger_since` later."""
        return self.ledger.mark()

    def ledger_since(self, mark: int) -> StatsLedger:
        """The records appended since ``mark`` as a standalone ledger."""
        return self.ledger.since(mark)

    def stats_since(self, mark: int) -> dict[str, float]:
        """Uniform summary of only the records appended since ``mark``."""
        return self.ledger.since(mark).summary()

    def reset_stats(self) -> None:
        self.ledger.clear()

    # -- lifecycle -------------------------------------------------------- #

    def close(self) -> None:
        """Release any workers/resources the backend holds.

        A no-op by default; the pool backends override it. Closing must
        leave the backend usable (pools reopen on next use), so callers
        can close eagerly without tracking state.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
