"""Execution backends: where compiled plans run.

The planner produces metadata-only :class:`~repro.core.planner.Plan`
objects; :mod:`repro.session` compiles them into backend-neutral schedules;
the backends here execute those schedules:

* :class:`SequentialBackend` — single-process numpy (the reference path);
* :class:`SimClusterBackend` — the ``repro.dist`` engine on a virtual
  cluster with exact communication-volume accounting;
* :class:`ThreadedBackend` — shared-memory block parallelism over a thread
  pool (BLAS releases the GIL), the first real-parallel path.

``get_backend`` resolves a backend from a name or passes instances through.
"""

from __future__ import annotations

from repro.backends.base import ExecutionBackend
from repro.backends.schedule import (
    Step,
    check_factors,
    compile_core_steps,
    compile_tree_steps,
    run_core_steps,
    run_tree_steps,
)
from repro.backends.sequential import SequentialBackend
from repro.backends.simcluster import SimClusterBackend
from repro.backends.threaded import ThreadedBackend

#: resolvable backend names, in documentation order.
BACKEND_NAMES = ("sequential", "simcluster", "threaded")


def get_backend(
    spec: str | ExecutionBackend,
    *,
    cluster=None,
    n_procs: int | None = None,
    machine=None,
) -> ExecutionBackend:
    """Resolve ``spec`` into an :class:`ExecutionBackend`.

    Accepts an instance (returned as-is), or one of the names in
    :data:`BACKEND_NAMES`. ``cluster``/``n_procs``/``machine`` configure a
    freshly built :class:`SimClusterBackend`; ``n_procs`` caps the worker
    count of a fresh :class:`ThreadedBackend`.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec == "sequential":
        return SequentialBackend()
    if spec == "simcluster":
        if cluster is None and n_procs is None:
            raise ValueError(
                "backend 'simcluster' needs a cluster= or n_procs="
            )
        return SimClusterBackend(cluster, n_procs=n_procs, machine=machine)
    if spec == "threaded":
        return ThreadedBackend(n_workers=n_procs)
    raise ValueError(
        f"unknown backend {spec!r}; expected one of {BACKEND_NAMES} "
        f"or an ExecutionBackend instance"
    )


__all__ = [
    "ExecutionBackend",
    "SequentialBackend",
    "SimClusterBackend",
    "ThreadedBackend",
    "BACKEND_NAMES",
    "get_backend",
    "Step",
    "check_factors",
    "compile_tree_steps",
    "compile_core_steps",
    "run_tree_steps",
    "run_core_steps",
]
