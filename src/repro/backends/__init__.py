"""Execution backends: where compiled plans run.

The planner produces metadata-only :class:`~repro.core.planner.Plan`
objects; :mod:`repro.session` compiles them into backend-neutral schedules;
the backends here execute those schedules:

* :class:`SequentialBackend` — single-process numpy (the reference path);
* :class:`SimClusterBackend` — the ``repro.dist`` engine on a virtual
  cluster with exact communication-volume accounting;
* :class:`ThreadedBackend` — shared-memory block parallelism over a thread
  pool (BLAS releases the GIL);
* :class:`ProcessPoolBackend` — true multi-core block parallelism over a
  process pool with ``shared_memory``-backed tensor blocks.

``get_backend`` resolves a backend from a name or passes instances through;
``backend="auto"`` (a session-level spec, see :mod:`repro.backends.select`)
picks one adaptively from the input's metadata. A backend that cannot
serve a configuration raises :class:`BackendUnavailableError`.
"""

from __future__ import annotations

from repro.backends.base import ExecutionBackend
from repro.backends.errors import BackendUnavailableError
from repro.backends.procpool import ProcessPoolBackend
from repro.backends.schedule import (
    Step,
    check_factors,
    compile_core_steps,
    compile_tree_steps,
    run_core_steps,
    run_tree_steps,
)
from repro.backends.select import (
    AUTO_CANDIDATES,
    STORAGE_MODES,
    Selection,
    StorageSelection,
    calibrate,
    default_profile,
    load_profile,
    merge_profile,
    profile_from_trace,
    save_profile,
    select_backend,
    select_storage,
)
from repro.backends.sequential import SequentialBackend
from repro.backends.simcluster import SimClusterBackend
from repro.backends.threaded import ThreadedBackend

#: resolvable backend names, in documentation order.
BACKEND_NAMES = ("sequential", "simcluster", "threaded", "procpool")

#: the session-level adaptive spec (not itself a backend).
AUTO_BACKEND = "auto"


def get_backend(
    spec: str | ExecutionBackend,
    *,
    cluster=None,
    n_procs: int | None = None,
    machine=None,
) -> ExecutionBackend:
    """Resolve ``spec`` into an :class:`ExecutionBackend`.

    Accepts an instance (returned as-is), or one of the names in
    :data:`BACKEND_NAMES`. ``cluster``/``n_procs``/``machine`` configure a
    freshly built :class:`SimClusterBackend`; ``n_procs`` caps the worker
    count of a fresh :class:`ThreadedBackend` or
    :class:`ProcessPoolBackend`. ``"auto"`` is resolved by
    :class:`~repro.session.TuckerSession` (selection needs the input's
    metadata) and is rejected here with a pointer.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec == AUTO_BACKEND:
        raise ValueError(
            "backend 'auto' is resolved per input by TuckerSession; "
            "construct TuckerSession(backend='auto') instead of calling "
            "get_backend('auto')"
        )
    if spec == "sequential":
        return SequentialBackend()
    if spec == "simcluster":
        if cluster is None and n_procs is None:
            raise BackendUnavailableError(
                "needs a cluster= or n_procs=", backend="simcluster"
            )
        return SimClusterBackend(cluster, n_procs=n_procs, machine=machine)
    if spec == "threaded":
        return ThreadedBackend(n_workers=n_procs)
    if spec == "procpool":
        return ProcessPoolBackend(n_workers=n_procs)
    raise ValueError(
        f"unknown backend {spec!r}; expected one of {BACKEND_NAMES} "
        f"or an ExecutionBackend instance"
    )


__all__ = [
    "ExecutionBackend",
    "BackendUnavailableError",
    "SequentialBackend",
    "SimClusterBackend",
    "ThreadedBackend",
    "ProcessPoolBackend",
    "BACKEND_NAMES",
    "AUTO_BACKEND",
    "AUTO_CANDIDATES",
    "STORAGE_MODES",
    "Selection",
    "StorageSelection",
    "select_storage",
    "calibrate",
    "default_profile",
    "load_profile",
    "merge_profile",
    "profile_from_trace",
    "save_profile",
    "select_backend",
    "get_backend",
    "Step",
    "check_factors",
    "compile_tree_steps",
    "compile_core_steps",
    "run_tree_steps",
    "run_core_steps",
]
