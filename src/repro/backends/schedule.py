"""Backend-neutral execution schedules.

Planning (TTM-tree + grid DP) and execution are decoupled in the paper; the
schedule is the artifact that crosses the boundary. A tree or chain is
*compiled once* into a flat tuple of :class:`Step` ops — regrid / ttm / svd
/ free over named slots — and the two tiny interpreters here replay that
program against any :class:`~repro.backends.base.ExecutionBackend`. The
depth-first slot discipline keeps at most ``depth`` intermediates alive,
the in-order bound of section 3.1; ledger tags are reconstructed as
``{prefix}:{step.tag}`` so executed volumes aggregate exactly as before
(``hooi:ttm:n3``, ``hooi:regrid:n7``, ``hooi:svd:m2``, ``core:ttm1``...).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.backends import sketch as rsk
from repro.backends.base import ExecutionBackend
from repro.core.meta import TensorMeta
from repro.core.trees import Node, TTMTree
from repro.tensor.unfold import unfold
from repro.util.dtypes import as_float

#: slot name of the schedule's input tensor.
ROOT_SLOT = "root"

#: the randomized methods the schedule layer can compile.
RAND_METHODS = ("rsthosvd", "sp-rsthosvd")


@dataclass(frozen=True)
class Step:
    """One op of a compiled schedule.

    ``op`` is one of ``"regrid"`` (src -> dst on ``grid``), ``"ttm"``
    (src -> dst along ``mode`` by the mode's factor transpose), ``"svd"``
    (read src, emit the mode-``mode`` rank-``k`` factor), ``"sketch"``
    (randomized range-finder for ``mode`` with oversampling ``p`` and
    ``q`` power iterations), ``"spsketch"`` (every single-pass sketch in
    one step) or ``"free"`` (drop src). ``tag`` is the ledger tag
    suffix.
    """

    op: str
    src: str
    dst: str = ""
    mode: int = -1
    k: int = 0
    grid: tuple[int, ...] = ()
    tag: str = ""
    p: int = 0
    q: int = 0


def check_factors(
    factors: Sequence[np.ndarray],
    meta: TensorMeta,
    dtype=None,
) -> list[np.ndarray]:
    """Validate factor shapes against ``meta``; cast to the working dtype."""
    factors = [as_float(f, dtype) for f in factors]
    if len(factors) != meta.ndim:
        raise ValueError(f"need {meta.ndim} factors, got {len(factors)}")
    for n, f in enumerate(factors):
        if f.shape != (meta.dims[n], meta.core[n]):
            raise ValueError(
                f"factor {n} has shape {f.shape}, expected "
                f"{(meta.dims[n], meta.core[n])}"
            )
    return factors


# --------------------------------------------------------------------- #
# compilation
# --------------------------------------------------------------------- #


def compile_tree_steps(
    tree: TTMTree, meta: TensorMeta, scheme=None
) -> tuple[Step, ...]:
    """Compile one HOOI invocation's TTM component + SVDs.

    With a grid ``scheme`` each TTM child is preceded by a regrid onto its
    assigned grid (each child regrids its own copy of the parent's output,
    matching the model's per-child ``|In(u)|`` charge); without one the
    schedule is grid-free and runs on any backend's native layout.
    """
    steps: list[Step] = []

    def visit(node: Node, slot: str) -> None:
        for child in node.children:
            if child.kind == "ttm":
                src = slot
                if scheme is not None:
                    src = f"n{child.uid}:in"
                    steps.append(
                        Step(
                            op="regrid",
                            src=slot,
                            dst=src,
                            grid=tuple(scheme.grid_of(child.uid)),
                            tag=f"regrid:n{child.uid}",
                        )
                    )
                out = f"n{child.uid}"
                steps.append(
                    Step(
                        op="ttm",
                        src=src,
                        dst=out,
                        mode=child.mode,
                        tag=f"ttm:n{child.uid}",
                    )
                )
                if src != slot:
                    steps.append(Step(op="free", src=src))
                visit(child, out)
                steps.append(Step(op="free", src=out))
            else:
                steps.append(
                    Step(
                        op="svd",
                        src=slot,
                        mode=child.mode,
                        k=meta.core[child.mode],
                        tag=f"svd:m{child.mode}",
                    )
                )

    visit(tree.root, ROOT_SLOT)
    return tuple(steps)


def compile_core_steps(
    order: Sequence[int],
    core_scheme: Sequence[Sequence[int]] | None = None,
) -> tuple[Step, ...]:
    """Compile the new-core chain ``G~ = T x F~^T ...`` in ``order``.

    With ``core_scheme`` (one grid per chain position) the tensor is
    regridded ahead of the steps that ask for it — the dynamic algorithm's
    path-DP gridding. Tags follow the legacy layout (``regrid{i}``,
    ``ttm{mode}``) so existing ledger aggregations keep working.
    """
    steps: list[Step] = []
    slot = ROOT_SLOT
    for i, mode in enumerate(order):
        if core_scheme is not None:
            dst = f"core:g{i}"
            steps.append(
                Step(
                    op="regrid",
                    src=slot,
                    dst=dst,
                    grid=tuple(core_scheme[i]),
                    tag=f"regrid{i}",
                )
            )
            if slot != ROOT_SLOT:
                steps.append(Step(op="free", src=slot))
            slot = dst
        out = f"core:{i}"
        steps.append(
            Step(op="ttm", src=slot, dst=out, mode=mode, tag=f"ttm{mode}")
        )
        if slot != ROOT_SLOT:
            steps.append(Step(op="free", src=slot))
        slot = out
    return tuple(steps)


def compile_rand_steps(
    order: Sequence[int],
    meta: TensorMeta,
    *,
    method: str,
    oversample: int = 5,
    power_iters: int = 0,
) -> tuple[Step, ...]:
    """Compile a randomized initialization into Step ops.

    ``rsthosvd`` is sequentially truncated: per mode (in STHOSVD order)
    one ``sketch`` step finds the range, then a ``ttm`` truncates the
    working tensor before the next mode is sketched — so later sketches
    run on already-shrunk data, the same win the exact path gets.
    ``sp-rsthosvd`` is one ``spsketch`` step: every mode sketch plus the
    core sketch accumulate in a single pass over the input, which is
    never modified (HOSVD-style, no sequential truncation).
    """
    if method not in RAND_METHODS:
        raise ValueError(
            f"method must be one of {RAND_METHODS}, got {method!r}"
        )
    oversample = int(oversample)
    power_iters = int(power_iters)
    if oversample < 0:
        raise ValueError(f"oversample must be >= 0, got {oversample}")
    if power_iters < 0:
        raise ValueError(f"power_iters must be >= 0, got {power_iters}")
    if method == "sp-rsthosvd":
        return (
            Step(op="spsketch", src=ROOT_SLOT, p=oversample, tag="sketch"),
        )
    steps: list[Step] = []
    slot = ROOT_SLOT
    for i, mode in enumerate(order):
        steps.append(
            Step(
                op="sketch",
                src=slot,
                mode=mode,
                k=meta.core[mode],
                p=oversample,
                q=power_iters,
                tag=f"sketch:m{mode}",
            )
        )
        out = f"rand:{i}"
        steps.append(
            Step(op="ttm", src=slot, dst=out, mode=mode, tag=f"ttm{mode}")
        )
        if slot != ROOT_SLOT:
            steps.append(Step(op="free", src=slot))
        slot = out
    return tuple(steps)


# --------------------------------------------------------------------- #
# interpretation
# --------------------------------------------------------------------- #


def run_tree_steps(
    backend: ExecutionBackend,
    handle,
    factors: Sequence[np.ndarray],
    steps: Sequence[Step],
    *,
    tag: str = "hooi",
    method: str = "gram",
    workspace: dict[int, np.ndarray] | None = None,
) -> dict[int, np.ndarray]:
    """Replay a tree schedule; returns ``{mode: new factor}``.

    ``factors`` are the *current* factor matrices (TTM steps multiply by
    their transposes, as Figure 2 specifies). ``workspace`` optionally maps
    modes to preallocated Gram buffers.
    """
    slots = {ROOT_SLOT: handle}
    new_factors: dict[int, np.ndarray] = {}
    for step in steps:
        full_tag = f"{tag}:{step.tag}" if step.tag else tag
        if step.op == "regrid":
            slots[step.dst] = backend.regrid(
                slots[step.src], step.grid, tag=full_tag
            )
        elif step.op == "ttm":
            slots[step.dst] = backend.ttm(
                slots[step.src], factors[step.mode].T, step.mode, tag=full_tag
            )
        elif step.op == "svd":
            out = workspace.get(step.mode) if workspace else None
            new_factors[step.mode] = backend.leading_factor(
                slots[step.src],
                step.mode,
                step.k,
                tag=full_tag,
                method=method,
                out=out,
            )
        elif step.op == "free":
            slots.pop(step.src, None)
        else:  # pragma: no cover - compile emits only the four ops
            raise AssertionError(f"unknown step op {step.op!r}")
    return new_factors


def run_rand_steps(
    backend: ExecutionBackend,
    handle,
    steps: Sequence[Step],
    meta: TensorMeta,
    *,
    rng: np.random.Generator,
    dtype,
    tag: str = "sketch",
):
    """Replay a randomized schedule against any backend.

    Returns ``(factors, final_handle, t_norm_sq, core)`` where
    ``factors`` maps modes to extracted factor matrices, ``final_handle``
    is the working tensor after all truncations (for ``rsthosvd`` it
    *is* the core), ``t_norm_sq`` is the input's squared Frobenius norm
    (a free by-product of the first sketch pass), and ``core`` is the
    host-side solved core for ``sp-rsthosvd`` (``None`` otherwise).

    Test matrices are drawn from ``rng`` host-side at each step's
    then-current dims, so every backend contracts identical Gaussians
    and seed-determinism holds per backend.
    """
    slots = {ROOT_SLOT: handle}
    factors: dict[int, np.ndarray] = {}
    t_norm_sq: float | None = None
    current = handle
    core: np.ndarray | None = None
    for step in steps:
        full_tag = f"{tag}:{step.tag}" if step.tag else tag
        if step.op == "sketch":
            src = slots[step.src]
            dims = backend.shape(src)
            spec = rsk.mode_sketch_spec(
                rng, dims, step.mode, step.k, step.p, dtype
            )
            (w,), norm_sq = backend.sketch(src, [spec], tag=full_tag)
            if t_norm_sq is None:
                t_norm_sq = norm_sq
            w_mat = unfold(w, step.mode)
            for j in range(step.q):
                q_mat = rsk.orthonormal_cols(w_mat)
                z = backend.ttm(
                    src,
                    np.ascontiguousarray(q_mat.T),
                    step.mode,
                    tag=f"{full_tag}:power{j}",
                )
                w_mat = backend.cross_gram(
                    src, z, step.mode, tag=f"{full_tag}:power{j}:xgram"
                )
                del z
            factors[step.mode] = rsk.factor_from_matrix(w_mat, step.k)
        elif step.op == "spsketch":
            src = slots[step.src]
            dims = backend.shape(src)
            specs = rsk.single_pass_specs(rng, dims, meta.core, step.p, dtype)
            sketches, t_norm_sq = backend.sketch(src, specs, tag=full_tag)
            for n in range(len(dims)):
                factors[n] = rsk.factor_from_matrix(
                    unfold(sketches[n], n), meta.core[n]
                )
            core = rsk.solve_core(
                sketches[-1],
                specs[-1],
                [factors[n] for n in range(len(dims))],
            )
        elif step.op == "ttm":
            current = backend.ttm(
                slots[step.src], factors[step.mode].T, step.mode, tag=full_tag
            )
            slots[step.dst] = current
        elif step.op == "free":
            slots.pop(step.src, None)
        else:  # pragma: no cover - compile emits only these ops
            raise AssertionError(
                f"unexpected step op {step.op!r} in randomized schedule"
            )
    return factors, current, float(t_norm_sq), core


def run_core_steps(
    backend: ExecutionBackend,
    handle,
    factors: Sequence[np.ndarray],
    steps: Sequence[Step],
    *,
    tag: str = "core",
):
    """Replay a core-chain schedule; returns the final (core) handle.

    ``factors`` are the *new* factor matrices indexed by mode.
    """
    slots = {ROOT_SLOT: handle}
    current = handle
    for step in steps:
        full_tag = f"{tag}:{step.tag}" if step.tag else tag
        if step.op == "regrid":
            current = backend.regrid(slots[step.src], step.grid, tag=full_tag)
            slots[step.dst] = current
        elif step.op == "ttm":
            current = backend.ttm(
                slots[step.src], factors[step.mode].T, step.mode, tag=full_tag
            )
            slots[step.dst] = current
        elif step.op == "free":
            slots.pop(step.src, None)
        else:  # pragma: no cover - core schedules hold regrid/ttm/free only
            raise AssertionError(f"unexpected step op {step.op!r} in core chain")
    return current
