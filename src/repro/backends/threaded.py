"""Shared-memory threaded backend — the first real-parallel path.

Handles are plain ndarrays living in shared memory; each kernel partitions
its work over the same near-even block ranges the distributed engine uses
(:func:`repro.dist.blocks.block_ranges`) and fans the blocks out to a
thread pool. NumPy releases the GIL inside BLAS, so the per-block dgemms
genuinely overlap. Determinism is preserved by construction:

* TTM blocks write disjoint slices of a preallocated output (no reduction
  across threads at all);
* Gram partials and norm partials are summed in ascending block order, the
  same fixed-order discipline the virtual cluster uses.

Regridding is the identity (one address space) and no communication volume
is ever recorded — the honest ledger of a shared-memory machine.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.backends.blockpar import (
    block_slices,
    check_worker_count,
    gram_evd_flops,
    reduce_partials,
    split_mode,
)
from repro.backends.ockernels import (
    oc_cross_gram,
    oc_distribute,
    oc_gram,
    oc_norm_sq,
    oc_sketch,
    oc_ttm,
)
from repro.backends.sketch import (
    add_block_contribution,
    out_shape as sketch_out_shape,
    sketch_flops,
)
from repro.storage import StoredTensor
from repro.tensor.linalg import leading_eigvecs
from repro.tensor.ttm import ttm
from repro.tensor.unfold import unfold


class ThreadedBackend(ExecutionBackend):
    """Block-parallel execution over a thread pool.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to ``min(8, cpu_count - 1)``. Also the
        processor count plans default to, so planning granularity matches
        execution granularity.
    """

    name = "threaded"

    def __init__(self, n_workers: int | None = None) -> None:
        super().__init__()
        self._pool: ThreadPoolExecutor | None = None  # before any raise
        self.n_workers = check_worker_count(n_workers, self.name)

    @property
    def default_procs(self) -> int:
        return self.n_workers

    # -- pool lifecycle --------------------------------------------------- #

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-block"
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down; the backend stays usable (pool reopens)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadedBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # -- data placement -------------------------------------------------- #

    def distribute(self, tensor: np.ndarray, grid, *, store=None):
        if store is not None:
            return oc_distribute(tensor, store)
        return np.ascontiguousarray(tensor)

    def gather(self, handle) -> np.ndarray:
        if isinstance(handle, StoredTensor):
            return handle.open()
        return handle

    def shape(self, handle) -> tuple[int, ...]:
        return tuple(handle.shape)

    # -- out-of-core fan-out ---------------------------------------------- #

    def _oc_map(self, func, items) -> list:
        """Blocks over the pool, results in submission (ascending) order."""
        return list(self._executor().map(func, items))

    # -- kernels ---------------------------------------------------------- #

    def ttm(
        self, handle, matrix: np.ndarray, mode: int, *, tag="ttm"
    ) -> np.ndarray:
        start = perf_counter()
        if isinstance(handle, StoredTensor):
            out = oc_ttm(handle, matrix, mode, self.n_workers, self._oc_map)
            self.ledger.add_compute(
                op="gemm",
                tag=tag,
                flops=float(matrix.shape[0] * handle.size),
                seconds=perf_counter() - start,
            )
            return out
        split = split_mode(handle.shape, avoid=mode)
        if split is None:
            out = ttm(handle, matrix, mode)
        else:
            out_shape = (
                handle.shape[:mode]
                + (matrix.shape[0],)
                + handle.shape[mode + 1 :]
            )
            out = np.empty(
                out_shape, dtype=np.result_type(handle.dtype, matrix.dtype)
            )

            def work(sl: slice) -> None:
                index: list[slice] = [slice(None)] * handle.ndim
                index[split] = sl
                out[tuple(index)] = ttm(handle[tuple(index)], matrix, mode)

            slices = block_slices(handle.shape[split], self.n_workers)
            list(self._executor().map(work, slices))
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(matrix.shape[0] * handle.size),
            seconds=perf_counter() - start,
        )
        return out

    def leading_factor(
        self,
        handle,
        mode: int,
        k: int,
        *,
        tag: str = "svd",
        method: str = "gram",
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        if method != "gram":
            raise ValueError(
                f"ThreadedBackend only supports the Gram+EVD route, "
                f"got method={method!r}"
            )
        start = perf_counter()
        length = handle.shape[mode]
        if isinstance(handle, StoredTensor):
            g = oc_gram(handle, mode, self.n_workers, self._oc_map, out)
            g = (g + g.T) * 0.5
            factor = leading_eigvecs(g, k)
            self.ledger.add_compute(
                op="syrk",
                tag=tag,
                flops=float(gram_evd_flops(length, handle.size)),
                seconds=perf_counter() - start,
            )
            return factor
        split = split_mode(handle.shape, avoid=mode)
        if split is None:
            u = unfold(handle, mode)
            g = u @ u.T
        else:
            slices = block_slices(handle.shape[split], self.n_workers)

            def partial(sl: slice) -> np.ndarray:
                index: list[slice] = [slice(None)] * handle.ndim
                index[split] = sl
                u = unfold(handle[tuple(index)], mode)
                return u @ u.T

            partials = list(self._executor().map(partial, slices))
            g = reduce_partials(partials, length, out)
        g = (g + g.T) * 0.5
        flops = gram_evd_flops(length, handle.size)
        factor = leading_eigvecs(g, k)
        self.ledger.add_compute(
            op="syrk",
            tag=tag,
            flops=float(flops),
            seconds=perf_counter() - start,
        )
        return factor

    def sketch(self, handle, specs, *, tag="sketch"):
        start = perf_counter()
        if isinstance(handle, StoredTensor):
            sketches, norm_sq = oc_sketch(
                handle, specs, self.n_workers, self._oc_map
            )
        else:
            sketches, norm_sq = self._sketch_memory(handle, specs)
        flops = sum(sketch_flops(handle.shape, spec) for spec in specs)
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(flops) + float(handle.size),
            seconds=perf_counter() - start,
        )
        return sketches, norm_sq

    def _sketch_memory(self, handle, specs):
        """In-memory blocked sketch: per-block partials, ascending sum."""
        dims = tuple(handle.shape)
        full = tuple((0, int(d)) for d in dims)
        split = split_mode(dims, avoid=None)
        if split is None:
            return self._sketch_block(handle, specs, dims, full)
        slices = block_slices(dims[split], self.n_workers)

        def partial(sl: slice):
            index: list[slice] = [slice(None)] * handle.ndim
            index[split] = sl
            ranges = tuple(
                (sl.start, sl.stop) if m == split else full[m]
                for m in range(handle.ndim)
            )
            return self._sketch_block(handle[tuple(index)], specs, dims, ranges)

        results = list(self._executor().map(partial, slices))
        outs = [
            np.zeros(sketch_out_shape(handle.shape, spec), dtype=handle.dtype)
            for spec in specs
        ]
        norm_sq = 0.0
        for contribs, part in results:  # ascending block order
            for out, contrib in zip(outs, contribs):
                out += contrib
            norm_sq += part
        return outs, float(norm_sq)

    @staticmethod
    def _sketch_block(block, specs, dims, ranges):
        """One block's full-size sketch partials plus its norm partial."""
        block = np.ascontiguousarray(block)
        contribs = []
        for spec in specs:
            out = np.zeros(sketch_out_shape(dims, spec), dtype=block.dtype)
            add_block_contribution(out, block, spec, ranges)
            contribs.append(out)
        flat = block.reshape(-1)
        return contribs, float(np.dot(flat, flat))

    def cross_gram(self, handle, other, mode: int, *, tag="xgram"):
        start = perf_counter()
        if isinstance(handle, StoredTensor):
            g = oc_cross_gram(
                handle, other, mode, self.n_workers, self._oc_map
            )
        else:
            split = split_mode(handle.shape, avoid=mode)
            if split is None:
                g = unfold(handle, mode) @ unfold(other, mode).T
            else:
                slices = block_slices(handle.shape[split], self.n_workers)

                def partial(sl: slice) -> np.ndarray:
                    index: list[slice] = [slice(None)] * handle.ndim
                    index[split] = sl
                    ua = unfold(handle[tuple(index)], mode)
                    ub = unfold(other[tuple(index)], mode)
                    return ua @ ub.T

                partials = list(self._executor().map(partial, slices))
                g = reduce_partials(partials, handle.shape[mode])
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(other.shape[mode]) * float(handle.size),
            seconds=perf_counter() - start,
        )
        return g

    def regrid(self, handle, grid, *, tag="regrid"):
        return handle

    def fro_norm_sq(self, handle, *, tag="norm") -> float:
        if isinstance(handle, StoredTensor):
            return oc_norm_sq(handle, self.n_workers, self._oc_map)
        flat = handle.reshape(-1)
        slices = block_slices(flat.shape[0], self.n_workers)
        if len(slices) <= 1:
            return float(np.dot(flat, flat))

        def partial(sl: slice) -> float:
            piece = flat[sl]
            return float(np.dot(piece, piece))

        return float(sum(self._executor().map(partial, slices)))
