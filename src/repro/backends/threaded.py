"""Shared-memory threaded backend — the first real-parallel path.

Handles are plain ndarrays living in shared memory; each kernel partitions
its work over the same near-even block ranges the distributed engine uses
(:func:`repro.dist.blocks.block_ranges`) and fans the blocks out to a
thread pool. NumPy releases the GIL inside BLAS, so the per-block dgemms
genuinely overlap. Determinism is preserved by construction:

* TTM blocks write disjoint slices of a preallocated output (no reduction
  across threads at all);
* Gram partials and norm partials are summed in ascending block order, the
  same fixed-order discipline the virtual cluster uses.

Regridding is the identity (one address space) and no communication volume
is ever recorded — the honest ledger of a shared-memory machine.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.dist.blocks import block_ranges
from repro.tensor.linalg import leading_eigvecs
from repro.tensor.ttm import ttm
from repro.tensor.unfold import unfold
from repro.util.validation import check_positive_int


def _default_workers() -> int:
    return max(1, min(8, (os.cpu_count() or 2) - 1))


class ThreadedBackend(ExecutionBackend):
    """Block-parallel execution over a thread pool.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to ``min(8, cpu_count - 1)``. Also the
        processor count plans default to, so planning granularity matches
        execution granularity.
    """

    name = "threaded"

    def __init__(self, n_workers: int | None = None) -> None:
        super().__init__()
        self.n_workers = (
            _default_workers()
            if n_workers is None
            else check_positive_int(n_workers, "n_workers")
        )
        self._pool: ThreadPoolExecutor | None = None

    @property
    def default_procs(self) -> int:
        return self.n_workers

    # -- pool lifecycle --------------------------------------------------- #

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-block"
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down; the backend stays usable (pool reopens)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadedBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # -- block geometry --------------------------------------------------- #

    def _split_mode(self, shape: tuple[int, ...], avoid: int | None) -> int | None:
        """Mode to partition along: the longest mode other than ``avoid``."""
        candidates = [
            (length, m)
            for m, length in enumerate(shape)
            if m != avoid and length > 1
        ]
        if not candidates:
            return None
        return max(candidates)[1]

    def _block_slices(self, length: int) -> list[slice]:
        n_blocks = min(self.n_workers, length)
        return [slice(a, b) for a, b in block_ranges(length, n_blocks)]

    # -- data placement -------------------------------------------------- #

    def distribute(self, tensor: np.ndarray, grid) -> np.ndarray:
        return np.ascontiguousarray(tensor)

    def gather(self, handle: np.ndarray) -> np.ndarray:
        return handle

    def shape(self, handle: np.ndarray) -> tuple[int, ...]:
        return tuple(handle.shape)

    # -- kernels ---------------------------------------------------------- #

    def ttm(
        self, handle: np.ndarray, matrix: np.ndarray, mode: int, *, tag="ttm"
    ) -> np.ndarray:
        start = perf_counter()
        split = self._split_mode(handle.shape, avoid=mode)
        if split is None:
            out = ttm(handle, matrix, mode)
        else:
            out_shape = (
                handle.shape[:mode]
                + (matrix.shape[0],)
                + handle.shape[mode + 1 :]
            )
            out = np.empty(
                out_shape, dtype=np.result_type(handle.dtype, matrix.dtype)
            )

            def work(sl: slice) -> None:
                index: list[slice] = [slice(None)] * handle.ndim
                index[split] = sl
                out[tuple(index)] = ttm(handle[tuple(index)], matrix, mode)

            list(self._executor().map(work, self._block_slices(handle.shape[split])))
        self.ledger.add_compute(
            op="gemm",
            tag=tag,
            flops=float(matrix.shape[0] * handle.size),
            seconds=perf_counter() - start,
        )
        return out

    def leading_factor(
        self,
        handle: np.ndarray,
        mode: int,
        k: int,
        *,
        tag: str = "svd",
        method: str = "gram",
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        if method != "gram":
            raise ValueError(
                f"ThreadedBackend only supports the Gram+EVD route, "
                f"got method={method!r}"
            )
        start = perf_counter()
        length = handle.shape[mode]
        split = self._split_mode(handle.shape, avoid=mode)
        if split is None:
            u = unfold(handle, mode)
            g = u @ u.T
        else:
            slices = self._block_slices(handle.shape[split])

            def partial(sl: slice) -> np.ndarray:
                index: list[slice] = [slice(None)] * handle.ndim
                index[split] = sl
                u = unfold(handle[tuple(index)], mode)
                return u @ u.T

            partials = list(self._executor().map(partial, slices))
            # Fixed ascending-block reduction order (determinism).
            if out is not None and out.shape == (length, length) and (
                out.dtype == partials[0].dtype
            ):
                g = out
                g[...] = partials[0]
            else:
                g = partials[0].copy()
            for p in partials[1:]:
                g += p
        g = (g + g.T) * 0.5
        flops = (
            length * (length + 1) // 2 * (handle.size // length)
            + 4 * length**3 // 3
        )
        factor = leading_eigvecs(g, k)
        self.ledger.add_compute(
            op="syrk",
            tag=tag,
            flops=float(flops),
            seconds=perf_counter() - start,
        )
        return factor

    def regrid(self, handle: np.ndarray, grid, *, tag="regrid") -> np.ndarray:
        return handle

    def fro_norm_sq(self, handle: np.ndarray, *, tag="norm") -> float:
        flat = handle.reshape(-1)
        slices = self._block_slices(flat.shape[0])
        if len(slices) <= 1:
            return float(np.dot(flat, flat))

        def partial(sl: slice) -> float:
            piece = flat[sl]
            return float(np.dot(piece, piece))

        return float(sum(self._executor().map(partial, slices)))
