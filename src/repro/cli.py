"""Command-line interface: plan, decompose, inspect and model from the shell.

Subcommands
-----------
``plan``       plan one metadata instance and print (or save) the plan
``decompose``  actually decompose a tensor via the session API
``calibrate``  measure per-backend throughput; persist an auto-selection profile
``psi``        print the Table-1 grid counts for given P and N range
``trace``      inspect a saved run trace (``trace summarize out.json``)
``bench``      measure the committed performance baseline; gate regressions
``model``      model one HOOI invocation for every algorithm configuration
``suite``      print benchmark-suite statistics

Examples::

    python -m repro plan --dims 400,100,100,50,20 --core 80,80,10,40,10 -p 32
    python -m repro decompose --random 24,20,16 --core 6,5,4 --backend auto
    python -m repro decompose --input t.npy --core 8,6,5 --json
    python -m repro decompose --input huge.npy --core 8,6,5 --storage mmap
    python -m repro decompose --random 24,20,16 --core 6,5,4 --trace out.json
    python -m repro trace summarize out.json
    python -m repro bench --compare BENCH_baseline.json
    python -m repro batch --glob 'data/*.npy' --core 8,6,5 --memory-budget 2G
    python -m repro calibrate --out profile.json
    python -m repro psi -p 32 --n-min 5 --n-max 10
    python -m repro model --tensor SP -p 32
    python -m repro suite --ndim 5
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from collections.abc import Sequence

from repro.backends import AUTO_BACKEND, BACKEND_NAMES, STORAGE_MODES
from repro.backends import select as backend_select
from repro.storage import parse_bytes
from repro.bench.algorithms import ALGORITHMS, make_planner, paper_label
from repro.bench.report import ascii_table
from repro.bench.suite import REAL_TENSORS, benchmark_metas, real_tensor_meta
from repro.core.grids import psi
from repro.core.memory import plan_peak_bytes_per_rank
from repro.core.meta import TensorMeta
from repro.core.planner import Planner
from repro.hooi.model import predict
from repro.mpi.machine import MachineModel
from repro.session import TuckerSession


def _parse_ints(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _parse_bytes_arg(text: str) -> int:
    try:
        return parse_bytes(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_storage_args(p) -> None:
    p.add_argument(
        "--storage", default="auto", choices=STORAGE_MODES,
        help="where the working set lives: 'memory' (fully resident), "
        "'mmap' (spill to memory-mapped block files), or 'auto' "
        "(spill only when --memory-budget is exceeded; default)",
    )
    p.add_argument(
        "--memory-budget", type=_parse_bytes_arg, default=None,
        metavar="BYTES",
        help="resident-byte budget (suffixes ok: 512K, 2M, 1G); with "
        "--storage auto, inputs over the budget spill "
        "(default: $REPRO_MEMORY_BUDGET)",
    )
    p.add_argument(
        "--spill-dir", default=None, metavar="DIR",
        help="root directory for spill files "
        "(default: $REPRO_SPILL_DIR, else the system tempdir)",
    )
    p.add_argument(
        "--spill-codec", default="auto", metavar="CODEC",
        help="spill block encoding: 'auto' (raw unless a calibrated "
        "profile says compression pays; default), 'raw', 'zlib' / "
        "'zlib:LEVEL' (lossless), or 'narrow' (lossy float64->float32 "
        "with the realized error bound reported per run)",
    )


def _meta_from_args(args) -> TensorMeta:
    if getattr(args, "tensor", None):
        return real_tensor_meta(args.tensor)
    if not args.dims or not args.core:
        raise SystemExit("provide --tensor NAME or both --dims and --core")
    return TensorMeta(dims=args.dims, core=args.core)


def cmd_plan(args) -> int:
    meta = _meta_from_args(args)
    planner = Planner(args.procs, tree=args.tree, grid=args.grid)
    plan = planner.plan(meta)
    print(f"metadata: {meta}")
    print(f"tree: {args.tree} ({plan.tree.n_ttm_ops} TTMs), grid: {args.grid}")
    print(f"flops (TTM component):  {plan.flops:,}")
    print(f"TTM volume:             {plan.ttm_volume:,} elements")
    print(f"regrid volume:          {plan.regrid_volume:,} elements")
    print(f"initial grid:           {plan.initial_grid}")
    mem = plan_peak_bytes_per_rank(plan)
    print(f"peak memory per rank:   {mem['total'] / 2**30:.2f} GiB")
    if args.show_tree:
        print(plan.tree.pretty(meta))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(plan.to_json())
        print(f"plan written to {args.out}")
    return 0


def cmd_decompose(args) -> int:
    import numpy as np

    from repro.tensor.random import random_tensor

    if args.random is not None:
        tensor = random_tensor(args.random, seed=args.seed)
    elif args.input:
        # Lazy mapping: the file is never fully resident before its
        # blocks are cut — spilled runs read it in place.
        tensor = np.load(args.input, mmap_mode="r")
        if not isinstance(tensor, np.ndarray):
            raise SystemExit(
                f"{args.input} does not contain a single ndarray"
            )
    else:
        raise SystemExit("provide --input FILE.npy or --random DIMS")
    if not args.core:
        raise SystemExit("provide --core K1,K2,...")

    calibration = getattr(args, "calibration", None)
    if calibration is not None and args.backend != AUTO_BACKEND:
        raise SystemExit("--calibration requires --backend auto")
    try:
        session = TuckerSession(
            backend=args.backend, n_procs=args.procs, calibration=calibration,
            spill_codec=args.spill_codec, trace=bool(args.trace),
        )
    except ValueError as exc:  # bad profile path, bad codec, bad backend ...
        raise SystemExit(str(exc)) from None
    result = session.run(
        tensor,
        args.core,
        planner=args.planner,
        n_procs=args.procs,
        dtype=args.dtype,
        max_iters=args.max_iters,
        tol=args.tol,
        skip_hooi=args.skip_hooi,
        method=args.method,
        oversample=args.oversample,
        power_iters=args.power_iters,
        seed=args.seed,
        storage=args.storage,
        memory_budget=args.memory_budget,
        spill_dir=args.spill_dir,
    )
    stats = result.stats  # scoped to this run, even on a reused backend
    plan = result.plan
    if args.trace:
        result.trace.save(args.trace)
    payload = {
        "dims": list(tensor.shape),
        "core": list(result.decomposition.core_dims),
        "backend": result.backend,
        "dtype": result.decomposition.core.dtype.name,
        "planner": str(args.planner),
        "tree_kind": plan.tree_kind,
        "grid_kind": plan.grid_kind,
        "n_procs": plan.n_procs,
        "method": result.method,
        "sthosvd_error": result.sthosvd_error,
        "error": result.error,
        "n_iters": result.n_iters,
        "converged": result.converged,
        "stopped_reason": result.stopped_reason,
        "compression_ratio": result.compression_ratio,
        "from_cache": result.from_cache,
        "auto_selected": result.auto_selected,
        "selection_reason": result.selection_reason,
        "storage": result.storage,
        "storage_reason": result.storage_reason,
        "spill_codec": result.spill_codec,
        "spill_bytes_written": result.spill_bytes_written,
        "spill_bytes_logical": result.spill_bytes_logical,
        "spill_error_bound": result.spill_error_bound,
        "seconds": result.seconds,
        "ledger": stats,
    }
    if args.trace:
        payload["trace"] = args.trace
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"tensor:             {'x'.join(map(str, tensor.shape))} "
          f"-> {'x'.join(map(str, result.decomposition.core_dims))}")
    print(f"backend:            {result.backend} ({payload['dtype']})"
          + (" [auto]" if result.auto_selected else ""))
    if result.auto_selected and result.selection_reason:
        print(f"selected because:   {result.selection_reason}")
    if result.storage != "memory":
        print(f"storage:            {result.storage} "
              f"({result.storage_reason})")
        if result.spill_bytes_logical:
            ratio = result.spill_bytes_written / result.spill_bytes_logical
            bound = (
                f", error bound {result.spill_error_bound:.3e}"
                if result.spill_error_bound
                else ""
            )
            print(f"spill codec:        {result.spill_codec} "
                  f"({result.spill_bytes_written:,} of "
                  f"{result.spill_bytes_logical:,} logical bytes, "
                  f"ratio {ratio:.2f}{bound})")
    print(f"plan:               tree={plan.tree_kind}, grid={plan.grid_kind}, "
          f"P={plan.n_procs} (cache {'hit' if result.from_cache else 'miss'})")
    init_name = "sthosvd" if result.method == "exact" else result.method
    print(f"{init_name} error:".ljust(20) + f"{result.sthosvd_error:.6e}")
    stop = f", {result.stopped_reason}" if result.stopped_reason else ""
    print(f"final error:        {result.error:.6e} "
          f"({result.n_iters} HOOI iters{stop})")
    print(f"compression ratio:  {result.compression_ratio:.2f}x")
    print(f"ledger volume:      {stats['comm_volume']:,.0f} elements")
    print(f"ledger flops:       {stats['flops']:,.0f} multiply-adds")
    print(f"wall time:          {result.seconds:.3f}s")
    if args.trace:
        print(f"trace written to    {args.trace} "
              f"(chrome://tracing / ui.perfetto.dev, or "
              f"'repro trace summarize {args.trace}')")
    return 0


def _batch_paths(args) -> list[str]:
    """Resolve the batch input list from ``--glob`` and/or ``--manifest``.

    Manifest lines are one ``.npy`` path each (blank lines and ``#``
    comments skipped); relative paths resolve against the manifest's own
    directory, so a manifest travels with its data.
    """
    import glob as glob_mod
    import os

    paths: list[str] = []
    if args.glob:
        matched = sorted(glob_mod.glob(args.glob))
        if not matched:
            raise SystemExit(f"--glob {args.glob!r} matched no files")
        paths.extend(matched)
    if args.manifest:
        try:
            with open(args.manifest, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            raise SystemExit(f"cannot read manifest: {exc}") from None
        base = os.path.dirname(os.path.abspath(args.manifest))
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            paths.append(
                line if os.path.isabs(line) else os.path.join(base, line)
            )
    if not paths:
        raise SystemExit("provide --glob PATTERN and/or --manifest FILE")
    return paths


def cmd_batch(args) -> int:
    paths = _batch_paths(args)
    if not args.core:
        raise SystemExit("provide --core K1,K2,...")
    calibration = getattr(args, "calibration", None)
    if calibration is not None and args.backend != AUTO_BACKEND:
        raise SystemExit("--calibration requires --backend auto")
    try:
        session = TuckerSession(
            backend=args.backend, n_procs=args.procs, calibration=calibration,
            spill_codec=args.spill_codec, trace=bool(args.trace),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    try:
        batch = session.run_many(
            paths,
            args.core,
            planner=args.planner,
            n_procs=args.procs,
            dtype=args.dtype,
            max_iters=args.max_iters,
            tol=args.tol,
            skip_hooi=args.skip_hooi,
            max_in_flight=args.max_in_flight,
            on_error=args.on_error,
            storage=args.storage,
            memory_budget=args.memory_budget,
            spill_dir=args.spill_dir,
        )
    except (ValueError, OSError) as exc:  # bad item with --on-error raise
        raise SystemExit(str(exc)) from None
    finally:
        session.close()
    if args.trace:
        batch.trace.save(args.trace)
    aggregate = batch.stats()
    if args.json:
        payload = {
            "backend": args.backend,
            "core": list(args.core),
            "planner": str(args.planner),
            "max_in_flight": args.max_in_flight,
            **aggregate,
            "items": [
                {
                    "index": item.index,
                    "source": item.source,
                    "dims": list(item.result.plan.meta.dims),
                    "backend": item.backend,
                    "sthosvd_error": item.result.sthosvd_error,
                    "error": item.error,
                    "n_iters": item.result.n_iters,
                    "from_cache": item.from_cache,
                    "auto_selected": item.result.auto_selected,
                    "storage": item.result.storage,
                    "spill_codec": item.result.spill_codec,
                    "spill_bytes_written": item.result.spill_bytes_written,
                    "spill_bytes_logical": item.result.spill_bytes_logical,
                    "spill_error_bound": item.result.spill_error_bound,
                    "seconds": item.seconds,
                    "ledger": item.result.stats,
                }
                for item in batch.items
            ],
            "failures": [
                {
                    "index": failure.index,
                    "source": failure.source,
                    "error": failure.error,
                    "kind": failure.kind,
                }
                for failure in batch.failures
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if batch.failures else 0
    rows = [
        [
            str(item.index),
            item.source if len(item.source) <= 40 else "..." + item.source[-37:],
            "x".join(map(str, item.result.plan.meta.dims)),
            item.backend,
            f"{item.error:.3e}",
            str(item.result.n_iters),
            "hit" if item.from_cache else "miss",
            f"{item.seconds:.3f}s",
        ]
        for item in batch.items
    ]
    print(ascii_table(
        ["#", "source", "dims", "backend", "error", "iters", "plan", "time"],
        rows,
    ))
    for failure in batch.failures:
        print(f"FAILED #{failure.index} {failure.source}: {failure.error}")
    print(f"{batch.n_items} item(s) in {batch.seconds:.3f}s "
          f"({batch.items_per_second:.2f} items/s), "
          f"{len(batch.failures)} failure(s)")
    print(f"plans compiled:     {batch.plans_compiled} "
          f"({batch.cache_hits} cache hit(s))")
    print(f"ledger volume:      {aggregate['comm_volume']:,.0f} elements")
    print(f"ledger flops:       {aggregate['flops']:,.0f} multiply-adds")
    if args.trace:
        print(f"trace written to    {args.trace}")
    return 1 if batch.failures else 0


def cmd_serve(args) -> int:
    from repro.serve import TuckerServer, serve_socket, serve_stdio

    try:
        server = TuckerServer(
            workers=args.workers,
            backend=args.backend,
            n_procs=args.procs,
            planner=args.planner,
            memory_budget=args.memory_budget,
            max_queue=args.max_queue,
            storage=args.storage,
            spill_dir=args.spill_dir,
            spill_codec=args.spill_codec,
            prefetch=not args.no_prefetch,
            deadline=args.deadline,
            trace=bool(args.trace),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    try:
        if args.socket:
            stats = serve_socket(server, args.socket)
        else:
            stats = serve_stdio(server)
    except KeyboardInterrupt:
        server.drain()
        stats = server.stats_snapshot()
    if args.trace:
        trace = server.merged_trace()
        if trace is not None:
            trace.save(args.trace)
    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2, sort_keys=True)
            fh.write("\n")
    failed = float(stats.get("failed", 0)) if stats else 0.0
    return 1 if failed else 0


def cmd_calibrate(args) -> int:
    try:
        profile = backend_select.calibrate(
            dims=args.dims or (48, 40, 32),
            core=args.core or (8, 8, 8),
            repeats=args.repeats,
            n_procs=args.procs,
            seed=args.seed,
            storage_probe=not args.no_storage_probe,
        )
        path = backend_select.save_profile(profile, args.out)
    except (ValueError, OSError) as exc:  # bad probe args, unwritable --out
        raise SystemExit(str(exc)) from None
    if args.json:
        print(json.dumps({"path": path, "profile": profile}, indent=2,
                         sort_keys=True))
        return 0
    measured = set(profile.get("measured", ()))
    rows = [
        [
            name,
            f"{params['rate'] / 1e9:.2f}G",
            f"{params['startup'] * 1e3:.1f}ms",
            f"{params['per_task'] * 1e6:.0f}us",
            f"{params['efficiency']:.2f}",
            "measured" if name in measured else "default",
        ]
        for name, params in sorted(profile["backends"].items())
    ]
    print(ascii_table(
        ["backend", "rate (madds/s)", "startup", "per task", "efficiency",
         "source"],
        rows,
    ))
    if not args.no_storage_probe:
        storage = profile.get("storage", {})

        def _rate(key):
            value = storage.get(key)
            return "-" if value is None else f"{value / 1e6:.0f}M/s"

        storage_rows = [
            ["raw", _rate("spill_write_bytes_per_s"),
             _rate("spill_read_bytes_per_s"), "1.00"],
            ["zlib", _rate("zlib_encode_bytes_per_s"),
             _rate("zlib_decode_bytes_per_s"),
             f"{storage.get('zlib_ratio', 1.0):.2f}"],
            ["narrow", _rate("narrow_encode_bytes_per_s"),
             _rate("narrow_decode_bytes_per_s"), "0.50"],
        ]
        print(ascii_table(
            ["spill codec", "encode/write", "decode/read", "ratio"],
            storage_rows,
        ))
        chunk = storage.get("spill_chunk_bytes")
        if chunk:
            print(f"spill chunk size:   {int(chunk):,} bytes")
    print(f"profile written to {path}")
    print("auto-selection sessions pick it up via "
          "TuckerSession(backend='auto')")
    return 0


def cmd_trace_summarize(args) -> int:
    from repro.obs import format_summary, load_trace, summarize

    try:
        trace = load_trace(args.path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load trace {args.path!r}: {exc}") from None
    rows = summarize(trace)
    if args.json:
        print(json.dumps({"meta": {k: v for k, v in trace.meta.items()
                                   if k != "metrics"},
                          "rows": rows}, indent=2, sort_keys=True,
                         default=str))
        return 0
    meta = trace.meta
    title = None
    if meta.get("dims"):
        title = (
            f"{'x'.join(map(str, meta['dims']))} -> "
            f"{'x'.join(map(str, meta.get('core', ())))} "
            f"on {meta.get('backend', '?')}"
        )
    print(format_summary(rows, title=title))
    return 0


def cmd_bench(args) -> int:
    from repro.bench import baseline as bl

    doc = bl.measure_baseline(repeats=args.repeats)
    if args.out:
        bl.save_baseline(doc, args.out)
    if args.compare:
        try:
            base = bl.load_baseline(args.compare)
            ok, rows = bl.compare(doc, base, tolerance=args.tolerance)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"bench compare failed: {exc}") from None
        if args.json:
            print(json.dumps({"ok": ok, "rows": rows, "current": doc},
                             indent=2, sort_keys=True))
        else:
            def fmt(x):
                return "-" if x is None else f"{x:.3e}"

            print(ascii_table(
                ["case", "status", "baseline", "current", "ratio"],
                [[r["case"], r["status"], fmt(r["baseline"]),
                  fmt(r["current"]),
                  "-" if r["ratio"] is None else f"{r['ratio']:.2f}x"]
                 for r in rows],
            ))
            print("bench gate:", "ok" if ok else
                  f"REGRESSION (>{args.tolerance:.0%} drop)")
        return 0 if ok else 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(ascii_table(
            ["case", "seconds", "normalized"],
            [[name, f"{c['seconds']:.3f}", f"{c['normalized']:.3e}"]
             for name, c in sorted(doc["cases"].items())],
        ))
        print(f"gemm rate: {doc['gemm_rate'] / 1e9:.2f}G madds/s")
        if args.out:
            print(f"baseline written to {args.out}")
    return 0


def cmd_psi(args) -> int:
    ns = list(range(args.n_min, args.n_max + 1))
    rows = [[f"P={args.procs}"] + [psi(args.procs, n) for n in ns]]
    print(ascii_table(["P \\ N"] + [str(n) for n in ns], rows))
    return 0


#: planning goes through the session layer so repeated CLI invocations in
#: one process (and the model loop below) share the compiled-plan cache.
_planning_session = TuckerSession(backend="sequential", cache_size=64)


def cmd_model(args) -> int:
    meta = _meta_from_args(args)
    machine = MachineModel.bgq_like()
    rows = []
    for name in ALGORITHMS:
        plan = _planning_session.compile(
            meta, planner=make_planner(name, args.procs)
        ).plan
        rep = predict(plan, machine)
        rows.append(
            [
                paper_label(name),
                f"{plan.flops / 1e9:.1f}G",
                f"{plan.total_volume / 1e6:.1f}M",
                f"{rep.ttm_compute_seconds:.3f}",
                f"{rep.ttm_comm_seconds:.3f}",
                f"{rep.svd_seconds:.3f}",
                f"{rep.total_seconds:.3f}",
            ]
        )
    print(f"metadata: {meta}   P = {args.procs}")
    print(
        ascii_table(
            ["alg", "flops", "volume", "comp s", "comm s", "svd s", "total s"],
            rows,
        )
    )
    return 0


def cmd_suite(args) -> int:
    metas = benchmark_metas(args.ndim)
    cards = [m.cardinality for m in metas]
    print(f"{args.ndim}-D canonical suite: {len(metas)} tensors")
    print(f"cardinality range: {min(cards):,} .. {max(cards):,}")
    print(f"real tensors available: {', '.join(REAL_TENSORS)}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import LintConfig, run_lint

    config = None
    if args.config:
        config = LintConfig.load_file(args.config)
    try:
        report = run_lint(
            args.paths,
            config=config,
            rules=args.rule or None,
        )
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        suppressed = len(report.suppressed)
        status = "clean" if report.ok else (
            f"{len(report.findings)} finding"
            f"{'s' if len(report.findings) != 1 else ''}"
        )
        print(
            f"repro lint: {report.files} files, {status}"
            + (f" ({suppressed} suppressed)" if suppressed else "")
        )
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Tucker decomposition planner/model "
        "(Chakaravarthy et al., IPDPS 2017 reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log to stderr: -v for INFO, -vv for DEBUG "
        "(the library is silent by default)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_meta_args(p):
        p.add_argument("--dims", type=_parse_ints, help="L1,L2,...")
        p.add_argument("--core", type=_parse_ints, help="K1,K2,...")
        p.add_argument(
            "--tensor", help=f"real tensor name ({', '.join(REAL_TENSORS)})"
        )
        p.add_argument("-p", "--procs", type=int, default=32)

    p_plan = sub.add_parser("plan", help="plan one metadata instance")
    add_meta_args(p_plan)
    p_plan.add_argument("--tree", default="optimal")
    p_plan.add_argument("--grid", default="dynamic")
    p_plan.add_argument("--show-tree", action="store_true")
    p_plan.add_argument("--out", help="write the plan JSON here")
    p_plan.set_defaults(func=cmd_plan)

    p_dec = sub.add_parser(
        "decompose", help="decompose a tensor via the session API"
    )
    p_dec.add_argument("--input", help="load the tensor from this .npy file")
    p_dec.add_argument(
        "--random", type=_parse_ints, metavar="DIMS",
        help="generate a random tensor with these dims (L1,L2,...)",
    )
    p_dec.add_argument("--core", type=_parse_ints, help="K1,K2,...")
    p_dec.add_argument(
        "--backend",
        default="sequential",
        choices=BACKEND_NAMES + (AUTO_BACKEND,),
        help="execution backend, or 'auto' for input-adaptive selection",
    )
    p_dec.add_argument(
        "--calibration",
        help="calibration profile JSON for --backend auto "
        "(default: the persisted machine profile)",
    )
    p_dec.add_argument(
        "--planner", default="portfolio",
        help="'portfolio' or a tree kind (optimal, chain-k, ...)",
    )
    p_dec.add_argument("-p", "--procs", type=int, default=8)
    p_dec.add_argument(
        "--dtype", default=None, choices=["float32", "float64"],
        help="working precision (default: keep float32/float64 inputs)",
    )
    p_dec.add_argument("--max-iters", type=int, default=10)
    p_dec.add_argument("--tol", type=float, default=1e-8)
    p_dec.add_argument("--skip-hooi", action="store_true")
    p_dec.add_argument(
        "--method",
        choices=("exact", "rsthosvd", "sp-rsthosvd"),
        default="exact",
        help="initialization: exact STHOSVD (default), randomized "
             "range-finder STHOSVD, or single-pass sketched STHOSVD",
    )
    p_dec.add_argument(
        "--oversample", type=int, default=5,
        help="extra sketch columns beyond the target rank (randomized "
             "methods)",
    )
    p_dec.add_argument(
        "--power-iters", type=int, default=0,
        help="power iterations sharpening each randomized range finder",
    )
    p_dec.add_argument(
        "--seed", type=int, default=0,
        help="seed for --random inputs and for the randomized methods' "
             "test matrices",
    )
    _add_storage_args(p_dec)
    p_dec.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the run and write it here as a "
        "Chrome trace-event file (.jsonl extension selects JSON-lines); "
        "inspect with 'repro trace summarize PATH' or ui.perfetto.dev",
    )
    p_dec.add_argument("--json", action="store_true")
    p_dec.set_defaults(func=cmd_decompose)

    p_batch = sub.add_parser(
        "batch",
        help="decompose a stream of .npy tensors through one warm session",
    )
    p_batch.add_argument(
        "--glob", help="shell glob of .npy inputs (e.g. 'data/*.npy')"
    )
    p_batch.add_argument(
        "--manifest",
        help="text file listing one .npy path per line (# comments; "
        "relative paths resolve against the manifest's directory)",
    )
    p_batch.add_argument("--core", type=_parse_ints, help="K1,K2,...")
    p_batch.add_argument(
        "--backend",
        default=AUTO_BACKEND,
        choices=BACKEND_NAMES + (AUTO_BACKEND,),
        help="execution backend; 'auto' (default) re-selects per item",
    )
    p_batch.add_argument(
        "--calibration",
        help="calibration profile JSON for --backend auto",
    )
    p_batch.add_argument(
        "--planner", default="portfolio",
        help="'portfolio' or a tree kind (optimal, chain-k, ...)",
    )
    p_batch.add_argument("-p", "--procs", type=int, default=None)
    p_batch.add_argument(
        "--dtype", default=None, choices=["float32", "float64"],
        help="working precision (default: keep float32/float64 inputs)",
    )
    p_batch.add_argument("--max-iters", type=int, default=10)
    p_batch.add_argument("--tol", type=float, default=1e-8)
    p_batch.add_argument("--skip-hooi", action="store_true")
    p_batch.add_argument(
        "--max-in-flight", type=int, default=8, metavar="N",
        help="tensors loaded ahead of execution; bounds resident memory "
        "and the plan-grouping window (default 8)",
    )
    p_batch.add_argument(
        "--on-error", default="raise", choices=["raise", "skip"],
        help="stop on the first failed item, or record it and keep "
        "streaming (exit code 1 if anything failed)",
    )
    _add_storage_args(p_batch)
    p_batch.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the whole batch and write it here "
        "(Chrome trace-event format; .jsonl selects JSON-lines)",
    )
    p_batch.add_argument("--json", action="store_true")
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="serve decompositions over newline-delimited JSON "
        "(stdio by default, --socket for a local AF_UNIX listener)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker threads, each owning a private session with its "
        "own plan cache and warm pools (default 2)",
    )
    p_serve.add_argument(
        "--backend",
        default=AUTO_BACKEND,
        choices=BACKEND_NAMES + (AUTO_BACKEND,),
        help="execution backend per worker session (default auto)",
    )
    p_serve.add_argument(
        "-p", "--procs", type=int, default=None,
        help="processor count per worker session (total parallelism is "
        "workers x procs; default: natural)",
    )
    p_serve.add_argument(
        "--planner", default="portfolio",
        help="'portfolio' or a tree kind (optimal, chain-k, ...)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="bound on queued+running requests before submissions are "
        "shed with an admission error (default 64)",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline; requests still waiting when "
        "it elapses fail instead of running (requests may override)",
    )
    p_serve.add_argument(
        "--no-prefetch", action="store_true",
        help="disable background page-warming of the next request's "
        ".npy input",
    )
    p_serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="listen on a local AF_UNIX socket instead of stdio",
    )
    _add_storage_args(p_serve)
    p_serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="trace every worker session and write the merged span "
        "trace here on drain",
    )
    p_serve.add_argument(
        "--stats-out", metavar="PATH", default=None,
        help="write the final stats snapshot JSON here on drain",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_cal = sub.add_parser(
        "calibrate",
        help="measure per-backend throughput; persist an auto profile",
    )
    p_cal.add_argument("--dims", type=_parse_ints, help="probe tensor dims")
    p_cal.add_argument("--core", type=_parse_ints, help="probe core dims")
    p_cal.add_argument("--repeats", type=int, default=3)
    p_cal.add_argument(
        "-p", "--procs", type=int, default=None,
        help="worker count for the parallel backends (default: natural)",
    )
    p_cal.add_argument("--seed", type=int, default=0)
    p_cal.add_argument(
        "--out", help="write the profile here (default: the machine "
        "profile path, $REPRO_CALIBRATION or ~/.cache/repro)",
    )
    p_cal.add_argument(
        "--no-storage-probe", action="store_true",
        help="skip the spill-storage probe (write/read bandwidth, "
        "zlib/narrow encode+decode rates, compression ratio, chunk size)",
    )
    p_cal.add_argument("--json", action="store_true")
    p_cal.set_defaults(func=cmd_calibrate)

    p_trace = sub.add_parser(
        "trace", help="inspect a saved run trace"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summarize",
        help="per-step table: modeled volume vs measured seconds/bytes",
    )
    p_tsum.add_argument("path", help="trace file (Chrome or JSON-lines)")
    p_tsum.add_argument("--json", action="store_true")
    p_tsum.set_defaults(func=cmd_trace_summarize)

    p_bench = sub.add_parser(
        "bench",
        help="measure the performance baseline cases; optionally gate "
        "against a committed baseline",
    )
    p_bench.add_argument(
        "--out", help="write the measured baseline JSON here"
    )
    p_bench.add_argument(
        "--compare", metavar="BASELINE",
        help="compare against this baseline file; exit 1 on regression",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional drop in normalized throughput before "
        "the gate fails (default 0.5)",
    )
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.add_argument("--json", action="store_true")
    p_bench.set_defaults(func=cmd_bench)

    p_psi = sub.add_parser("psi", help="grid counts (Table 1)")
    p_psi.add_argument("-p", "--procs", type=int, default=32)
    p_psi.add_argument("--n-min", type=int, default=5)
    p_psi.add_argument("--n-max", type=int, default=10)
    p_psi.set_defaults(func=cmd_psi)

    p_model = sub.add_parser("model", help="model every algorithm config")
    add_meta_args(p_model)
    p_model.set_defaults(func=cmd_model)

    p_suite = sub.add_parser("suite", help="benchmark-suite statistics")
    p_suite.add_argument("--ndim", type=int, default=5)
    p_suite.set_defaults(func=cmd_suite)

    p_lint = sub.add_parser(
        "lint", help="run the repo's static analyzer (rules R001-R006)"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    p_lint.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of text",
    )
    p_lint.add_argument(
        "--rule", action="append", metavar="ID",
        help="run only this rule id (repeatable)",
    )
    p_lint.add_argument(
        "--config", help="explicit pyproject.toml (default: nearest)"
    )
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root = logging.getLogger("repro")
        root.addHandler(handler)
        root.setLevel(
            logging.INFO if args.verbose == 1 else logging.DEBUG
        )
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
