"""Command-line interface: plan, inspect and model from the shell.

Subcommands
-----------
``plan``   plan one metadata instance and print (or save) the plan
``psi``    print the Table-1 grid counts for given P and N range
``model``  model one HOOI invocation for every algorithm configuration
``suite``  print benchmark-suite statistics

Examples::

    python -m repro plan --dims 400,100,100,50,20 --core 80,80,10,40,10 -p 32
    python -m repro psi -p 32 --n-min 5 --n-max 10
    python -m repro model --tensor SP -p 32
    python -m repro suite --ndim 5
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.bench.algorithms import ALGORITHMS, make_planner, paper_label
from repro.bench.report import ascii_table
from repro.bench.suite import REAL_TENSORS, benchmark_metas, real_tensor_meta
from repro.core.grids import psi
from repro.core.memory import plan_peak_bytes_per_rank
from repro.core.meta import TensorMeta
from repro.core.planner import Planner
from repro.hooi.model import predict
from repro.mpi.machine import MachineModel


def _parse_ints(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _meta_from_args(args) -> TensorMeta:
    if getattr(args, "tensor", None):
        return real_tensor_meta(args.tensor)
    if not args.dims or not args.core:
        raise SystemExit("provide --tensor NAME or both --dims and --core")
    return TensorMeta(dims=args.dims, core=args.core)


def cmd_plan(args) -> int:
    meta = _meta_from_args(args)
    planner = Planner(args.procs, tree=args.tree, grid=args.grid)
    plan = planner.plan(meta)
    print(f"metadata: {meta}")
    print(f"tree: {args.tree} ({plan.tree.n_ttm_ops} TTMs), grid: {args.grid}")
    print(f"flops (TTM component):  {plan.flops:,}")
    print(f"TTM volume:             {plan.ttm_volume:,} elements")
    print(f"regrid volume:          {plan.regrid_volume:,} elements")
    print(f"initial grid:           {plan.initial_grid}")
    mem = plan_peak_bytes_per_rank(plan)
    print(f"peak memory per rank:   {mem['total'] / 2**30:.2f} GiB")
    if args.show_tree:
        print(plan.tree.pretty(meta))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(plan.to_json())
        print(f"plan written to {args.out}")
    return 0


def cmd_psi(args) -> int:
    ns = list(range(args.n_min, args.n_max + 1))
    rows = [[f"P={args.procs}"] + [psi(args.procs, n) for n in ns]]
    print(ascii_table(["P \\ N"] + [str(n) for n in ns], rows))
    return 0


def cmd_model(args) -> int:
    meta = _meta_from_args(args)
    machine = MachineModel.bgq_like()
    rows = []
    for name in ALGORITHMS:
        plan = make_planner(name, args.procs).plan(meta)
        rep = predict(plan, machine)
        rows.append(
            [
                paper_label(name),
                f"{plan.flops / 1e9:.1f}G",
                f"{plan.total_volume / 1e6:.1f}M",
                f"{rep.ttm_compute_seconds:.3f}",
                f"{rep.ttm_comm_seconds:.3f}",
                f"{rep.svd_seconds:.3f}",
                f"{rep.total_seconds:.3f}",
            ]
        )
    print(f"metadata: {meta}   P = {args.procs}")
    print(
        ascii_table(
            ["alg", "flops", "volume", "comp s", "comm s", "svd s", "total s"],
            rows,
        )
    )
    return 0


def cmd_suite(args) -> int:
    metas = benchmark_metas(args.ndim)
    cards = [m.cardinality for m in metas]
    print(f"{args.ndim}-D canonical suite: {len(metas)} tensors")
    print(f"cardinality range: {min(cards):,} .. {max(cards):,}")
    print(f"real tensors available: {', '.join(REAL_TENSORS)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Tucker decomposition planner/model "
        "(Chakaravarthy et al., IPDPS 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_meta_args(p):
        p.add_argument("--dims", type=_parse_ints, help="L1,L2,...")
        p.add_argument("--core", type=_parse_ints, help="K1,K2,...")
        p.add_argument(
            "--tensor", help=f"real tensor name ({', '.join(REAL_TENSORS)})"
        )
        p.add_argument("-p", "--procs", type=int, default=32)

    p_plan = sub.add_parser("plan", help="plan one metadata instance")
    add_meta_args(p_plan)
    p_plan.add_argument("--tree", default="optimal")
    p_plan.add_argument("--grid", default="dynamic")
    p_plan.add_argument("--show-tree", action="store_true")
    p_plan.add_argument("--out", help="write the plan JSON here")
    p_plan.set_defaults(func=cmd_plan)

    p_psi = sub.add_parser("psi", help="grid counts (Table 1)")
    p_psi.add_argument("-p", "--procs", type=int, default=32)
    p_psi.add_argument("--n-min", type=int, default=5)
    p_psi.add_argument("--n-max", type=int, default=10)
    p_psi.set_defaults(func=cmd_psi)

    p_model = sub.add_parser("model", help="model every algorithm config")
    add_meta_args(p_model)
    p_model.set_defaults(func=cmd_model)

    p_suite = sub.add_parser("suite", help="benchmark-suite statistics")
    p_suite.add_argument("--ndim", type=int, default=5)
    p_suite.set_defaults(func=cmd_suite)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
