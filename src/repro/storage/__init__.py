"""Out-of-core block storage: tensors beyond RAM.

The distributed design the paper argues for exists because dense tensors
outgrow a single node's memory; this package gives the reproduction the
same escape hatch on one machine. A :class:`BlockStore` holds named
tensor blocks either in RAM (:class:`InMemoryStore`, the historical
behavior) or as memory-mapped files under a managed spill directory
(:class:`MmapStore`: per-block raw files + JSON manifests, chunked
write-through so a block is never fully resident while being spilled,
weakref-finalized cleanup so no orphaned files survive the store).

:class:`StoredTensor` is the handle the shared-memory backends pass
around when a tensor lives in a store instead of RAM: a (path, offset,
shape, dtype) description that any process — including pool workers —
can map read-only with ``np.memmap``, plus ownership bookkeeping so
intermediate spill blocks are reclaimed the moment the pipeline drops
them.

The :class:`ResidentGauge` is the measured-discipline half: every code
path that materializes block-sized temporaries (chunked spills, per-block
kernel reads) charges its lease here, which is what lets the stress suite
*prove* a larger-than-budget decomposition ran with bounded resident
block bytes instead of merely asserting it finished.
"""

from repro.storage.store import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_MAX_BLOCK_BYTES,
    DEFAULT_ZLIB_LEVEL,
    MEMORY_BUDGET_ENV,
    SPILL_CODECS,
    SPILL_DIR_ENV,
    BlockMeta,
    BlockStore,
    CorruptBlockError,
    InMemoryStore,
    MmapStore,
    ResidentGauge,
    StorageError,
    StoredTensor,
    check_codec,
    codec_kind,
    default_memory_budget,
    default_spill_root,
    parse_bytes,
    resident_gauge,
    warm_pages,
)

__all__ = [
    "BlockMeta",
    "BlockStore",
    "CorruptBlockError",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_MAX_BLOCK_BYTES",
    "DEFAULT_ZLIB_LEVEL",
    "InMemoryStore",
    "MEMORY_BUDGET_ENV",
    "MmapStore",
    "ResidentGauge",
    "SPILL_CODECS",
    "SPILL_DIR_ENV",
    "StorageError",
    "StoredTensor",
    "check_codec",
    "codec_kind",
    "default_memory_budget",
    "default_spill_root",
    "parse_bytes",
    "resident_gauge",
    "warm_pages",
]
