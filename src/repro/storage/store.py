"""Block stores: in-memory and memory-mapped spill-file backed.

Layout of an :class:`MmapStore` spill directory::

    <root>/store-XXXXXX/          one directory per store instance
        t0.blk                    block bytes: raw C-order data, a zlib
                                  stream, or float32-narrowed data,
                                  per the manifest's "codec"
        t0.json                   manifest: {"key", "shape", "dtype",
                                  "nbytes"[, "codec", "stored_nbytes",
                                  "stored_dtype", "codec_*_error"]}
        t0.dec                    decode scratch (raw bytes) of an
                                  encoded block, created on first read
        ...

A block is *committed* only once its manifest exists (the manifest is
written after the data file), so a crash mid-spill leaves a ``.blk``
without a ``.json`` — which :meth:`MmapStore.get` reports as a typed
:class:`CorruptBlockError`, never as silently wrong data. Truncated or
resized data files are caught by an exact byte-size check against the
manifest.

Every store removes its own files: explicitly via :meth:`BlockStore.close`
(idempotent), or at interpreter exit through a ``weakref.finalize`` — the
same no-orphans discipline the procpool backend applies to ``/dev/shm``
segments.
"""

from __future__ import annotations

import abc
import json
import os
import re
import shutil
import tempfile
import threading
import weakref
import zlib
from contextlib import contextmanager
from typing import NamedTuple

import numpy as np

from repro.obs.trace import NULL_TRACER

#: environment variable naming the spill root directory.
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

#: environment variable naming the default memory budget (bytes, K/M/G ok).
MEMORY_BUDGET_ENV = "REPRO_MEMORY_BUDGET"

#: write-through chunk size: no spill ever materializes more than this
#: many bytes at once while copying a block into the store.
DEFAULT_CHUNK_BYTES = 16 * 2**20

#: per-block ceiling when no memory budget constrains the store.
DEFAULT_MAX_BLOCK_BYTES = 64 * 2**20

#: manifest schema version (bump on incompatible changes).
MANIFEST_VERSION = 1

#: block codec families (``zlib`` accepts an optional ``:<level>``).
SPILL_CODECS = ("raw", "zlib", "narrow")

#: compression level used when a bare ``"zlib"`` spec names no level.
DEFAULT_ZLIB_LEVEL = 6

_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_BYTES_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([kKmMgGtT]?)[iI]?[bB]?\s*$")

_SUFFIX = {"": 1, "k": 2**10, "m": 2**20, "g": 2**30, "t": 2**40}


class StorageError(RuntimeError):
    """Base class for block-store failures."""


class CorruptBlockError(StorageError):
    """A spill file or its manifest failed validation.

    Carries the offending ``key``, the ``path`` that failed, and a short
    machine-checkable ``reason``.
    """

    def __init__(self, message: str, *, key: str = "", path: str = "",
                 reason: str = "") -> None:
        super().__init__(message)
        self.key = key
        self.path = path
        self.reason = reason


def parse_bytes(text) -> int:
    """Parse a byte count: plain int, or ``"512K"`` / ``"2M"`` / ``"1.5G"``.

    Suffixes are binary (K = 2**10); an optional ``iB``/``B`` tail is
    accepted (``64MiB``). Raises :class:`ValueError` on anything else.
    """
    if isinstance(text, (int, np.integer)):
        value = int(text)
        if value < 0:
            raise ValueError(f"byte count must be >= 0, got {value}")
        return value
    match = _BYTES_RE.match(str(text))
    if not match:
        raise ValueError(
            f"expected a byte count like 1048576 / 512K / 2M / 1.5G, "
            f"got {text!r}"
        )
    return int(float(match.group(1)) * _SUFFIX[match.group(2).lower()])


def check_codec(codec) -> str:
    """Normalize a codec spec to its canonical string.

    Accepted: ``"raw"`` (or ``None``/``""``), ``"zlib"`` /
    ``"zlib:<level>"`` with level in 0..9, and ``"narrow"``
    (float64 blocks stored as float32 with a recorded error bound).
    Raises :class:`ValueError` on anything else.
    """
    if codec is None:
        return "raw"
    spec = str(codec).strip().lower()
    if spec in ("", "raw"):
        return "raw"
    if spec == "narrow":
        return "narrow"
    if spec == "zlib":
        return f"zlib:{DEFAULT_ZLIB_LEVEL}"
    if spec.startswith("zlib:"):
        try:
            level = int(spec[len("zlib:"):])
        except ValueError:
            level = -1
        if 0 <= level <= 9:
            return f"zlib:{level}"
        raise ValueError(
            f"zlib level must be an integer in 0..9, got {codec!r}"
        )
    raise ValueError(
        f"unknown spill codec {codec!r}; expected one of "
        f"raw, zlib[:level], narrow"
    )


def codec_kind(codec: str) -> str:
    """The codec family of a canonical spec (``"zlib:6"`` -> ``"zlib"``)."""
    return codec.split(":", 1)[0]


class BlockMeta(NamedTuple):
    """A block manifest, validated: geometry plus codec facts.

    ``nbytes`` is always the *logical* (decoded) size; ``stored_nbytes``
    is what the data file holds on disk (equal for ``raw`` blocks).
    ``abs_error`` / ``rel_error`` are the recorded per-element bounds of
    a ``narrow`` encode (0.0 for lossless codecs).
    """

    shape: tuple[int, ...]
    dtype: np.dtype
    nbytes: int
    codec: str = "raw"
    stored_nbytes: int = 0
    stored_dtype: np.dtype | None = None
    abs_error: float = 0.0
    rel_error: float = 0.0


def default_memory_budget() -> int | None:
    """The ``$REPRO_MEMORY_BUDGET`` budget in bytes, or ``None`` if unset."""
    env = os.environ.get(MEMORY_BUDGET_ENV)
    if not env:
        return None
    try:
        return parse_bytes(env)
    except ValueError as exc:
        raise ValueError(f"invalid {MEMORY_BUDGET_ENV}: {exc}") from None


# --------------------------------------------------------------------- #
# resident accounting
# --------------------------------------------------------------------- #


class ResidentGauge:
    """Thread-safe ledger of bytes currently leased as resident copies.

    Out-of-core code paths wrap every block-sized materialization (chunk
    buffers during spills, per-block reads inside kernels) in
    :meth:`lease`; ``peak`` is then a *measured* bound on resident block
    bytes that the stress suite can assert against a memory budget.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.current = 0
        self.peak = 0

    def charge(self, nbytes: int) -> None:
        with self._lock:
            self.current += int(nbytes)
            if self.current > self.peak:
                self.peak = self.current

    def release(self, nbytes: int) -> None:
        with self._lock:
            self.current = max(0, self.current - int(nbytes))

    @contextmanager
    def lease(self, nbytes: int):
        """Charge ``nbytes`` for the duration of the ``with`` block."""
        nbytes = int(nbytes)
        self.charge(nbytes)
        try:
            yield
        finally:
            self.release(nbytes)

    def reset(self) -> None:
        with self._lock:
            self.current = 0
            self.peak = 0


_GAUGE = ResidentGauge()


def resident_gauge() -> ResidentGauge:
    """The process-wide gauge stores charge by default."""
    return _GAUGE


# --------------------------------------------------------------------- #
# the store protocol
# --------------------------------------------------------------------- #


class BlockStore(abc.ABC):
    """Named tensor blocks with put/get/writer semantics.

    Keys are caller-chosen identifiers (``[A-Za-z0-9._-]``, not starting
    with a separator); :meth:`next_key` hands out collision-free ones.
    ``get`` views are read-only where the medium allows it; ``writer``
    views are mutable and shared (the procpool workers write disjoint
    slices of one output block through them).
    """

    #: short identifier ("memory", "mmap") mirrored in reasons/repr.
    kind: str = "abstract"

    def __init__(self, *, max_block_bytes: int | None = None,
                 gauge: ResidentGauge | None = None) -> None:
        self.max_block_bytes = int(
            DEFAULT_MAX_BLOCK_BYTES
            if max_block_bytes is None
            else max_block_bytes
        )
        if self.max_block_bytes < 1:
            raise ValueError(
                f"max_block_bytes must be >= 1, got {self.max_block_bytes}"
            )
        self.gauge = gauge if gauge is not None else resident_gauge()
        #: spill I/O reporting target (:mod:`repro.obs`); the session
        #: repoints this at its live tracer for traced runs. The default
        #: no-op tracer keeps untraced spills branch-free.
        self.tracer = NULL_TRACER
        self._counter = 0
        self._closed = False

    # -- key management --------------------------------------------------- #

    @staticmethod
    def check_key(key: str) -> str:
        if not isinstance(key, str) or not _KEY_RE.match(key):
            raise ValueError(
                f"block keys must match [A-Za-z0-9][A-Za-z0-9._-]*, "
                f"got {key!r}"
            )
        return key

    def next_key(self, prefix: str = "t") -> str:
        """A fresh key, unique within this store."""
        self.check_key(prefix)
        self._counter += 1
        return f"{prefix}.{self._counter}"

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{type(self).__name__} is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def per_block_bytes(self, n_workers: int = 1) -> int:
        """Per-block byte ceiling when ``n_workers`` blocks fly at once."""
        return max(1, self.max_block_bytes // max(1, int(n_workers)))

    # -- the protocol ------------------------------------------------------ #

    @abc.abstractmethod
    def put(self, key: str, array: np.ndarray, *, dtype=None, codec=None) -> None:
        """Store a block (write-through; chunked on spill media).

        ``dtype``, when given, converts while writing — chunk by chunk
        on spill media, so a dtype change never materializes a full
        converted copy of the source. ``codec`` overrides the store's
        default block encoding for this block (``"raw"`` forces a
        directly mappable — and therefore writable — block on an
        encoding store; RAM stores ignore it).
        """

    @abc.abstractmethod
    def get(self, key: str) -> np.ndarray:
        """The stored block (read-only mapping on spill media)."""

    @abc.abstractmethod
    def writer(self, key: str) -> np.ndarray:
        """A mutable view of the stored block."""

    @abc.abstractmethod
    def create(self, key: str, shape, dtype) -> None:
        """Allocate an uninitialized block (write via :meth:`writer`)."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove a block (missing keys are ignored)."""

    @abc.abstractmethod
    def keys(self) -> list[str]:
        """Keys of every committed block."""

    @abc.abstractmethod
    def path_of(self, key: str) -> str | None:
        """Filesystem path of the block's bytes, or ``None`` in RAM."""

    @abc.abstractmethod
    def meta_of(self, key: str) -> tuple[tuple[int, ...], np.dtype]:
        """``(shape, dtype)`` of a stored block."""

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Total bytes of every committed block."""

    def close(self) -> None:
        """Release every block (idempotent)."""
        self._closed = True

    def __enter__(self) -> "BlockStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(kind={self.kind!r}, "
            f"blocks={len(self.keys()) if not self._closed else 0})"
        )


# --------------------------------------------------------------------- #
# in-memory store (the historical behavior, behind the protocol)
# --------------------------------------------------------------------- #


class InMemoryStore(BlockStore):
    """Blocks as plain ndarrays in a dict — current-behavior storage."""

    kind = "memory"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._blocks: dict[str, np.ndarray] = {}

    def put(self, key: str, array: np.ndarray, *, dtype=None, codec=None) -> None:
        self._check_open()
        self.check_key(key)
        self._blocks[key] = np.array(
            array, copy=True, order="C", dtype=dtype
        )

    def get(self, key: str) -> np.ndarray:
        self._check_open()
        return self._blocks[key]

    def writer(self, key: str) -> np.ndarray:
        self._check_open()
        return self._blocks[key]

    def create(self, key: str, shape, dtype) -> None:
        self._check_open()
        self.check_key(key)
        self._blocks[key] = np.empty(
            tuple(int(s) for s in shape), dtype=np.dtype(dtype)
        )

    def delete(self, key: str) -> None:
        self._blocks.pop(key, None)

    def keys(self) -> list[str]:
        return sorted(self._blocks)

    def path_of(self, key: str) -> str | None:
        self._check_open()
        if key not in self._blocks:
            raise KeyError(key)
        return None

    def meta_of(self, key: str) -> tuple[tuple[int, ...], np.dtype]:
        block = self.get(key)
        return tuple(block.shape), block.dtype

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._blocks.values())

    def close(self) -> None:
        self._blocks.clear()
        super().close()


# --------------------------------------------------------------------- #
# mmap spill store
# --------------------------------------------------------------------- #


def default_spill_root() -> str | None:
    """``$REPRO_SPILL_DIR`` when set, else ``None`` (a fresh tempdir)."""
    return os.environ.get(SPILL_DIR_ENV) or None


def _remove_tree(path: str) -> None:
    """Finalizer: best-effort removal of a store directory."""
    shutil.rmtree(path, ignore_errors=True)


class MmapStore(BlockStore):
    """np.memmap-backed per-block spill files under a managed directory.

    Parameters
    ----------
    root:
        Parent directory for this store's spill subdirectory. Defaults to
        ``$REPRO_SPILL_DIR``, else the system tempdir. The subdirectory is
        always store-private and is removed on :meth:`close` (or, as a
        backstop, by a weakref finalizer at garbage collection /
        interpreter exit); an explicitly named ``root`` itself is never
        removed.
    chunk_bytes:
        Write-through granularity of :meth:`put` — bounds the resident
        bytes of any single spill copy (and of codec encode/decode).
    max_block_bytes:
        Per-block ceiling the out-of-core kernels cut their work to
        (sessions derive it from ``memory_budget``).
    gauge:
        Resident-byte accounting; defaults to the process-wide gauge.
    codec:
        Default block codec for :meth:`put` — ``"raw"`` (memmap-able,
        the default), ``"zlib[:level]"`` (lossless deflate stream), or
        ``"narrow"`` (float64 stored as float32 with a recorded error
        bound). Non-raw blocks are decoded chunk-by-chunk into a raw
        scratch file on first read; :meth:`create` outputs are always
        raw.
    """

    kind = "mmap"

    def __init__(
        self,
        root: str | None = None,
        *,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        max_block_bytes: int | None = None,
        gauge: ResidentGauge | None = None,
        codec: str = "raw",
    ) -> None:
        super().__init__(max_block_bytes=max_block_bytes, gauge=gauge)
        self.chunk_bytes = max(1, int(chunk_bytes))
        self.codec = check_codec(codec)
        #: put() accounting: bytes actually written vs logical bytes, and
        #: the worst narrow-encode error seen — surfaced per run in
        #: :meth:`codec_stats` / ``TuckerResult``.
        self.spill_bytes_written = 0
        self.spill_bytes_logical = 0
        self.spill_abs_error = 0.0
        self.spill_rel_error = 0.0
        root = root if root is not None else default_spill_root()
        if root is not None:
            os.makedirs(root, exist_ok=True)
        self.directory = tempfile.mkdtemp(prefix="repro-spill-", dir=root)
        self._finalizer = weakref.finalize(
            self, _remove_tree, self.directory
        )

    def codec_stats(self) -> dict:
        """Accumulated spill accounting for this store's :meth:`put` calls."""
        return {
            "spill_codec": self.codec,
            "spill_bytes_written": int(self.spill_bytes_written),
            "spill_bytes_logical": int(self.spill_bytes_logical),
            "spill_error_bound": float(self.spill_rel_error),
        }

    # -- paths / manifests ------------------------------------------------- #

    def path_of(self, key: str) -> str:
        self.check_key(key)
        return os.path.join(self.directory, f"{key}.blk")

    def _manifest_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _write_manifest(
        self, key: str, shape, dtype, nbytes: int, *,
        codec: str = "raw", stored_nbytes: int | None = None,
        stored_dtype=None, abs_error: float = 0.0, rel_error: float = 0.0,
    ) -> None:
        manifest = {
            "version": MANIFEST_VERSION,
            "key": key,
            "shape": [int(s) for s in shape],
            "dtype": np.dtype(dtype).str,
            "nbytes": int(nbytes),
        }
        if codec != "raw":
            manifest["codec"] = codec
            manifest["stored_nbytes"] = int(
                nbytes if stored_nbytes is None else stored_nbytes
            )
            if codec_kind(codec) == "narrow":
                manifest["stored_dtype"] = np.dtype(stored_dtype).str
                manifest["codec_abs_error"] = float(abs_error)
                manifest["codec_rel_error"] = float(rel_error)
        path = self._manifest_path(key)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        os.replace(tmp, path)  # committed atomically, data file first

    def meta_of(self, key: str) -> tuple[tuple[int, ...], np.dtype]:
        meta = self._load_manifest(key)
        return meta.shape, meta.dtype

    def block_meta(self, key: str) -> BlockMeta:
        """The validated manifest, codec facts included."""
        return self._load_manifest(key)

    def block_codec(self, key: str) -> str:
        """The canonical codec a committed block was stored with."""
        return self._load_manifest(key).codec

    def _load_manifest(self, key: str) -> BlockMeta:
        """Validated :class:`BlockMeta`; typed errors otherwise."""
        self._check_open()
        self.check_key(key)
        path = self._manifest_path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            if os.path.exists(self.path_of(key)):
                raise CorruptBlockError(
                    f"block {key!r} has data but no manifest "
                    f"(interrupted spill?)",
                    key=key, path=self.path_of(key),
                    reason="missing-manifest",
                ) from None
            raise KeyError(key) from None
        except ValueError as exc:
            raise CorruptBlockError(
                f"block {key!r} manifest is not valid JSON: {exc}",
                key=key, path=path, reason="bad-manifest-json",
            ) from None
        try:
            if manifest["version"] != MANIFEST_VERSION:
                raise CorruptBlockError(
                    f"block {key!r} manifest is version "
                    f"{manifest['version']!r}, expected {MANIFEST_VERSION}",
                    key=key, path=path, reason="bad-manifest-version",
                )
            shape = tuple(int(s) for s in manifest["shape"])
            dtype = np.dtype(manifest["dtype"])
            nbytes = int(manifest["nbytes"])
        except CorruptBlockError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptBlockError(
                f"block {key!r} manifest is malformed: {exc!r}",
                key=key, path=path, reason="bad-manifest-fields",
            ) from None
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != expected:
            raise CorruptBlockError(
                f"block {key!r} manifest is inconsistent: shape {shape} "
                f"x {dtype} is {expected} bytes, manifest says {nbytes}",
                key=key, path=path, reason="inconsistent-manifest",
            )
        raw_codec = manifest.get("codec", "raw")
        try:
            codec = check_codec(raw_codec)
        except ValueError:
            raise CorruptBlockError(
                f"block {key!r} manifest names unknown codec {raw_codec!r}",
                key=key, path=path, reason="unknown-codec",
            ) from None
        if codec == "raw":
            return BlockMeta(shape, dtype, nbytes, "raw", nbytes, dtype)
        try:
            stored_nbytes = int(manifest["stored_nbytes"])
            if codec_kind(codec) == "narrow":
                stored_dtype = np.dtype(manifest["stored_dtype"])
                abs_error = float(manifest["codec_abs_error"])
                rel_error = float(manifest["codec_rel_error"])
            else:
                stored_dtype = dtype
                abs_error = rel_error = 0.0
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptBlockError(
                f"block {key!r} manifest is malformed: {exc!r}",
                key=key, path=path, reason="bad-manifest-fields",
            ) from None
        if codec_kind(codec) == "narrow":
            size = int(np.prod(shape, dtype=np.int64))
            if stored_nbytes != size * stored_dtype.itemsize:
                raise CorruptBlockError(
                    f"block {key!r} manifest is inconsistent: narrow "
                    f"shape {shape} x {stored_dtype} should store "
                    f"{size * stored_dtype.itemsize} bytes, manifest "
                    f"says {stored_nbytes}",
                    key=key, path=path, reason="inconsistent-manifest",
                )
        elif stored_nbytes < 0:
            raise CorruptBlockError(
                f"block {key!r} manifest is malformed: negative "
                f"stored_nbytes {stored_nbytes}",
                key=key, path=path, reason="bad-manifest-fields",
            )
        return BlockMeta(
            shape, dtype, nbytes, codec, stored_nbytes, stored_dtype,
            abs_error, rel_error,
        )

    def _checked_path(self, key: str) -> tuple[str, BlockMeta]:
        meta = self._load_manifest(key)
        path = self.path_of(key)
        try:
            actual = os.path.getsize(path)
        except OSError:
            raise CorruptBlockError(
                f"block {key!r} data file is missing",
                key=key, path=path, reason="missing-data",
            ) from None
        if actual != meta.stored_nbytes:
            raise CorruptBlockError(
                f"block {key!r} data file is {actual} bytes, manifest "
                f"says {meta.stored_nbytes} (truncated or overwritten "
                f"spill file)",
                key=key, path=path, reason="size-mismatch",
            )
        return path, meta

    # -- the protocol ------------------------------------------------------ #

    def put(
        self, key: str, array: np.ndarray, *, dtype=None, codec=None
    ) -> None:
        """Spill ``array`` write-through in ``chunk_bytes`` chunks.

        The source may be any ndarray (including a strided memmap view,
        e.g. one brick of a lazily opened ``.npy``): chunks are copied
        slab-by-slab along the first axis, so at most one chunk of the
        block is ever resident on top of the source's own pages.
        ``dtype`` converts per chunk while writing — a working-precision
        change never materializes a full converted copy.

        ``codec`` overrides the store default for this block. ``narrow``
        only applies to float64 blocks (anything else falls back to
        ``raw``); zero-byte blocks are always committed raw.
        """
        self._check_open()
        self.check_key(key)
        array = np.asarray(array)
        shape = array.shape  # manifests keep the true shape, 0-d included
        if array.ndim == 0:
            array = array.reshape(1)  # np.memmap needs >= 1 dimension
        target = np.dtype(dtype) if dtype is not None else array.dtype
        path = self.path_of(key)
        self._drop_decoded(key)  # a re-put invalidates any decode scratch
        nbytes = array.size * target.itemsize
        if nbytes == 0:
            with open(path, "wb"):
                pass  # data file of exactly the manifest's 0 bytes
            self._write_manifest(key, shape, target, 0)
            return
        codec = check_codec(codec) if codec is not None else self.codec
        if codec == "narrow" and target != np.dtype(np.float64):
            codec = "raw"  # narrowing is defined for float64 only
        kind = codec_kind(codec)
        if kind == "raw":
            with self.tracer.span(
                "spill:write", kind="io", key=key, bytes=int(nbytes)
            ):
                self._spill_copy(array, path, target, nbytes)
            self._write_manifest(key, shape, target, nbytes)
            stored = nbytes
        elif kind == "zlib":
            level = int(codec.split(":", 1)[1])
            with self.tracer.span(
                "spill:write", kind="io", key=key
            ) as span:
                stored = self._spill_zlib(array, path, target, level)
                span.set(
                    bytes=int(stored), raw_bytes=int(nbytes), codec=codec
                )
            self._write_manifest(
                key, shape, target, nbytes,
                codec=codec, stored_nbytes=stored,
            )
        else:  # narrow
            with self.tracer.span(
                "spill:write", kind="io", key=key
            ) as span:
                stored, abs_err, rel_err = self._spill_narrow(
                    array, path, target
                )
                span.set(
                    bytes=int(stored), raw_bytes=int(nbytes), codec=codec
                )
            self._write_manifest(
                key, shape, target, nbytes,
                codec=codec, stored_nbytes=stored,
                stored_dtype=np.float32,
                abs_error=abs_err, rel_error=rel_err,
            )
            self.spill_abs_error = max(self.spill_abs_error, abs_err)
            self.spill_rel_error = max(self.spill_rel_error, rel_err)
        self.spill_bytes_written += int(stored)
        self.spill_bytes_logical += int(nbytes)

    def _spill_copy(
        self, array: np.ndarray, path: str, target: np.dtype, nbytes: int
    ) -> None:
        mm = np.memmap(path, dtype=target, mode="w+", shape=array.shape)
        try:
            if array.flags["C_CONTIGUOUS"]:
                # Flat chunking holds the chunk_bytes bound regardless of
                # shape (a small leading axis would make first-axis slabs
                # arbitrarily fat).
                src = array.reshape(-1)
                dst = mm.reshape(-1)
                elems = max(1, self.chunk_bytes // target.itemsize)
                for start in range(0, src.shape[0], elems):
                    stop = min(src.shape[0], start + elems)
                    with self.gauge.lease(
                        (stop - start) * target.itemsize
                    ):
                        dst[start:stop] = src[start:stop]  # casts per chunk
            else:
                # Strided sources (a brick view of a bigger mapping) copy
                # slab-by-slab along the first axis; a slab is the finest
                # unit a strided assignment admits without a temp copy.
                row_bytes = max(1, nbytes // max(1, array.shape[0]))
                rows = max(1, self.chunk_bytes // row_bytes)
                for start in range(0, array.shape[0], rows):
                    stop = min(array.shape[0], start + rows)
                    with self.gauge.lease((stop - start) * row_bytes):
                        mm[start:stop] = array[start:stop]
            mm.flush()
        finally:
            del mm

    def _iter_chunks(self, array: np.ndarray, target: np.dtype, scale=1):
        """Yield leased, C-contiguous ``target``-dtype chunks of ``array``.

        The effective chunk budget is ``chunk_bytes // scale`` — codec
        writers that hold per-chunk temporaries (the narrow error
        computation) pass ``scale > 1`` so their whole working set stays
        within the store's chunk bound. The lease covers each chunk for
        as long as the consumer holds it (generator suspension keeps the
        ``with`` open across the yield).
        """
        budget = max(1, self.chunk_bytes // int(scale))
        if array.flags["C_CONTIGUOUS"]:
            src = array.reshape(-1)
            elems = max(1, budget // target.itemsize)
            for start in range(0, src.shape[0], elems):
                piece = src[start:start + elems]
                with self.gauge.lease(piece.size * target.itemsize):
                    yield np.ascontiguousarray(piece, dtype=target)
        else:
            nbytes = array.size * target.itemsize
            row_bytes = max(1, nbytes // max(1, array.shape[0]))
            rows = max(1, budget // row_bytes)
            for start in range(0, array.shape[0], rows):
                stop = min(array.shape[0], start + rows)
                with self.gauge.lease((stop - start) * row_bytes):
                    slab = np.ascontiguousarray(
                        array[start:stop], dtype=target
                    )
                    yield slab.reshape(-1)

    def _spill_zlib(
        self, array: np.ndarray, path: str, target: np.dtype, level: int
    ) -> int:
        """Deflate ``array`` into one sequential stream; returns bytes."""
        comp = zlib.compressobj(level)
        stored = 0
        with open(path, "wb") as fh:
            for chunk in self._iter_chunks(array, target):
                # The sync flush drains deflate's internal buffering per
                # chunk, so resident output never exceeds ~one chunk —
                # without it the encoder can burst several buffered
                # chunks at once, breaking the chunk_bytes residency
                # bound the gauge enforces.
                data = comp.compress(chunk) + comp.flush(zlib.Z_SYNC_FLUSH)
                if data:
                    with self.gauge.lease(len(data)):
                        fh.write(data)
                    stored += len(data)
            data = comp.flush()
            if data:
                with self.gauge.lease(len(data)):
                    fh.write(data)
                stored += len(data)
        return stored

    def _spill_narrow(
        self, array: np.ndarray, path: str, target: np.dtype
    ) -> tuple[int, float, float]:
        """float64 -> float32 with measured per-element error bounds.

        Returns ``(stored_nbytes, max_abs_error, max_rel_error)`` where
        the bounds are exact maxima over the elements written (the
        decode path reproduces them bit-for-bit, so the bounds hold for
        every later read).
        """
        narrow = np.dtype(np.float32)
        stored = 0
        abs_err = 0.0
        rel_err = 0.0
        with open(path, "wb") as fh:
            # scale=4: the f8 chunk plus its f4 copy and the f8 error
            # temporaries stay well inside one chunk_bytes of residency.
            for chunk in self._iter_chunks(array, target, scale=4):
                extra = chunk.size * (
                    narrow.itemsize + 2 * target.itemsize
                )
                with self.gauge.lease(extra):
                    narrowed = chunk.astype(narrow)
                    diff = np.abs(chunk - narrowed)
                    if diff.size:
                        abs_err = max(abs_err, float(diff.max()))
                        denom = np.abs(chunk)
                        mask = denom > 0
                        if np.any(mask):
                            rel_err = max(
                                rel_err,
                                float((diff[mask] / denom[mask]).max()),
                            )
                    fh.write(narrowed)
                    stored += narrowed.nbytes
        return stored, abs_err, rel_err

    def _map(self, key: str, mode: str) -> np.ndarray:
        path, meta = self._checked_path(key)
        shape, dtype = meta.shape, meta.dtype
        if meta.codec != "raw":
            if mode != "r":
                raise StorageError(
                    f"block {key!r} is stored with codec "
                    f"{meta.codec!r}; encoded blocks are read-only"
                )
            path = self._ensure_decoded(key, path, meta)
        if int(np.prod(shape, dtype=np.int64)) == 0:
            return np.empty(shape, dtype=dtype)  # nothing to map
        if shape == ():
            # stored as one element; hand back the true 0-d view
            return np.memmap(path, dtype=dtype, mode=mode, shape=(1,)).reshape(())
        return np.memmap(path, dtype=dtype, mode=mode, shape=shape)

    # -- codec decode (non-raw blocks) ------------------------------------- #

    def _decoded_path(self, key: str) -> str:
        # Not .blk/.json, so keys() and the corruption checks never see it.
        return os.path.join(self.directory, f"{key}.dec")

    def _drop_decoded(self, key: str) -> None:
        try:
            os.remove(self._decoded_path(key))
        except FileNotFoundError:
            pass

    def mappable_path(self, key: str) -> str | None:
        """A raw file of the block's bytes that workers may ``np.memmap``.

        Raw blocks map in place; encoded blocks are decoded (once) into
        a scratch file first. ``None`` only for zero-byte blocks.
        """
        path, meta = self._checked_path(key)
        if int(np.prod(meta.shape, dtype=np.int64)) == 0:
            return None
        if meta.codec == "raw":
            return path
        return self._ensure_decoded(key, path, meta)

    def _ensure_decoded(self, key: str, src: str, meta: BlockMeta) -> str:
        """Decode an encoded block into its raw scratch file (cached)."""
        dst = self._decoded_path(key)
        try:
            if os.path.getsize(dst) == meta.nbytes:
                return dst
        except OSError:
            pass
        tmp = dst + ".tmp"
        try:
            with self.tracer.span(
                "spill:decode", kind="io", key=key,
                bytes=int(meta.nbytes), codec=meta.codec,
            ):
                if codec_kind(meta.codec) == "zlib":
                    self._decode_zlib(key, src, tmp, meta)
                else:
                    self._decode_narrow(key, src, tmp, meta)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, dst)
        return dst

    def _decode_zlib(
        self, key: str, src: str, dst: str, meta: BlockMeta
    ) -> None:
        dec = zlib.decompressobj()
        written = 0

        def emit(fout, data: bytes) -> int:
            if not data:
                return 0
            if written + len(data) > meta.nbytes:
                raise CorruptBlockError(
                    f"block {key!r} compressed data decodes past its "
                    f"{meta.nbytes}-byte manifest size",
                    key=key, path=src, reason="corrupt-compressed-data",
                )
            with self.gauge.lease(len(data)):
                fout.write(data)
            return len(data)

        try:
            with open(src, "rb") as fin, open(dst, "wb") as fout:
                while True:
                    comp = fin.read(self.chunk_bytes)
                    if not comp:
                        break
                    with self.gauge.lease(len(comp)):
                        # max_length bounds each inflate burst so a
                        # corrupt stream cannot balloon residency.
                        data = dec.decompress(comp, self.chunk_bytes)
                        written += emit(fout, data)
                        while dec.unconsumed_tail:
                            data = dec.decompress(
                                dec.unconsumed_tail, self.chunk_bytes
                            )
                            written += emit(fout, data)
                written += emit(fout, dec.flush())
        except zlib.error as exc:
            raise CorruptBlockError(
                f"block {key!r} compressed data is corrupt: {exc}",
                key=key, path=src, reason="corrupt-compressed-data",
            ) from None
        if written != meta.nbytes:
            raise CorruptBlockError(
                f"block {key!r} compressed data decoded to {written} "
                f"bytes, manifest says {meta.nbytes}",
                key=key, path=src, reason="corrupt-compressed-data",
            )

    def _decode_narrow(
        self, key: str, src: str, dst: str, meta: BlockMeta
    ) -> None:
        size = int(np.prod(meta.shape, dtype=np.int64))
        src_mm = np.memmap(
            src, dtype=meta.stored_dtype, mode="r", shape=(size,)
        )
        dst_mm = np.memmap(dst, dtype=meta.dtype, mode="w+", shape=(size,))
        try:
            elems = max(1, self.chunk_bytes // meta.dtype.itemsize)
            for start in range(0, size, elems):
                stop = min(size, start + elems)
                with self.gauge.lease(
                    (stop - start) * meta.dtype.itemsize
                ):
                    dst_mm[start:stop] = src_mm[start:stop]
            dst_mm.flush()
        finally:
            del src_mm, dst_mm

    def get(self, key: str) -> np.ndarray:
        # The span covers manifest validation + the mmap syscall; the
        # pages themselves fault in lazily inside the consuming kernel,
        # so `bytes` reports the block's size, not bytes read here.
        with self.tracer.span("spill:read", kind="io", key=key) as span:
            out = self._map(key, "r")
            span.set(bytes=int(out.nbytes))
        return out

    def writer(self, key: str) -> np.ndarray:
        return self._map(key, "r+")

    def create(self, key: str, shape, dtype) -> None:
        self._check_open()
        self.check_key(key)
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        path = self.path_of(key)
        with open(path, "wb") as fh:
            fh.truncate(nbytes)  # sparse where the filesystem allows
        self._write_manifest(key, shape, dtype, nbytes)

    def delete(self, key: str) -> None:
        if self._closed:
            return
        self.check_key(key)
        for path in (
            self.path_of(key),
            self._manifest_path(key),
            self._decoded_path(key),
        ):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass

    def keys(self) -> list[str]:
        self._check_open()
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )

    @property
    def nbytes(self) -> int:
        self._check_open()
        total = 0
        for key in self.keys():
            total += self._load_manifest(key).nbytes
        return total

    def close(self) -> None:
        """Remove every spill file and the store directory (idempotent)."""
        if not self._closed:
            self._finalizer()  # runs _remove_tree exactly once
        super().close()


# --------------------------------------------------------------------- #
# the out-of-core tensor handle
# --------------------------------------------------------------------- #


class StoredTensor:
    """A tensor resident in a :class:`BlockStore` — the spilled handle.

    Shared-memory backends pass these instead of ndarrays when a run has
    spilled. The description is process-portable: any worker can map
    ``(path, offset, shape, dtype)`` read-only with ``np.memmap`` — which
    is exactly how the procpool backend reads blocks without copying the
    tensor through ``shared_memory`` segments.

    Ownership: a handle over a store-allocated block (``owned=True``)
    deletes the block when closed or garbage collected; a handle wrapped
    around an *external* file (a lazily opened ``.npy``) never touches
    the file.
    """

    def __init__(
        self,
        store: BlockStore,
        shape: tuple[int, ...],
        dtype,
        *,
        key: str | None = None,
        path: str | None = None,
        offset: int = 0,
        owned: bool = True,
    ) -> None:
        self.store = store
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.key = key
        self.path = path
        self.offset = int(offset)
        self.owned = bool(owned)
        if owned:
            if key is None:
                raise ValueError("an owned StoredTensor needs its store key")
            self._finalizer = weakref.finalize(
                self, _delete_block, store, key
            )
        else:
            self._finalizer = None

    # -- constructors ------------------------------------------------------ #

    @classmethod
    def spill(
        cls, store: BlockStore, array: np.ndarray, *, key: str | None = None
    ) -> "StoredTensor":
        """Write ``array`` through the store and hand back its handle.

        ``path`` stays ``None`` for codec-encoded blocks — their on-disk
        bytes are not directly mappable, so readers must go through
        :meth:`open` / :meth:`mappable` (which decode on demand).
        """
        key = key if key is not None else store.next_key("t")
        store.put(key, array)
        path = store.path_of(key)
        codec_of = getattr(store, "block_codec", None)
        if path is not None and codec_of is not None:
            if codec_of(key) != "raw":
                path = None
        return cls(
            store, array.shape, array.dtype, key=key, path=path, owned=True,
        )

    @classmethod
    def allocate(
        cls, store: BlockStore, shape, dtype, *, key: str | None = None
    ) -> "StoredTensor":
        """Allocate an uninitialized output block (write via writer())."""
        key = key if key is not None else store.next_key("o")
        store.create(key, shape, dtype)
        return cls(
            store, shape, dtype, key=key, path=store.path_of(key), owned=True
        )

    @classmethod
    def external(
        cls, store: BlockStore, mapped: np.memmap
    ) -> "StoredTensor":
        """Wrap an already memory-mapped file (no copy, never deleted).

        ``mapped`` must be a C-contiguous ``np.memmap`` (e.g. from
        ``np.load(..., mmap_mode="r")``); its file is read in place by
        every backend, including pool workers.
        """
        if not isinstance(mapped, np.memmap):
            raise TypeError(
                f"external() wraps np.memmap instances, got "
                f"{type(mapped).__name__}"
            )
        if not mapped.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "external() needs a C-contiguous mapping; spill a copy "
                "instead (StoredTensor.spill)"
            )
        if mapped.filename is None:
            raise ValueError("external() needs a file-backed mapping")
        # Views inherit the parent's .offset attribute verbatim, so
        # trusting it would read the wrong file region for anything but
        # the root mapping (m[2:] still reports m's offset). Derive the
        # true file position from the data pointers instead: walk to the
        # root memmap and add the view's byte displacement within it.
        root = mapped
        while isinstance(root.base, np.ndarray):
            root = root.base
        if not isinstance(root, np.memmap):
            raise ValueError(
                "external() cannot locate the mapping's backing file; "
                "spill a copy instead (StoredTensor.spill)"
            )
        offset = int(root.offset) + (
            mapped.ctypes.data - root.ctypes.data
        )
        return cls(
            store, mapped.shape, mapped.dtype,
            path=os.fspath(mapped.filename), offset=offset,
            owned=False,
        )

    # -- geometry ---------------------------------------------------------- #

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    # -- access ------------------------------------------------------------ #

    def open(self) -> np.ndarray:
        """A read-only mapping of the whole tensor (pages load lazily)."""
        if self.path is not None:
            return np.memmap(
                self.path, dtype=self.dtype, mode="r",
                offset=self.offset, shape=self.shape,
            )
        return self.store.get(self.key)

    def mappable(self) -> tuple[str, int] | None:
        """``(path, offset)`` of raw bytes a worker can ``np.memmap``.

        Directly-mapped handles answer immediately; codec-encoded blocks
        ask the store for a decoded scratch file (chunked, leased, done
        once and cached). ``None`` means there is no file to map — the
        caller should fall back to :meth:`open` in-process.
        """
        if self.path is not None:
            return self.path, self.offset
        if self.key is None:
            return None
        resolve = getattr(self.store, "mappable_path", None)
        if resolve is None:
            return None
        path = resolve(self.key)
        return (path, 0) if path is not None else None

    def writer(self) -> np.ndarray:
        """A mutable mapping (owned blocks only)."""
        if not self.owned:
            raise StorageError("cannot write into an external StoredTensor")
        return self.store.writer(self.key)

    def close(self) -> None:
        """Reclaim the underlying block now (owned handles only)."""
        if self._finalizer is not None:
            self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.path if self.path else f"memory:{self.key}"
        return (
            f"StoredTensor(shape={self.shape}, dtype={self.dtype}, "
            f"at={where!r}, owned={self.owned})"
        )


def _delete_block(store: BlockStore, key: str) -> None:
    """Finalizer: reclaim an owned block (quiet after store close)."""
    try:
        store.delete(key)
    except (StorageError, OSError):  # pragma: no cover - already torn down
        pass


# --------------------------------------------------------------------- #
# prefetch support
# --------------------------------------------------------------------- #


def warm_pages(
    array: np.ndarray,
    *,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    max_bytes: int | None = None,
    gauge: ResidentGauge | None = None,
) -> int:
    """Fault an array's backing pages into the page cache; returns bytes.

    The load half of double-buffered prefetch: while one item computes,
    the *next* item's memory-mapped backing file (a lazily opened
    ``.npy``, a spill block) is touched here — one element per page,
    chunk by chunk — so the upcoming ``distribute`` reads hot pages
    instead of stalling on disk. Resident ndarrays are already paged in
    and return 0 untouched.

    ``max_bytes`` caps the warmed prefix (a serving worker warming under
    a memory budget must not evict the executing run's working set);
    each chunk's footprint is leased from ``gauge`` while it is being
    touched, keeping prefetch inside the same measured-resident
    discipline as spill I/O. Purely advisory: any failure to warm is the
    caller's cue to proceed cold, never an error.
    """
    if array is None or not isinstance(array, np.memmap):
        return 0
    nbytes = int(array.nbytes)
    if nbytes == 0:
        return 0
    limit = nbytes if max_bytes is None else min(nbytes, int(max_bytes))
    if limit <= 0:
        return 0
    try:
        flat = array.reshape(-1)
    except (AttributeError, ValueError):  # non-contiguous mapping
        return 0
    itemsize = int(array.itemsize)
    step = max(1, int(chunk_bytes) // itemsize)
    page_stride = max(1, 4096 // itemsize)
    touched = 0
    pos = 0
    while pos < flat.size and pos * itemsize < limit:
        end = min(flat.size, pos + step)
        chunk = (end - pos) * itemsize
        if gauge is not None:
            with gauge.lease(chunk):
                float(flat[pos:end:page_stride].sum())
        else:
            float(flat[pos:end:page_stride].sum())
        touched += chunk
        pos = end
    return touched
