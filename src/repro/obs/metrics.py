"""Counters, gauges and histograms for the observability layer.

A :class:`MetricsRegistry` is a named bag of three instrument kinds:

* :class:`Counter` — monotonically increasing totals (plan-cache hits,
  spill I/O bytes, runs executed);
* :class:`Gauge` — last-written values with a retained high-water mark
  (:class:`~repro.storage.store.ResidentGauge` peak, pool utilization);
* :class:`Histogram` — observed samples with percentile summaries
  (per-step seconds), computed by the same
  :func:`repro.bench.percentiles.percentile_curve` the benchmark layer
  uses, so trace summaries and bench reports quote identical
  percentile semantics.

Instruments are created on first use (``registry.counter("x").inc()``)
and are thread-safe: out-of-core helper threads bump spill counters
concurrently with the main thread.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "safe_rate"]

DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


def safe_rate(count: float, seconds: float) -> float:
    """``count / seconds`` that can never raise or report ``inf``/``nan``.

    Throughput reports divide by wall seconds derived from root spans;
    a zero-duration span (sub-tick run) or a crash-truncated trace
    (seconds 0, negative, or non-finite) must degrade to a 0.0 rate in
    the JSON payload, not poison it. Used by batch and serving stats.
    """
    try:
        count = float(count)
        seconds = float(seconds)
    except (TypeError, ValueError):
        return 0.0
    if not math.isfinite(count) or not math.isfinite(seconds) or seconds <= 0.0:
        return 0.0
    rate = count / seconds
    return rate if math.isfinite(rate) else 0.0


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A last-written value that remembers its high-water mark."""

    __slots__ = ("name", "_value", "_peak", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._peak = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if value > self._peak:
                self._peak = float(value)

    def max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (peak tracking)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)
            if value > self._peak:
                self._peak = float(value)

    @property
    def value(self) -> float:
        return self._value

    @property
    def peak(self) -> float:
        return self._peak


class Histogram:
    """Observed samples with count/total/percentile summaries."""

    __slots__ = ("name", "_values", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        return tuple(self._values)

    def percentiles(
        self, points: Sequence[float] = DEFAULT_PERCENTILES
    ) -> dict[float, float]:
        """``{percentile: value}`` over the observed samples."""
        # Imported lazily: repro.bench.__init__ pulls in the session
        # layer, which imports repro.obs — a top-level import here would
        # close that cycle.
        from repro.bench.percentiles import percentile_curve

        with self._lock:
            if not self._values:
                return {float(p): 0.0 for p in points}
            curve = percentile_curve(self._values, points)
        return {float(p): float(v) for p, v in curve.items()}

    def summary(self) -> dict[str, float]:
        with self._lock:
            values = list(self._values)
        if not values:
            return {"count": 0.0, "total": 0.0, "mean": 0.0}
        out = {
            "count": float(len(values)),
            "total": float(sum(values)),
            "mean": float(sum(values) / len(values)),
        }
        out.update(
            {f"p{p:g}": v for p, v in self.percentiles().items()}
        )
        return out


class MetricsRegistry:
    """A named collection of instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict dump (JSON-serializable) of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {
                n: {"value": g.value, "peak": g.peak}
                for n, g in sorted(gauges.items())
            },
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
        }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
