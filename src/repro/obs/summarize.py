"""Model-vs-measured trace summaries.

The paper's central claim is a communication-volume model — every TTM at
a node with output ``Out`` on grid ``g`` moves ``(g_n - 1)|Out|``
elements, every regrid ``|X|``. :func:`modeled_step_volumes` evaluates
that model **per schedule step tag**, and :func:`summarize` joins those
modeled charges against the measured per-step seconds/elements a trace
recorded — the table ``repro trace summarize`` prints.

Step tags repeat across HOOI iterations (``hooi:it0:ttm:n3``,
``hooi:it1:ttm:n3``, ...); :func:`canonical_tag` strips the iteration
prefix so all iterations of one schedule step aggregate on one row, and
the modeled charge is understood *per occurrence*.
"""

from __future__ import annotations

import re
from typing import Any

from repro.core.planner import Plan

__all__ = [
    "canonical_tag",
    "format_summary",
    "modeled_step_volumes",
    "summarize",
]

_ITER_PREFIX = re.compile(r"^hooi:it\d+:")


def canonical_tag(tag: str) -> str:
    """Fold per-iteration tags onto their schedule step.

    ``hooi:it2:core:ttm1`` -> ``core:ttm1``; tags without an iteration
    prefix (``sthosvd:svd0``, ``norm:input``) pass through unchanged.
    """
    return _ITER_PREFIX.sub("", tag)


def modeled_step_volumes(plan: Plan) -> dict[str, int]:
    """The paper's per-step communication charges, keyed by canonical tag.

    Tree steps: ``ttm:n{uid}`` carries ``(g_n - 1)|Out(u)|`` and
    ``regrid:n{uid}`` carries ``|In(u)|`` when node ``u``'s grid differs
    from its parent's (0 otherwise — the schedule still emits the step,
    the engine moves ~nothing). Core-chain steps: ``core:ttm{mode}`` and
    ``core:regrid{i}`` under the same model along the chain's partially
    multiplied cardinalities. Sums over these entries reproduce
    ``plan.ttm_volume`` / ``plan.regrid_volume`` /
    ``plan.core_ttm_volume`` / ``plan.core_regrid_volume`` exactly.
    """
    from repro.core.volume import node_volumes

    meta = plan.meta
    out: dict[str, int] = {}
    vols = node_volumes(plan.tree, meta, plan.scheme.assignment)
    for node in plan.tree.internal_nodes():
        if node.kind != "ttm":
            continue
        entry = vols[node.uid]
        out[f"ttm:n{node.uid}"] = int(entry["ttm"])
        out[f"regrid:n{node.uid}"] = int(entry["regrid"])
    # The new-core chain: cardinalities of the partially multiplied
    # tensor shrink as modes are applied in ``core_order``.
    order = tuple(plan.core_order)
    if order:
        cards = [meta.cardinality]
        premult = 0
        for mode in order:
            premult |= 1 << mode
            cards.append(meta.card_after(premult))
        core_scheme = tuple(plan.core_scheme)
        prev_grid = tuple(plan.initial_grid)
        for i, mode in enumerate(order):
            grid = tuple(core_scheme[i]) if core_scheme else prev_grid
            if core_scheme:
                out[f"core:regrid{i}"] = (
                    int(cards[i]) if grid != prev_grid else 0
                )
            out[f"core:ttm{mode}"] = (grid[mode] - 1) * int(cards[i + 1])
            prev_grid = grid
    return out


def summarize(trace) -> list[dict[str, Any]]:
    """Aggregate a trace's step spans per canonical tag.

    Returns one row dict per tag with ``count`` (occurrences), the
    modeled per-occurrence volume (from the trace's embedded
    ``modeled_volumes`` metadata, ``None`` when the tag is outside the
    model — norms, SVDs), and measured totals: ``seconds``, ``elements``
    (communicated), ``bytes`` (elements x working itemsize), ``flops``.
    Rows are ordered by measured seconds, descending.
    """
    itemsize = int(trace.meta.get("itemsize", 8))
    modeled = dict(trace.meta.get("modeled_volumes") or {})
    rows: dict[str, dict[str, Any]] = {}
    for span in trace.spans:
        if span.kind != "step":
            continue
        tag = canonical_tag(span.name)
        row = rows.setdefault(
            tag,
            {
                "tag": tag,
                "count": 0,
                "modeled_elements": modeled.get(tag),
                "seconds": 0.0,
                "elements": 0.0,
                "bytes": 0.0,
                "flops": 0.0,
            },
        )
        row["count"] += 1
        row["seconds"] += span.seconds
        elements = float(span.attrs.get("elements", 0.0) or 0.0)
        row["elements"] += elements
        row["bytes"] += elements * itemsize
        row["flops"] += float(span.attrs.get("flops", 0.0) or 0.0)
    return sorted(rows.values(), key=lambda r: -r["seconds"])


def _fmt_num(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e6:
        return f"{value:.3g}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def format_summary(rows: list[dict[str, Any]], *, title: str | None = None) -> str:
    """Render :func:`summarize` rows as an aligned text table.

    ``model elems`` is the paper's ``(q_n - 1)|Out|`` (or ``|X|`` regrid)
    charge per occurrence; ``meas elems`` is the engine's actual moved
    elements per occurrence, for direct comparison. A ``-`` marks tags
    the volume model does not cover.
    """
    from repro.bench.report import ascii_table

    headers = [
        "step tag",
        "n",
        "model elems",
        "meas elems",
        "meas MB",
        "seconds",
    ]
    table_rows = []
    for row in rows:
        count = max(1, int(row["count"]))
        modeled = row["modeled_elements"]
        table_rows.append(
            [
                row["tag"],
                row["count"],
                "-" if modeled is None else _fmt_num(float(modeled)),
                _fmt_num(row["elements"] / count),
                f"{row['bytes'] / 1e6:.3f}",
                f"{row['seconds']:.6f}",
            ]
        )
    return ascii_table(headers, table_rows, title=title)
