"""Zero-dependency observability: tracing, metrics, exporters, summaries.

The package threads through the whole stack without touching the hot
path when disabled:

* :class:`~repro.obs.trace.Tracer` / :data:`~repro.obs.trace.NULL_TRACER`
  — nested spans with monotonic timings; ledger records become step
  spans via the :class:`~repro.mpi.stats.StatsLedger` observer hook.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms (percentiles via :mod:`repro.bench.percentiles`).
* :mod:`~repro.obs.export` — Chrome trace-event (Perfetto-loadable) and
  JSON-lines writers with lossless round-trip loaders.
* :mod:`~repro.obs.summarize` — the model-vs-measured per-step table
  behind ``repro trace summarize``.

Enable per session (``TuckerSession(trace=True)``, read
``result.trace``) or per CLI invocation (``repro decompose --trace
out.json``).
"""

from repro.obs.export import (
    load_chrome,
    load_trace,
    read_jsonl,
    to_chrome,
    to_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    safe_rate,
)
from repro.obs.summarize import (
    canonical_tag,
    format_summary,
    modeled_step_volumes,
    summarize,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Trace,
    Tracer,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Trace",
    "Tracer",
    "canonical_tag",
    "format_summary",
    "load_chrome",
    "load_trace",
    "modeled_step_volumes",
    "read_jsonl",
    "safe_rate",
    "summarize",
    "to_chrome",
    "to_jsonl",
    "write_chrome",
    "write_jsonl",
]
