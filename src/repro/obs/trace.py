"""Span tracing with monotonic timings.

The tracer is the observability layer's core primitive: a :class:`Tracer`
produces nested :class:`Span` records (``compile``, ``distribute``, one
span per schedule :class:`~repro.backends.schedule.Step` keyed by its
ledger tag, spill reads/writes, procpool worker fragments) with
``perf_counter`` timings and free-form attributes (bytes moved, FLOPs,
block counts).

Design points:

* **Off by default, near-zero overhead.** Code paths hold a tracer
  reference unconditionally and call it unconditionally; when tracing is
  disabled that reference is :data:`NULL_TRACER`, whose ``span()`` returns
  a shared no-op context manager and whose every other method is a
  constant-return stub — no allocation, no branching at call sites.
* **Step spans mirror the ledger.** Backends already account every
  kernel and collective in their :class:`~repro.mpi.stats.StatsLedger`;
  the tracer plugs into the ledger's ``observer`` hook and converts each
  :class:`~repro.mpi.stats.Record` into a retroactive leaf span named
  exactly by the record's tag. The span step-tag set therefore equals the
  ledger tag set *by construction*, on every backend — golden-ledger
  configs are golden-trace configs too.
* **Scoped like the ledger.** ``mark()`` / ``drain(mark)`` mirror
  ``StatsLedger.mark`` / ``since``: a long-lived session tracer serves
  many runs, each run slicing out exactly its own spans.
* **Cross-process spans are safe on Linux.** ``perf_counter`` is
  ``CLOCK_MONOTONIC``, shared across processes, so worker fragments
  shipped back by forked procpool workers land on the same timeline as
  parent spans.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Trace",
    "Tracer",
]


# Span kinds — `step` is reserved for ledger-derived spans so tag-set
# comparisons against the ledger never see phase/io/worker spans.
KINDS = ("phase", "step", "io", "worker")


@dataclass
class SpanEvent:
    """An instantaneous, timestamped marker inside a span."""

    name: str
    t: float
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One timed interval on the trace timeline.

    ``sid`` is unique within its tracer; ``parent`` is the enclosing
    span's sid (``None`` for roots). ``kind`` is one of ``"phase"``
    (session-level stages: run, compile, distribute, sthosvd,
    ``hooi:itN``...), ``"step"`` (ledger-derived, named exactly by the
    ledger tag), ``"io"`` (spill store reads/writes), or ``"worker"``
    (procpool worker fragments).
    """

    sid: int
    name: str
    kind: str
    start: float
    end: float
    parent: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


class _NullSpan:
    """The shared no-op returned by :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    @property
    def seconds(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a constant-return no-op.

    Instrumented code holds a tracer unconditionally; pointing it here
    keeps the hot path free of ``if tracing:`` branches and allocations.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, kind: str = "phase", **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        kind: str = "phase",
        parent: int | None = None,
        **attrs: Any,
    ) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def on_record(self, record) -> None:
        pass

    def mark(self) -> int:
        return 0

    def drain(self, mark: int = 0) -> "Trace":
        return Trace(spans=())


NULL_TRACER = NullTracer()


class _ActiveSpan:
    """Context manager binding one open :class:`Span` to its tracer.

    ``__exit__`` always closes and records the span — an exception inside
    the body stamps an ``error`` attribute instead of losing the span, so
    partial traces survive crashes (a procpool worker death mid-kernel
    still leaves the enclosing phase span in the trace).
    """

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        self.span.start = perf_counter()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.end = perf_counter()
        if exc_type is not None:
            self.span.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Records nested spans on a single monotonic timeline.

    Spans land in completion order (a parent closes after its children).
    The open-span stack is per-tracer, guarded by a lock: helper threads
    (out-of-core block readers) may add spans and events concurrently
    with the main thread; their retroactive spans parent onto whatever
    span is currently open, which is exactly the enclosing kernel.
    """

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._lock = threading.Lock()
        self._next_sid = 0
        self._orphan_events: list[SpanEvent] = []

    enabled = True

    # -- recording -------------------------------------------------------- #

    def _new_sid(self) -> int:
        self._next_sid += 1
        return self._next_sid

    def _push(self, span: Span) -> None:
        with self._lock:
            self._stack.append(span)

    def _pop(self, span: Span) -> None:
        with self._lock:
            # Identity, not equality: dataclass == could match a sibling
            # span with identical fields.
            for i in range(len(self._stack) - 1, -1, -1):
                if self._stack[i] is span:
                    del self._stack[i]
                    break
            self._spans.append(span)

    @property
    def current(self) -> Span | None:
        """The innermost open span (``None`` outside any span)."""
        with self._lock:
            return self._stack[-1] if self._stack else None

    def span(self, name: str, kind: str = "phase", **attrs: Any) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        with self._lock:
            parent = self._stack[-1].sid if self._stack else None
            sid = self._new_sid()
        return _ActiveSpan(
            self,
            Span(
                sid=sid,
                name=name,
                kind=kind,
                start=0.0,
                end=0.0,
                parent=parent,
                attrs=dict(attrs),
            ),
        )

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        kind: str = "phase",
        parent: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-timed span (ledger records, worker fragments).

        ``parent`` defaults to the currently open span.
        """
        with self._lock:
            if parent is None and self._stack:
                parent = self._stack[-1].sid
            span = Span(
                sid=self._new_sid(),
                name=name,
                kind=kind,
                start=start,
                end=end,
                parent=parent,
                attrs=dict(attrs),
            )
            self._spans.append(span)
            return span

    def event(self, name: str, **attrs: Any) -> None:
        """Attach an instant event to the innermost open span.

        Outside any span the event is buffered and attached to the next
        span that closes into the trace (or dropped at ``drain`` if none
        does) — selection decisions fire before the run span opens.
        """
        evt = SpanEvent(name=name, t=perf_counter(), attrs=dict(attrs))
        with self._lock:
            if self._stack:
                self._stack[-1].events.append(evt)
            else:
                self._orphan_events.append(evt)

    def annotate(self, **attrs: Any) -> None:
        """Merge attributes into the innermost open span (no-op outside)."""
        with self._lock:
            if self._stack:
                self._stack[-1].attrs.update(attrs)

    def on_record(self, record) -> None:
        """The :class:`~repro.mpi.stats.StatsLedger` observer hook.

        Converts one ledger :class:`~repro.mpi.stats.Record` into a
        retroactive leaf span named by the record's tag. The record is
        appended right after its kernel finished, so ``now - seconds``
        reconstructs the start; simcluster records *modeled* seconds, so
        its step spans show modeled critical-path time on the wall-clock
        timeline (documented, intentional — the ledger is the source of
        truth for what a step cost).
        """
        now = perf_counter()
        self.add_span(
            record.tag,
            now - record.seconds,
            now,
            kind="step",
            category=record.category,
            op=record.op,
            group_size=record.group_size,
            elements=record.elements,
            flops=record.flops,
        )

    # -- scoping ---------------------------------------------------------- #

    def mark(self) -> int:
        """Opaque position marker for :meth:`drain` (mirrors the ledger)."""
        with self._lock:
            return len(self._spans)

    def drain(self, mark: int = 0) -> "Trace":
        """Slice out (and remove) every span recorded after ``mark``."""
        with self._lock:
            spans = tuple(self._spans[mark:])
            del self._spans[mark:]
            self._orphan_events.clear()
        return Trace(spans=spans)


# --------------------------------------------------------------------- #
# the drained, immutable result
# --------------------------------------------------------------------- #


@dataclass
class Trace:
    """A drained collection of spans plus run-level metadata.

    ``meta`` carries whatever the producer attached — the session stores
    the backend name, working dtype itemsize, modeled per-step volumes
    (the paper's ``(q_n-1)|Out|`` charges) and a metrics snapshot, so a
    saved trace is self-contained for ``repro trace summarize``.
    """

    spans: tuple[Span, ...]
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def seconds(self) -> float:
        """Wall span of the whole trace (max end - min start)."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def roots(self) -> list[Span]:
        """Spans whose parent is absent from this trace (top-level)."""
        sids = {s.sid for s in self.spans}
        return [s for s in self.spans if s.parent not in sids]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.sid]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def by_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def step_tags(self) -> set[str]:
        """The set of ledger tags this trace observed (``kind="step"``)."""
        return {s.name for s in self.spans if s.kind == "step"}

    def validate(self) -> None:
        """Structural invariants: raises ``AssertionError`` on violation.

        Every span has non-negative duration, a known kind, a unique sid,
        and — when its parent is present in the trace — starts and ends
        within the parent's interval (small slack for retroactive step
        spans whose ledger-recorded seconds include sub-``perf_counter``
        bookkeeping around the kernel).
        """
        sids: dict[int, Span] = {}
        for s in self.spans:
            assert s.kind in KINDS, f"span {s.name!r}: unknown kind {s.kind!r}"
            assert s.end >= s.start, f"span {s.name!r}: negative duration"
            assert s.sid not in sids, f"duplicate sid {s.sid}"
            sids[s.sid] = s
        slack = 1e-4
        for s in self.spans:
            parent = sids.get(s.parent) if s.parent is not None else None
            if parent is None:
                continue
            assert s.start >= parent.start - slack, (
                f"span {s.name!r} starts before parent {parent.name!r}"
            )
            assert s.end <= parent.end + slack, (
                f"span {s.name!r} ends after parent {parent.name!r}"
            )

    @classmethod
    def merge(cls, traces: Iterable["Trace"]) -> "Trace":
        """Concatenate traces onto one timeline (batch = root + items).

        Sids are remapped to stay unique; parents follow. ``meta`` maps
        merge first-wins per key, so the batch root's metadata dominates.
        """
        spans: list[Span] = []
        meta: dict[str, Any] = {}
        offset = 0
        for trace in traces:
            remap = {s.sid: s.sid + offset for s in trace.spans}
            for s in trace.spans:
                spans.append(
                    Span(
                        sid=remap[s.sid],
                        name=s.name,
                        kind=s.kind,
                        start=s.start,
                        end=s.end,
                        parent=remap.get(s.parent) if s.parent is not None else None,
                        attrs=dict(s.attrs),
                        events=list(s.events),
                    )
                )
            if trace.spans:
                offset = max(s.sid for s in spans)
            for key, value in trace.meta.items():
                meta.setdefault(key, value)
        return cls(spans=tuple(spans), meta=meta)

    # -- persistence (delegates to repro.obs.export) ----------------------- #

    def save(self, path: str, format: str | None = None) -> None:
        """Write this trace to ``path``.

        ``format`` is ``"chrome"`` (trace-event JSON, loadable in
        Perfetto / ``chrome://tracing``) or ``"jsonl"`` (one span per
        line); by default inferred from the extension (``.jsonl`` →
        JSON-lines, anything else → Chrome).
        """
        from repro.obs.export import write_chrome, write_jsonl

        if format is None:
            format = "jsonl" if str(path).endswith(".jsonl") else "chrome"
        if format == "chrome":
            write_chrome(self, path)
        elif format == "jsonl":
            write_jsonl(self, path)
        else:
            raise ValueError(f"unknown trace format {format!r}")

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace written by :meth:`save` (either format)."""
        from repro.obs.export import load_trace

        return load_trace(path)
