"""Trace exporters: Chrome trace-event JSON and JSON-lines.

Chrome format follows the trace-event spec's "JSON object format": a
top-level object with ``traceEvents`` (one complete ``"X"`` event per
span, microsecond timestamps relative to the trace epoch) plus
``otherData`` carrying the trace's run-level metadata. The files load
directly in Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.

Round-tripping is lossless: each event's ``args`` carries the span's
sid/parent/kind/attrs *and* its full-precision ``t0``/``t1`` (Chrome's
integer-microsecond ``ts``/``dur`` would otherwise truncate
``perf_counter`` resolution), so ``load_trace(write_chrome(t)) == t``
up to dataclass equality.

JSON-lines is the streaming-friendly sibling: line 1 is a ``meta``
header, every following line one span.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.trace import Span, SpanEvent, Trace

__all__ = [
    "load_chrome",
    "load_trace",
    "read_jsonl",
    "to_chrome",
    "to_jsonl",
    "write_chrome",
    "write_jsonl",
]

# Lane assignment: Perfetto draws one track per (pid, tid). Main-process
# spans nest on their kind's lane; worker spans land on a per-worker-pid
# lane so pool fan-outs render as parallel tracks.
_TIDS = {"phase": 1, "step": 2, "io": 3, "worker": 4}


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / tuples into plain JSON types."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "item") and callable(value.item):
        try:
            return value.item()
        except (TypeError, ValueError):
            return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _span_record(span: Span) -> dict[str, Any]:
    """The canonical JSON shape of one span (shared by both formats)."""
    out: dict[str, Any] = {
        "sid": span.sid,
        "name": span.name,
        "kind": span.kind,
        "t0": span.start,
        "t1": span.end,
        "parent": span.parent,
        "attrs": _jsonable(span.attrs),
    }
    if span.events:
        out["events"] = [
            {"name": e.name, "t": e.t, "attrs": _jsonable(e.attrs)}
            for e in span.events
        ]
    return out


def _span_from_record(d: dict[str, Any]) -> Span:
    return Span(
        sid=int(d["sid"]),
        name=d["name"],
        kind=d["kind"],
        start=float(d["t0"]),
        end=float(d["t1"]),
        parent=int(d["parent"]) if d.get("parent") is not None else None,
        attrs=dict(d.get("attrs") or {}),
        events=[
            SpanEvent(
                name=e["name"], t=float(e["t"]), attrs=dict(e.get("attrs") or {})
            )
            for e in d.get("events", ())
        ],
    )


# --------------------------------------------------------------------- #
# Chrome trace-event format
# --------------------------------------------------------------------- #


def to_chrome(trace: Trace) -> dict[str, Any]:
    """Build the Chrome trace-event JSON object for ``trace``."""
    epoch = min((s.start for s in trace.spans), default=0.0)
    events: list[dict[str, Any]] = []
    for span in trace.spans:
        record = _span_record(span)
        args = {
            "sid": record["sid"],
            "parent": record["parent"],
            "kind": record["kind"],
            "t0": record["t0"],
            "t1": record["t1"],
        }
        args.update(record["attrs"])
        tid = _TIDS.get(span.kind, 1)
        if span.kind == "worker" and "pid" in span.attrs:
            tid = 1000 + int(span.attrs["pid"]) % 1000
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": (span.start - epoch) * 1e6,
                "dur": span.seconds * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
        for evt in span.events:
            events.append(
                {
                    "name": evt.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": (evt.t - epoch) * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": dict(
                        _jsonable(evt.attrs), span=span.sid, t=evt.t
                    ),
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": _jsonable(dict(trace.meta)),
    }


def write_chrome(trace: Trace, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome(trace), fh)
        fh.write("\n")


def load_chrome(path: str) -> Trace:
    """Reconstruct a :class:`Trace` from a Chrome trace-event file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return from_chrome(doc)


def from_chrome(doc: dict[str, Any]) -> Trace:
    if "traceEvents" not in doc:
        raise ValueError("not a Chrome trace-event document")
    spans: dict[int, Span] = {}
    pending_events: list[dict[str, Any]] = []
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "X":
            args = dict(event.get("args") or {})
            sid = int(args.pop("sid"))
            parent = args.pop("parent", None)
            kind = args.pop("kind", event.get("cat", "phase"))
            t0 = float(args.pop("t0"))
            t1 = float(args.pop("t1"))
            spans[sid] = Span(
                sid=sid,
                name=event["name"],
                kind=kind,
                start=t0,
                end=t1,
                parent=int(parent) if parent is not None else None,
                attrs=args,
            )
        elif event.get("ph") == "i":
            pending_events.append(event)
    for event in pending_events:
        args = dict(event.get("args") or {})
        sid = args.pop("span", None)
        t = args.pop("t", None)
        if sid is not None and int(sid) in spans and t is not None:
            spans[int(sid)].events.append(
                SpanEvent(name=event["name"], t=float(t), attrs=args)
            )
    ordered = tuple(spans[sid] for sid in sorted(spans))
    return Trace(spans=ordered, meta=dict(doc.get("otherData") or {}))


# --------------------------------------------------------------------- #
# JSON-lines format
# --------------------------------------------------------------------- #


def to_jsonl(trace: Trace) -> str:
    lines = [json.dumps({"meta": _jsonable(dict(trace.meta))})]
    lines.extend(json.dumps(_span_record(s)) for s in trace.spans)
    return "\n".join(lines) + "\n"


def write_jsonl(trace: Trace, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(trace))


def read_jsonl(path: str) -> Trace:
    meta: dict[str, Any] = {}
    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            if "meta" in d and "sid" not in d:
                meta = dict(d["meta"] or {})
            else:
                spans.append(_span_from_record(d))
    return Trace(spans=tuple(spans), meta=meta)


def load_trace(path: str) -> Trace:
    """Load either format, sniffing the first byte (``{`` → Chrome)."""
    with open(path, "r", encoding="utf-8") as fh:
        head = fh.read(4096).lstrip()
    if head.startswith("{"):
        first = json.loads(head.split("\n", 1)[0]) if "\n" in head else None
        # A JSONL header line is itself a JSON object; distinguish by key.
        if first is not None and ("meta" in first or "sid" in first):
            return read_jsonl(path)
        return load_chrome(path)
    raise ValueError(f"{path}: not a repro trace file")
