"""HOOI drivers (paper Figure 2).

A single invocation maps ``{G; F_1..F_N} -> {G~; F~_1..F~_N}``:

1. for every mode ``n``, a TTM chain over all modes but ``n`` (realized via
   the plan's TTM-tree so chains share work) followed by the Gram-SVD of the
   mode-n unfolding — note all chains consume the *input* factors, exactly
   as Figure 2 specifies (tree reuse requires it);
2. the new core ``G~ = T x_1 F~_1^T ... x_N F~_N^T``.

``hooi_step_sequential`` / ``hooi_step_distributed`` remain the
single-invocation engine entry points. The iterate-to-convergence drivers
``hooi_sequential`` / ``hooi_distributed`` are **deprecated shims** over
:class:`repro.session.TuckerSession` (which runs the same compiled
schedules on any backend); they keep their historical signatures and
results. ``hooi_reference_step`` is the tree-free naive implementation
(N independent chains) used as the test oracle; it also offers the classic
Gauss-Seidel update (immediately reusing freshly computed factors), which
trees cannot express — comparing the two is one of the repo's extension
experiments.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.planner import Plan
from repro.dist.dtensor import DistTensor
from repro.hooi.decomposition import TuckerDecomposition
from repro.hooi.executor import (
    compute_core_distributed,
    compute_core_sequential,
    execute_tree_distributed,
    execute_tree_sequential,
)
from repro.mpi.comm import SimCluster
from repro.tensor.linalg import leading_left_singular_vectors
from repro.tensor.ttm import ttm_chain
from repro.tensor.unfold import unfold
from repro.util.dtypes import as_float


@dataclass
class HooiResult:
    """Outcome of an iterated HOOI run."""

    decomposition: TuckerDecomposition
    errors: list[float] = field(default_factory=list)
    iterations: int = 0

    @property
    def final_error(self) -> float:
        return self.errors[-1] if self.errors else float("nan")


# --------------------------------------------------------------------- #
# single invocations (engine-level, not deprecated)
# --------------------------------------------------------------------- #


def hooi_step_sequential(
    tensor: np.ndarray,
    factors: Sequence[np.ndarray],
    plan: Plan,
) -> TuckerDecomposition:
    """One HOOI invocation (Figure 2), sequentially, per ``plan``'s tree."""
    new_factors = execute_tree_sequential(
        tensor, factors, plan.tree, plan.meta
    )
    ordered = [new_factors[m] for m in range(plan.meta.ndim)]
    core = compute_core_sequential(tensor, ordered, plan.meta)
    return TuckerDecomposition(core=core, factors=ordered)


def hooi_step_distributed(
    dtensor: DistTensor,
    factors: Sequence[np.ndarray],
    plan: Plan,
    *,
    tag: str = "hooi",
) -> tuple[TuckerDecomposition, DistTensor]:
    """One HOOI invocation on the engine.

    Returns the new decomposition (with the core assembled — it is small)
    plus the distributed core. ``dtensor`` must live on
    ``plan.initial_grid``.
    """
    new_factors = execute_tree_distributed(dtensor, factors, plan, tag=tag)
    ordered = [new_factors[m] for m in range(plan.meta.ndim)]
    core_dist = compute_core_distributed(
        dtensor,
        ordered,
        plan.meta,
        core_order=plan.core_order or None,
        core_scheme=plan.core_scheme or None,
        tag=f"{tag}:core",
    )
    dec = TuckerDecomposition(core=core_dist.to_global(), factors=ordered)
    return dec, core_dist


# --------------------------------------------------------------------- #
# iterated drivers (deprecated shims over the session layer)
# --------------------------------------------------------------------- #


def _as_hooi_result(res) -> HooiResult:
    return HooiResult(
        decomposition=res.decomposition,
        errors=list(res.errors),
        iterations=res.n_iters,
    )


def hooi_sequential(
    tensor: np.ndarray,
    init: TuckerDecomposition,
    *,
    plan: Plan | None = None,
    n_procs: int = 1,
    max_iters: int = 10,
    tol: float = 1e-8,
) -> HooiResult:
    """Iterate HOOI until the error improvement drops below ``tol``.

    .. deprecated::
        Use ``TuckerSession(backend="sequential").hooi(...)`` instead.

    ``tol`` compares successive normalized errors; ``max_iters`` bounds the
    sweep count. The returned ``errors`` list has one entry per completed
    invocation (via the norm identity — free even for big tensors).
    """
    warnings.warn(
        "hooi_sequential() is deprecated; use "
        "repro.session.TuckerSession(backend='sequential').hooi(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.session import TuckerSession

    session = TuckerSession(backend="sequential")
    return _as_hooi_result(
        session.hooi(
            tensor,
            init,
            plan=plan,
            n_procs=n_procs,
            max_iters=max_iters,
            tol=tol,
        )
    )


def hooi_distributed(
    cluster: SimCluster,
    tensor: np.ndarray,
    init: TuckerDecomposition,
    *,
    plan: Plan | None = None,
    max_iters: int = 10,
    tol: float = 1e-8,
) -> HooiResult:
    """Iterated HOOI on the virtual cluster.

    .. deprecated::
        Use ``TuckerSession(backend="simcluster", cluster=...).hooi(...)``.

    ``tensor`` is distributed onto the plan's initial grid up front (the
    paper does not charge initial distribution). Per-iteration errors come
    from the norm identity using distributed norms, so no rank ever holds
    the full tensor during iteration.
    """
    warnings.warn(
        "hooi_distributed() is deprecated; use "
        "repro.session.TuckerSession(backend='simcluster', cluster=...)"
        ".hooi(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.session import TuckerSession

    session = TuckerSession(backend="simcluster", cluster=cluster)
    return _as_hooi_result(
        session.hooi(
            tensor,
            init,
            plan=plan,
            n_procs=cluster.n_procs,
            max_iters=max_iters,
            tol=tol,
        )
    )


# --------------------------------------------------------------------- #
# naive reference (test oracle + Gauss-Seidel extension)
# --------------------------------------------------------------------- #


def hooi_reference_step(
    tensor: np.ndarray,
    factors: Sequence[np.ndarray],
    core_dims: Sequence[int],
    *,
    update: str = "jacobi",
) -> TuckerDecomposition:
    """Tree-free HOOI invocation: N independent full chains.

    ``update="jacobi"`` matches the paper's Figure 2 (all chains read the
    input factors — what TTM-trees implement). ``update="gauss-seidel"`` is
    the classic alternating variant where mode ``n``'s chain already uses
    the new ``F~_j`` for ``j < n``; it cannot be expressed as a TTM-tree but
    converges at least as fast per sweep.
    """
    if update not in ("jacobi", "gauss-seidel"):
        raise ValueError(f"update must be jacobi|gauss-seidel, got {update!r}")
    tensor = as_float(tensor)
    n = tensor.ndim
    core_dims = tuple(int(k) for k in core_dims)
    current = [as_float(f, tensor.dtype) for f in factors]
    new: list[np.ndarray] = list(current)
    for mode in range(n):
        use = new if update == "gauss-seidel" else current
        z = ttm_chain(tensor, use, list(range(n)), transpose=True, skip=mode)
        f = leading_left_singular_vectors(unfold(z, mode), core_dims[mode])
        new = list(new)
        new[mode] = f
    core = ttm_chain(tensor, new, list(range(n)), transpose=True)
    return TuckerDecomposition(core=core, factors=new)
