"""Legacy one-call front door: ``tucker()``.

.. deprecated::
    ``tucker()`` is a thin shim over :class:`repro.session.TuckerSession`,
    which is the supported API: it compiles the plan once (with an LRU
    plan cache), runs on any :mod:`repro.backends` backend, and honors the
    input dtype. The shim remains for compatibility and emits a
    :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

import numpy as np

from repro.core.planner import Planner
from repro.mpi.comm import SimCluster
from repro.session import TuckerResult, TuckerSession

__all__ = ["TuckerResult", "tucker"]


def tucker(
    tensor: np.ndarray,
    core_dims: Sequence[int],
    *,
    cluster: SimCluster | None = None,
    n_procs: int | None = None,
    planner: str | Planner = "portfolio",
    max_iters: int = 10,
    tol: float = 1e-8,
    skip_hooi: bool = False,
    dtype=None,
) -> TuckerResult:
    """Compute a Tucker decomposition of ``tensor`` with core ``core_dims``.

    .. deprecated::
        Use :class:`repro.session.TuckerSession` — ``tucker(t, k)`` is
        ``TuckerSession().run(t, k)`` (sequential) or
        ``TuckerSession(backend="simcluster", cluster=c).run(t, k)``
        (distributed).

    Parameters
    ----------
    cluster:
        Run HOOI on this virtual cluster (distributed path). Without one,
        everything is sequential; ``n_procs`` (default 1) still drives the
        planner so plans remain comparable.
    planner:
        ``"portfolio"`` (model every configuration, keep the fastest — the
        default), any tree kind accepted by :class:`Planner` (planned with
        dynamic grids), or a ready :class:`Planner`.
    skip_hooi:
        Stop after STHOSVD (the paper notes STHOSVD alone suffices for some
        domains); the result then carries the STHOSVD decomposition.
    dtype:
        Working precision; by default float32 inputs stay float32 and
        everything else runs in float64.
    """
    warnings.warn(
        "tucker() is deprecated; use repro.session.TuckerSession "
        "(session.run(tensor, core_dims, ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    if cluster is not None:
        session = TuckerSession(backend="simcluster", cluster=cluster)
        procs = cluster.n_procs
    else:
        session = TuckerSession(backend="sequential")
        procs = n_procs or 1
    return session.run(
        tensor,
        core_dims,
        planner=planner,
        n_procs=procs,
        dtype=dtype,
        max_iters=max_iters,
        tol=tol,
        skip_hooi=skip_hooi,
    )
