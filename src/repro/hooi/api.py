"""One-call front door: ``tucker()``.

Wraps the full pipeline a downstream user wants by default: STHOSVD
initialization, portfolio (or named) planning, HOOI refinement to
tolerance, on either the sequential path or a virtual cluster.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.meta import TensorMeta
from repro.core.planner import Plan, Planner
from repro.hooi.decomposition import TuckerDecomposition
from repro.hooi.hooi import HooiResult, hooi_distributed, hooi_sequential
from repro.hooi.portfolio import select_plan
from repro.hooi.sthosvd import sthosvd
from repro.mpi.comm import SimCluster
from repro.util.validation import check_core_dims


@dataclass
class TuckerResult:
    """Everything ``tucker()`` produces."""

    decomposition: TuckerDecomposition
    plan: Plan
    errors: list[float]
    sthosvd_error: float

    @property
    def error(self) -> float:
        return self.errors[-1] if self.errors else self.sthosvd_error

    @property
    def compression_ratio(self) -> float:
        return self.decomposition.compression_ratio


def tucker(
    tensor: np.ndarray,
    core_dims: Sequence[int],
    *,
    cluster: SimCluster | None = None,
    n_procs: int | None = None,
    planner: str | Planner = "portfolio",
    max_iters: int = 10,
    tol: float = 1e-8,
    skip_hooi: bool = False,
) -> TuckerResult:
    """Compute a Tucker decomposition of ``tensor`` with core ``core_dims``.

    Parameters
    ----------
    cluster:
        Run HOOI on this virtual cluster (distributed path). Without one,
        everything is sequential; ``n_procs`` (default 1) still drives the
        planner so plans remain comparable.
    planner:
        ``"portfolio"`` (model every configuration, keep the fastest — the
        default), any tree kind accepted by :class:`Planner` (planned with
        dynamic grids), or a ready :class:`Planner`.
    skip_hooi:
        Stop after STHOSVD (the paper notes STHOSVD alone suffices for some
        domains); the result then carries the STHOSVD decomposition.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    core_dims = check_core_dims(core_dims, tensor.shape)
    meta = TensorMeta(dims=tensor.shape, core=core_dims)
    procs = cluster.n_procs if cluster is not None else (n_procs or 1)

    if isinstance(planner, Planner):
        plan = planner.plan(meta)
    elif planner == "portfolio":
        plan = select_plan(meta, procs).plan
    else:
        plan = Planner(procs, tree=planner, grid="dynamic").plan(meta)

    init = sthosvd(tensor, core_dims, mode_order="optimal")
    init_error = init.error_vs(tensor)
    if skip_hooi:
        return TuckerResult(
            decomposition=init,
            plan=plan,
            errors=[],
            sthosvd_error=init_error,
        )

    if cluster is not None:
        result: HooiResult = hooi_distributed(
            cluster, tensor, init, plan=plan, max_iters=max_iters, tol=tol
        )
    else:
        result = hooi_sequential(
            tensor, init, plan=plan, max_iters=max_iters, tol=tol
        )
    return TuckerResult(
        decomposition=result.decomposition,
        plan=plan,
        errors=result.errors,
        sthosvd_error=init_error,
    )
