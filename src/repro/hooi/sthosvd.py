"""Sequentially truncated HOSVD (Vannieuwenhoven et al.).

STHOSVD produces the initial decomposition HOOI then refines (paper
section 1). Processing modes one at a time, it computes the leading ``K_n``
left singular vectors of the *current* (already partially truncated)
tensor's mode-n unfolding, then immediately truncates along that mode —
so later modes see ever smaller tensors.

The paper remarks its ideas "can be recast and used for improving STHOSVD
as well": the obvious transfer is mode ordering, since a full truncation
pass is exactly one TTM chain. ``mode_order="optimal"`` applies the exact
chain-ordering comparator from :mod:`repro.core.ordering`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.meta import TensorMeta
from repro.core.ordering import optimal_chain_ordering
from repro.dist.dtensor import DistTensor
from repro.dist.gram import dist_leading_factor
from repro.dist.ttm import dist_ttm
from repro.hooi.decomposition import TuckerDecomposition
from repro.tensor.linalg import leading_eigvecs, gram
from repro.tensor.ttm import ttm
from repro.tensor.unfold import unfold
from repro.util.dtypes import as_float
from repro.util.validation import check_core_dims


def _resolve_order(
    order: str | Sequence[int] | None, dims: tuple[int, ...], core: tuple[int, ...]
) -> list[int]:
    if order is None or order == "natural":
        return list(range(len(dims)))
    if order == "optimal":
        return optimal_chain_ordering(TensorMeta(dims=dims, core=core))
    order = [int(m) for m in order]
    if sorted(order) != list(range(len(dims))):
        raise ValueError(f"mode_order must be a permutation, got {order}")
    return order


def sthosvd(
    tensor: np.ndarray,
    core_dims: Sequence[int],
    *,
    mode_order: str | Sequence[int] | None = None,
    dtype=None,
) -> TuckerDecomposition:
    """Sequential STHOSVD of a dense tensor.

    Returns a :class:`TuckerDecomposition` with orthonormal factors. The
    factors use the Gram + EVD route of the paper's engine. ``dtype``
    overrides the working precision; by default float32 inputs stay
    float32 and everything else runs in float64.
    """
    tensor = as_float(tensor, dtype)
    core_dims = check_core_dims(core_dims, tensor.shape)
    order = _resolve_order(mode_order, tensor.shape, core_dims)
    factors: list[np.ndarray | None] = [None] * tensor.ndim
    current = tensor
    for mode in order:
        f = leading_eigvecs(gram(unfold(current, mode)), core_dims[mode])
        factors[mode] = f
        current = ttm(current, f.T, mode)
    return TuckerDecomposition(core=current, factors=list(factors))


def sthosvd_grid_plan(
    dims: Sequence[int],
    core_dims: Sequence[int],
    n_procs: int,
    *,
    mode_order: str | Sequence[int] | None = "optimal",
) -> tuple[list[int], list[tuple[int, ...]], int, int]:
    """Dynamic-gridding plan for a distributed STHOSVD pass.

    The paper's introduction notes its ideas "can be recast and used for
    improving STHOSVD as well": one STHOSVD pass is a single TTM chain
    (with an SVD before each step), so the section-4.4 machinery applies
    directly via the path DP — including a free choice of the initial
    layout of ``T``.

    Returns ``(mode order, grid per step, ttm_volume, regrid_volume)``.
    """
    from repro.core.dynamic_grid import optimal_path_scheme

    dims = tuple(int(d) for d in dims)
    core_dims = check_core_dims(core_dims, dims)
    meta = TensorMeta(dims=dims, core=core_dims)
    order = _resolve_order(mode_order, dims, core_dims)
    grids, ttm_vol, regrid_vol = optimal_path_scheme(
        meta, order, None, n_procs
    )
    return order, grids, ttm_vol, regrid_vol


def dist_sthosvd(
    dtensor: DistTensor,
    core_dims: Sequence[int],
    *,
    mode_order: str | Sequence[int] | None = None,
    grid_scheme: Sequence[Sequence[int]] | None = None,
    tag: str = "sthosvd",
) -> tuple[DistTensor, list[np.ndarray]]:
    """Distributed STHOSVD on the engine.

    Returns ``(distributed core, replicated factors)``. By default the
    tensor's grid stays fixed throughout (a static scheme); passing
    ``grid_scheme`` (one grid per processed mode, e.g. from
    :func:`sthosvd_grid_plan`) regrids ahead of the steps that ask for it —
    dynamic gridding for STHOSVD. The factor extraction and TTMs record
    their volumes in the cluster ledger under ``tag``.
    """
    from repro.dist.regrid import regrid

    core_dims = check_core_dims(core_dims, dtensor.global_shape)
    order = _resolve_order(mode_order, dtensor.global_shape, core_dims)
    if grid_scheme is not None and len(grid_scheme) != len(order):
        raise ValueError(
            f"grid_scheme needs one grid per mode: {len(grid_scheme)} grids "
            f"for {len(order)} modes"
        )
    factors: list[np.ndarray | None] = [None] * len(core_dims)
    current = dtensor
    for i, mode in enumerate(order):
        if grid_scheme is not None:
            current = regrid(
                current, tuple(grid_scheme[i]), tag=f"{tag}:regrid{i}"
            )
        f = dist_leading_factor(
            current, mode, core_dims[mode], tag=f"{tag}:svd{mode}"
        )
        factors[mode] = f
        current = dist_ttm(current, f.T, mode, tag=f"{tag}:ttm{mode}")
    return current, list(factors)
