"""Plan execution: walking a TTM-tree sequentially or on the engine.

The executor realizes the paper's top-down process (section 3.1): each
internal node multiplies its parent's output along its mode by ``F_mode^T``
and the result is shared by all children; each leaf performs the SVD step.
Traversal is depth-first with children processed in order, so at most
``depth`` intermediate tensors are alive at once — the in-order bound the
paper cites.

Distributed execution additionally honors the plan's grid scheme: before a
node's TTM, if the scheme assigns the node a different grid from its
parent's, the parent's output is regridded (each child regrids its own copy;
the parent's representation is never mutated, matching the model's
per-child ``|In(u)|`` charge).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.meta import TensorMeta
from repro.core.ordering import optimal_chain_ordering
from repro.core.planner import Plan
from repro.core.trees import Node, TTMTree
from repro.dist.dtensor import DistTensor
from repro.dist.gram import dist_leading_factor
from repro.dist.regrid import regrid
from repro.dist.ttm import dist_ttm
from repro.tensor.linalg import leading_left_singular_vectors
from repro.tensor.ttm import ttm, ttm_chain
from repro.tensor.unfold import unfold


def _check_factors(
    factors: Sequence[np.ndarray], meta: TensorMeta
) -> list[np.ndarray]:
    factors = [np.asarray(f, dtype=np.float64) for f in factors]
    if len(factors) != meta.ndim:
        raise ValueError(f"need {meta.ndim} factors, got {len(factors)}")
    for n, f in enumerate(factors):
        if f.shape != (meta.dims[n], meta.core[n]):
            raise ValueError(
                f"factor {n} has shape {f.shape}, expected "
                f"{(meta.dims[n], meta.core[n])}"
            )
    return factors


def execute_tree_sequential(
    tensor: np.ndarray,
    factors: Sequence[np.ndarray],
    tree: TTMTree,
    meta: TensorMeta,
    *,
    svd_method: str = "gram",
) -> dict[int, np.ndarray]:
    """Run the TTM component + SVDs of one HOOI invocation, sequentially.

    Returns ``{mode: new factor}``. ``factors`` are the *current* factor
    matrices (the chains multiply by their transposes).
    """
    factors = _check_factors(factors, meta)
    new_factors: dict[int, np.ndarray] = {}

    def visit(node: Node, x: np.ndarray) -> None:
        for child in node.children:
            if child.kind == "ttm":
                visit(child, ttm(x, factors[child.mode].T, child.mode))
            else:
                new_factors[child.mode] = leading_left_singular_vectors(
                    unfold(x, child.mode), meta.core[child.mode], method=svd_method
                )

    visit(tree.root, np.asarray(tensor, dtype=np.float64))
    if sorted(new_factors) != list(range(meta.ndim)):
        raise AssertionError("tree execution did not produce every factor")
    return new_factors


def compute_core_sequential(
    tensor: np.ndarray,
    new_factors: Sequence[np.ndarray],
    meta: TensorMeta,
) -> np.ndarray:
    """New core ``G~ = T x_1 F~_1^T ... x_N F~_N^T`` (optimal chain order)."""
    order = optimal_chain_ordering(meta)
    return ttm_chain(
        np.asarray(tensor, dtype=np.float64),
        [new_factors[m] for m in order],
        order,
        transpose=True,
    )


def execute_tree_distributed(
    dtensor: DistTensor,
    factors: Sequence[np.ndarray],
    plan: Plan,
    *,
    tag: str = "hooi",
) -> dict[int, np.ndarray]:
    """Run one invocation's TTM component + SVDs on the engine.

    ``dtensor`` must be distributed on ``plan.initial_grid``. Factor inputs
    and outputs are replicated (they are small; the paper keeps a copy per
    processor). Communication lands in the cluster ledger with tags
    ``{tag}:ttm...``, ``{tag}:regrid...`` and ``{tag}:svd...``.
    """
    meta = plan.meta
    factors = _check_factors(factors, meta)
    if dtensor.global_shape != meta.dims:
        raise ValueError(
            f"tensor shape {dtensor.global_shape} != plan dims {meta.dims}"
        )
    if dtensor.grid.shape != plan.initial_grid:
        raise ValueError(
            f"tensor grid {dtensor.grid.shape} != plan initial grid "
            f"{plan.initial_grid}; distribute (or regrid) first"
        )
    tree = plan.tree
    scheme = plan.scheme
    new_factors: dict[int, np.ndarray] = {}

    def visit(node: Node, x: DistTensor) -> None:
        for child in node.children:
            if child.kind == "ttm":
                want = scheme.grid_of(child.uid)
                x_child = regrid(x, want, tag=f"{tag}:regrid:n{child.uid}")
                y = dist_ttm(
                    x_child,
                    factors[child.mode].T,
                    child.mode,
                    tag=f"{tag}:ttm:n{child.uid}",
                )
                visit(child, y)
            else:
                new_factors[child.mode] = dist_leading_factor(
                    x, child.mode, meta.core[child.mode],
                    tag=f"{tag}:svd:m{child.mode}",
                )

    visit(tree.root, dtensor)
    if sorted(new_factors) != list(range(meta.ndim)):
        raise AssertionError("tree execution did not produce every factor")
    return new_factors


def compute_core_distributed(
    dtensor: DistTensor,
    new_factors: Sequence[np.ndarray],
    meta: TensorMeta,
    *,
    core_order: Sequence[int] | None = None,
    core_scheme: Sequence[Sequence[int]] | None = None,
    tag: str = "core",
) -> DistTensor:
    """Distributed new-core chain.

    With ``core_scheme`` (one grid per chain position, from the plan), the
    tensor is regridded ahead of the steps that ask for it — the dynamic
    algorithm's path-DP gridding. Without it, the chain stays on the
    tensor's current grid.
    """
    order = list(core_order) if core_order else optimal_chain_ordering(meta)
    current = dtensor
    for i, mode in enumerate(order):
        if core_scheme is not None:
            current = regrid(
                current, tuple(core_scheme[i]), tag=f"{tag}:regrid{i}"
            )
        current = dist_ttm(
            current, new_factors[mode].T, mode, tag=f"{tag}:ttm{mode}"
        )
    return current
