"""Plan execution entry points (now routed through ``repro.backends``).

The executor realizes the paper's top-down process (section 3.1): each
internal node multiplies its parent's output along its mode by ``F_mode^T``
and the result is shared by all children; each leaf performs the SVD step.
Since the backend redesign, the tree walk itself lives in
:mod:`repro.backends.schedule` — trees are compiled once into flat Step
programs and replayed against an :class:`~repro.backends.ExecutionBackend`.
The functions here keep the historical signatures: they compile on the fly
and execute on a :class:`~repro.backends.SequentialBackend` (numpy) or a
:class:`~repro.backends.SimClusterBackend` wrapping the tensor's own
cluster, with the exact ledger tags the benchmark harness aggregates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.backends import (
    SequentialBackend,
    SimClusterBackend,
    compile_core_steps,
    compile_tree_steps,
    run_core_steps,
    run_tree_steps,
)
from repro.backends.schedule import check_factors
from repro.core.meta import TensorMeta
from repro.core.ordering import optimal_chain_ordering
from repro.core.planner import Plan
from repro.core.trees import TTMTree
from repro.dist.dtensor import DistTensor
from repro.util.dtypes import as_float


def _check_factors(
    factors: Sequence[np.ndarray], meta: TensorMeta
) -> list[np.ndarray]:
    """Back-compat alias for :func:`repro.backends.schedule.check_factors`."""
    return check_factors(factors, meta)


def execute_tree_sequential(
    tensor: np.ndarray,
    factors: Sequence[np.ndarray],
    tree: TTMTree,
    meta: TensorMeta,
    *,
    svd_method: str = "gram",
) -> dict[int, np.ndarray]:
    """Run the TTM component + SVDs of one HOOI invocation, sequentially.

    Returns ``{mode: new factor}``. ``factors`` are the *current* factor
    matrices (the chains multiply by their transposes).
    """
    tensor = as_float(tensor)
    factors = check_factors(factors, meta, dtype=tensor.dtype)
    steps = compile_tree_steps(tree, meta)
    new_factors = run_tree_steps(
        SequentialBackend(), tensor, factors, steps, method=svd_method
    )
    if sorted(new_factors) != list(range(meta.ndim)):
        raise AssertionError("tree execution did not produce every factor")
    return new_factors


def compute_core_sequential(
    tensor: np.ndarray,
    new_factors: Sequence[np.ndarray],
    meta: TensorMeta,
) -> np.ndarray:
    """New core ``G~ = T x_1 F~_1^T ... x_N F~_N^T`` (optimal chain order)."""
    order = optimal_chain_ordering(meta)
    steps = compile_core_steps(order)
    return run_core_steps(
        SequentialBackend(), as_float(tensor), list(new_factors), steps
    )


def execute_tree_distributed(
    dtensor: DistTensor,
    factors: Sequence[np.ndarray],
    plan: Plan,
    *,
    tag: str = "hooi",
) -> dict[int, np.ndarray]:
    """Run one invocation's TTM component + SVDs on the engine.

    ``dtensor`` must be distributed on ``plan.initial_grid``. Factor inputs
    and outputs are replicated (they are small; the paper keeps a copy per
    processor). Communication lands in the cluster ledger with tags
    ``{tag}:ttm...``, ``{tag}:regrid...`` and ``{tag}:svd...``.
    """
    meta = plan.meta
    factors = check_factors(factors, meta)
    if dtensor.global_shape != meta.dims:
        raise ValueError(
            f"tensor shape {dtensor.global_shape} != plan dims {meta.dims}"
        )
    if dtensor.grid.shape != plan.initial_grid:
        raise ValueError(
            f"tensor grid {dtensor.grid.shape} != plan initial grid "
            f"{plan.initial_grid}; distribute (or regrid) first"
        )
    steps = compile_tree_steps(plan.tree, meta, scheme=plan.scheme)
    backend = SimClusterBackend(dtensor.cluster)
    new_factors = run_tree_steps(backend, dtensor, factors, steps, tag=tag)
    if sorted(new_factors) != list(range(meta.ndim)):
        raise AssertionError("tree execution did not produce every factor")
    return new_factors


def compute_core_distributed(
    dtensor: DistTensor,
    new_factors: Sequence[np.ndarray],
    meta: TensorMeta,
    *,
    core_order: Sequence[int] | None = None,
    core_scheme: Sequence[Sequence[int]] | None = None,
    tag: str = "core",
) -> DistTensor:
    """Distributed new-core chain.

    With ``core_scheme`` (one grid per chain position, from the plan), the
    tensor is regridded ahead of the steps that ask for it — the dynamic
    algorithm's path-DP gridding. Without it, the chain stays on the
    tensor's current grid.
    """
    order = list(core_order) if core_order else optimal_chain_ordering(meta)
    steps = compile_core_steps(order, core_scheme)
    backend = SimClusterBackend(dtensor.cluster)
    return run_core_steps(
        backend, dtensor, list(new_factors), steps, tag=tag
    )
