"""The Tucker decomposition container and its error metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.meta import TensorMeta
from repro.tensor.dense import fro_norm, relative_error
from repro.tensor.ttm import ttm_chain
from repro.util.dtypes import as_float


@dataclass
class TuckerDecomposition:
    """``{G; F_1, ..., F_N}``: core tensor plus one factor matrix per mode.

    ``factors[n]`` has shape ``(L_n, K_n)``; the recovered tensor is
    ``Z = G x_1 F_1 ... x_N F_N`` (paper section 2.2).
    """

    core: np.ndarray
    factors: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Floating inputs keep their precision; everything else promotes
        # to the float64 default.
        self.core = as_float(self.core)
        self.factors = [as_float(f) for f in self.factors]
        if len(self.factors) != self.core.ndim:
            raise ValueError(
                f"need {self.core.ndim} factors, got {len(self.factors)}"
            )
        for n, f in enumerate(self.factors):
            if f.ndim != 2:
                raise ValueError(f"factor {n} must be 2-D, got shape {f.shape}")
            if f.shape[1] != self.core.shape[n]:
                raise ValueError(
                    f"factor {n} has {f.shape[1]} columns but core length is "
                    f"{self.core.shape[n]}"
                )
            if f.shape[0] < f.shape[1]:
                raise ValueError(
                    f"factor {n} is wide ({f.shape}); expected L_n >= K_n"
                )

    # -- shapes ----------------------------------------------------------- #

    @property
    def dims(self) -> tuple[int, ...]:
        """Shape of the recovered tensor (L_1, ..., L_N)."""
        return tuple(f.shape[0] for f in self.factors)

    @property
    def core_dims(self) -> tuple[int, ...]:
        return tuple(self.core.shape)

    @property
    def meta(self) -> TensorMeta:
        return TensorMeta(dims=self.dims, core=self.core_dims)

    @property
    def compression_ratio(self) -> float:
        """Elements of the full tensor / elements stored by the model."""
        stored = self.core.size + sum(f.size for f in self.factors)
        return math.prod(self.dims) / stored

    # -- numerics ----------------------------------------------------------#

    def reconstruct(self) -> np.ndarray:
        """The recovered tensor ``Z`` (materializes L_1 x ... x L_N)."""
        return ttm_chain(self.core, self.factors, list(range(self.core.ndim)))

    def factor_orthonormality(self) -> float:
        """``max_n || F_n^T F_n - I ||_max`` — 0 for exactly orthonormal."""
        worst = 0.0
        for f in self.factors:
            gap = f.T @ f - np.eye(f.shape[1])
            worst = max(worst, float(np.abs(gap).max()))
        return worst

    def error_vs(self, tensor: np.ndarray) -> float:
        """Explicit normalized error ``||T - Z||_F / ||T||_F``."""
        return relative_error(tensor, self.reconstruct())

    def implicit_error(self, tensor_norm: float) -> float:
        """Error via the norm identity (requires orthonormal factors).

        When ``G = T x_1 F_1^T ... x_N F_N^T`` with orthonormal ``F_n``
        (exactly what HOOI and STHOSVD produce), the recovered tensor is the
        orthogonal projection of ``T`` and
        ``||T - Z||^2 = ||T||^2 - ||G||^2``. This makes error tracking free
        even when ``T`` is huge and distributed.
        """
        t2 = float(tensor_norm) ** 2
        g2 = fro_norm(self.core) ** 2
        if t2 == 0.0:
            return 0.0
        return math.sqrt(max(t2 - g2, 0.0) / t2)
