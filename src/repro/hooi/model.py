"""Metadata-only performance model of one HOOI invocation.

The large benchmark (about 18k canonical tensors, up to 8e9 elements each)
cannot be *executed*, even by the real paper — its authors measure a single
invocation precisely because cost depends only on metadata. This module
closes the loop for us: given a :class:`~repro.core.planner.Plan` and a
:class:`~repro.mpi.machine.MachineModel`, it computes the exact FLOP and
volume totals (integers, same formulas the planner optimized) and alpha-beta
times for every phase of one invocation:

* TTM compute (per-rank dgemm), TTM reduce-scatter, regridding;
* the SVD step per leaf: mode-group allgather, distributed Gram (syrk),
  world allreduce of the Gram matrix, sequential EVD;
* the new-core chain (on the plan's initial grid, optimal chain order).

The engine-vs-model tests verify the volumes of an *executed* invocation
match these closed forms exactly (reduce-scatter/allgather/allreduce) or
are bounded by them (regrid, where the model charges the full ``|In(u)|``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost import node_costs
from repro.core.grids import svd_regrid_target
from repro.core.ordering import optimal_chain_ordering
from repro.core.planner import Plan
from repro.mpi.machine import MachineModel


@dataclass
class Phase:
    """Aggregated metrics of one phase of the invocation."""

    flops: int = 0
    volume: int = 0
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    def _add(self, flops=0, volume=0, compute_seconds=0.0, comm_seconds=0.0):
        self.flops += flops
        self.volume += volume
        self.compute_seconds += compute_seconds
        self.comm_seconds += comm_seconds


@dataclass
class ModelReport:
    """Predicted metrics of one HOOI invocation under a plan."""

    plan: Plan
    machine: MachineModel
    ttm: Phase = field(default_factory=Phase)
    regrid: Phase = field(default_factory=Phase)
    svd: Phase = field(default_factory=Phase)
    core: Phase = field(default_factory=Phase)

    # -- the aggregates the paper's figures use ------------------------- #

    @property
    def ttm_compute_seconds(self) -> float:
        """TTM computation time (Fig 11a/b; includes the core chain)."""
        return self.ttm.compute_seconds + self.core.compute_seconds

    @property
    def ttm_comm_seconds(self) -> float:
        """TTM communication time incl. regridding (Fig 11e semantics)."""
        return (
            self.ttm.comm_seconds
            + self.regrid.comm_seconds
            + self.core.comm_seconds
        )

    @property
    def tree_compute_seconds(self) -> float:
        """TTM-component compute time only (tree TTMs, no core chain)."""
        return self.ttm.compute_seconds

    @property
    def tree_comm_seconds(self) -> float:
        """TTM-component comm time only: reduce-scatter + regrid, no core."""
        return self.ttm.comm_seconds + self.regrid.comm_seconds

    @property
    def svd_seconds(self) -> float:
        return self.svd.seconds

    @property
    def total_seconds(self) -> float:
        """Overall invocation time (Fig 10 semantics)."""
        return (
            self.ttm.seconds
            + self.regrid.seconds
            + self.svd.seconds
            + self.core.seconds
        )

    @property
    def ttm_flops(self) -> int:
        """TTM-component load (Fig 11c/d; tree only, as in section 3)."""
        return self.ttm.flops

    @property
    def comm_volume(self) -> int:
        """TTM + regrid volume (Fig 11f semantics)."""
        return self.ttm.volume + self.regrid.volume

    def breakdown(self) -> dict[str, float]:
        """Stacked-bar decomposition used by the Fig 10c bench."""
        return {
            "svd": self.svd_seconds,
            "ttm_compute": self.ttm_compute_seconds,
            "ttm_comm": self.ttm_comm_seconds,
        }


def predict(
    plan: Plan,
    machine: MachineModel | None = None,
    *,
    include_svd: bool = True,
    include_core: bool = True,
) -> ModelReport:
    """Compute the :class:`ModelReport` of one invocation of ``plan``."""
    machine = machine if machine is not None else MachineModel.bgq_like()
    meta = plan.meta
    p = plan.n_procs
    tree = plan.tree
    scheme = plan.scheme
    costs = node_costs(tree, meta)
    report = ModelReport(plan=plan, machine=machine)

    for node in tree.nodes:
        if node.kind == "root":
            continue
        parent = tree.parent(node)
        if node.kind == "ttm":
            grid = scheme.grid_of(node.uid)
            parent_grid = scheme.grid_of(parent.uid)
            in_card = costs[node.uid]["in_card"]
            out_card = costs[node.uid]["out_card"]
            # regrid (charged in full, like the planner's model)
            if tuple(grid) != tuple(parent_grid):
                report.regrid._add(
                    volume=in_card,
                    comm_seconds=machine.alltoall_seconds(p, in_card / p),
                )
            # local dgemm
            flops = costs[node.uid]["flops"]
            report.ttm._add(
                flops=flops,
                compute_seconds=machine.gemm_seconds(flops / p),
            )
            # reduce-scatter over the mode group
            q = grid[node.mode]
            report.ttm._add(
                volume=(q - 1) * out_card,
                comm_seconds=machine.reduce_scatter_seconds(
                    q, (q - 1) * out_card / p
                ),
            )
        elif node.kind == "leaf" and include_svd:
            # SVD of the parent's output along the leaf mode.
            grid = scheme.grid_of(parent.uid)
            z_card = costs[parent.uid]["out_card"]
            z_lengths = meta.shape_after(tree.premultiplied_mask(parent))
            ell = meta.dims[node.mode]
            target = svd_regrid_target(tuple(grid), z_lengths, node.mode)
            if target is not None:
                # regrid path: redistribute Z so q_mode = 1, local syrk.
                if tuple(target) != tuple(grid):
                    report.svd._add(
                        volume=z_card,
                        comm_seconds=machine.alltoall_seconds(p, z_card / p),
                    )
            else:
                # allgather fallback within the mode group.
                q = grid[node.mode]
                report.svd._add(
                    volume=(q - 1) * z_card,
                    comm_seconds=machine.allgather_seconds(
                        q, (q - 1) * z_card / p
                    ),
                )
            # distributed syrk (fibers split across ranks)
            gram_flops = ell * (ell + 1) // 2 * (z_card // ell)
            report.svd._add(
                flops=gram_flops,
                compute_seconds=machine.gemm_seconds(gram_flops / p),
            )
            # world allreduce of the L x L Gram
            report.svd._add(
                volume=2 * ell * ell * (p - 1),
                comm_seconds=machine.allreduce_seconds(p, ell * ell),
            )
            # replicated sequential EVD
            evd_flops = int(4 * ell**3 // 3)
            report.svd._add(
                flops=evd_flops,
                compute_seconds=machine.evd_seconds(evd_flops),
            )

    if include_core:
        # New-core chain per the plan's core scheme (static grid for static
        # configurations, path-DP grids for the dynamic one).
        order = list(plan.core_order) or optimal_chain_ordering(meta)
        grids = list(plan.core_scheme) or [plan.initial_grid] * len(order)
        prev = plan.initial_grid
        premult = 0
        card = meta.cardinality
        for mode, grid in zip(order, grids):
            if tuple(grid) != tuple(prev):
                report.core._add(
                    volume=card,
                    comm_seconds=machine.alltoall_seconds(p, card / p),
                )
            flops = meta.core[mode] * card
            premult |= 1 << mode
            out_card = meta.card_after(premult)
            q = grid[mode]
            report.core._add(
                flops=flops,
                volume=(q - 1) * out_card,
                compute_seconds=machine.gemm_seconds(flops / p),
                comm_seconds=machine.reduce_scatter_seconds(
                    q, (q - 1) * out_card / p
                ),
            )
            card = out_card
            prev = grid

    return report
