"""Time-aware plan selection: a portfolio over algorithm configurations.

The paper optimizes FLOPs (tree) and volume (grids) separately and reports
that (opt-tree, dynamic) wins everywhere on its benchmark. On our suite a
small tail of tensors (small, tiny-core) disagrees: the FLOP-optimal tree
can be communication-hostile and regrids cannot amortize their latency
(EXPERIMENTS.md, Fig 10 deviation analysis). Since the model executor
prices a complete invocation in microseconds, the fix is an obvious
extension the paper stops short of: plan *every* configuration, model each,
and keep the fastest. Planning cost stays negligible (ablation C) and the
result dominates each individual configuration by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.meta import TensorMeta
from repro.core.planner import Plan, Planner
from repro.hooi.model import ModelReport, predict
from repro.mpi.machine import MachineModel

#: (tree kind, grid kind) pairs the portfolio prices by default: the
#: paper's evaluated configurations plus the chain/balanced trees under
#: dynamic gridding (cheap to add, occasionally the winner).
DEFAULT_CANDIDATES: tuple[tuple[str, str], ...] = (
    ("optimal", "dynamic"),
    ("optimal", "static"),
    ("balanced", "dynamic"),
    ("balanced", "static"),
    ("chain-k", "static"),
    ("chain-k", "dynamic"),
    ("chain-h", "static"),
)


@dataclass(frozen=True)
class PortfolioChoice:
    """Winner of a portfolio selection plus the scored alternatives."""

    plan: Plan
    report: ModelReport
    scores: dict[tuple[str, str], float]

    @property
    def config(self) -> tuple[str, str]:
        return (self.plan.tree_kind, self.plan.grid_kind)

    @property
    def modeled_seconds(self) -> float:
        return self.report.total_seconds


def select_plan(
    meta: TensorMeta,
    n_procs: int,
    machine: MachineModel | None = None,
    candidates: tuple[tuple[str, str], ...] = DEFAULT_CANDIDATES,
) -> PortfolioChoice:
    """Plan every candidate configuration, model it, return the fastest.

    Ties break toward the earlier candidate (so the paper's headline
    configuration wins ties). Raises if ``candidates`` is empty.
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    machine = machine if machine is not None else MachineModel.bgq_like()
    scores: dict[tuple[str, str], float] = {}
    best: tuple[float, Plan, ModelReport] | None = None
    for tree_kind, grid_kind in candidates:
        plan = Planner(n_procs, tree=tree_kind, grid=grid_kind).plan(meta)
        report = predict(plan, machine)
        seconds = report.total_seconds
        scores[(tree_kind, grid_kind)] = seconds
        if best is None or seconds < best[0]:
            best = (seconds, plan, report)
    assert best is not None
    return PortfolioChoice(plan=best[1], report=best[2], scores=scores)
