"""HOOI, STHOSVD and the model executor.

* :mod:`repro.hooi.decomposition` — the ``{G; F_1..F_N}`` container, error
  metrics (explicit and the orthonormal-factor norm identity).
* :mod:`repro.hooi.sthosvd` — sequentially truncated HOSVD, the paper's
  initial-decomposition method, in sequential and distributed forms.
* :mod:`repro.hooi.executor` — executes a planner :class:`~repro.core.Plan`
  (TTM-tree + grid scheme): sequential reference and distributed engine.
* :mod:`repro.hooi.hooi` — the HOOI driver (Figure 2 of the paper): single
  invocations and iterate-to-convergence, plus a tree-free naive reference.
* :mod:`repro.hooi.model` — metadata-only predictions of load, volume and
  alpha-beta time for a plan; powers the large benchmark sweeps.
"""

from repro.hooi.decomposition import TuckerDecomposition
from repro.hooi.sthosvd import sthosvd, dist_sthosvd, sthosvd_grid_plan
from repro.hooi.executor import (
    execute_tree_sequential,
    execute_tree_distributed,
    compute_core_sequential,
    compute_core_distributed,
)
from repro.hooi.hooi import (
    hooi_step_sequential,
    hooi_step_distributed,
    hooi_sequential,
    hooi_distributed,
    hooi_reference_step,
)
from repro.hooi.model import ModelReport, predict
from repro.hooi.portfolio import PortfolioChoice, select_plan
from repro.hooi.api import TuckerResult, tucker

__all__ = [
    "TuckerDecomposition",
    "sthosvd",
    "dist_sthosvd",
    "sthosvd_grid_plan",
    "PortfolioChoice",
    "select_plan",
    "TuckerResult",
    "tucker",
    "execute_tree_sequential",
    "execute_tree_distributed",
    "compute_core_sequential",
    "compute_core_distributed",
    "hooi_step_sequential",
    "hooi_step_distributed",
    "hooi_sequential",
    "hooi_distributed",
    "hooi_reference_step",
    "ModelReport",
    "predict",
]
