"""The session API: plan once, compile, run many tensors.

The paper's central design point is that planning (TTM-tree + grid DP)
consumes only metadata and is decoupled from execution; this module makes
that the shape of the public API:

* :func:`compile_plan` turns a :class:`~repro.core.planner.Plan` into a
  :class:`CompiledPlan` — a validated, backend-neutral schedule (tree +
  core-chain :class:`~repro.backends.schedule.Step` programs), a working
  dtype, and preallocated Gram workspaces;
* :class:`TuckerSession` owns an :class:`~repro.backends.ExecutionBackend`
  and an LRU plan cache keyed on ``(dims, core, procs, planner, dtype)``;
  ``session.run`` / ``session.sthosvd`` / ``session.hooi`` execute compiled
  plans on the backend.

Quickstart::

    from repro.session import TuckerSession

    session = TuckerSession(backend="threaded")
    res = session.run(tensor, (8, 6, 5))        # compiles + caches the plan
    res2 = session.run(other_tensor, (8, 6, 5)) # plan-cache hit
    print(res.error, res2.from_cache, session.backend.stats())

The legacy entry points (``tucker``, ``hooi_sequential``,
``hooi_distributed``) remain as thin deprecation shims over this layer.
"""

from __future__ import annotations

import logging
import math
import os
import queue as queue_mod
import threading
from collections import OrderedDict, deque
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.backends import (
    AUTO_BACKEND,
    STORAGE_MODES,
    BackendUnavailableError,
    ExecutionBackend,
    Selection,
    SimClusterBackend,
    StorageSelection,
    check_factors,
    compile_core_steps,
    compile_tree_steps,
    get_backend,
    load_profile,
    merge_profile,
    run_core_steps,
    run_tree_steps,
    select_backend,
    select_storage,
)
from repro.backends.blockpar import OC_LEASE_FACTOR
from repro.backends.schedule import (
    RAND_METHODS,
    Step,
    compile_rand_steps,
    run_rand_steps,
)
from repro.storage import (
    DEFAULT_CHUNK_BYTES,
    MmapStore,
    check_codec,
    parse_bytes,
    warm_pages,
)
from repro.core.meta import TensorMeta
from repro.core.ordering import optimal_chain_ordering
from repro.core.planner import Plan, Planner
from repro.mpi.stats import StatsLedger
from repro.obs import MetricsRegistry, Trace, Tracer, canonical_tag, safe_rate
from repro.obs.trace import NULL_TRACER
from repro.util import serial
from repro.util.dtypes import resolve_dtype
from repro.util.validation import check_core_dims, check_positive_int

logger = logging.getLogger("repro.session")

__all__ = [
    "BatchFailure",
    "BatchItem",
    "BatchResult",
    "CompiledPlan",
    "TuckerSession",
    "TuckerResult",
    "compile_plan",
]


# --------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------- #


@dataclass
class TuckerResult:
    """Everything a decomposition run produces.

    ``errors`` has one entry per completed HOOI invocation;
    ``sthosvd_error`` is the initialization error. ``backend`` names the
    executing backend and ``from_cache`` reports whether the compiled plan
    came from the session's plan cache. When the session runs with
    ``backend="auto"``, ``auto_selected`` is true and
    ``selection_reason`` records why the selector chose this backend.
    ``ledger`` holds exactly this run's backend records — scoped, so a
    reused backend never inflates a later result's volumes — and
    ``stats`` is its uniform summary. ``storage`` reports where the
    working set lived (``"memory"`` or ``"mmap"``) and
    ``storage_reason`` why the policy picked it. Spilled runs also
    report the block codec (``spill_codec``), the encoded vs logical
    spill volume (``spill_bytes_written`` / ``spill_bytes_logical`` —
    their ratio is the achieved compression), and, for the lossy
    ``narrow`` codec, the largest recorded per-block relative error
    (``spill_error_bound``; ``0.0`` for lossless codecs).

    ``seconds`` is the wall-clock duration of this run's root span —
    the session times every run through its tracer, so result timings
    and traces cannot disagree. ``trace`` holds the run's drained
    :class:`~repro.obs.Trace` when the session was built with
    ``trace=True`` (``None`` otherwise).

    ``method`` names the initialization algorithm (``"exact"``,
    ``"rsthosvd"`` or ``"sp-rsthosvd"``). ``converged`` /
    ``stopped_reason`` report how the HOOI loop ended:
    ``"converged"`` (error delta within tolerance), ``"max_iters"``
    (iteration budget exhausted) or ``"non-monotone"`` (the error
    *increased* by more than the tolerance — the sweep is reported, not
    silently treated as converged). Runs without a HOOI phase keep the
    defaults.
    """

    decomposition: "TuckerDecomposition"  # noqa: F821 - hooi import is lazy
    plan: Plan
    errors: list[float]
    sthosvd_error: float
    n_iters: int = 0
    method: str = "exact"
    converged: bool = True
    stopped_reason: str = ""
    backend: str = ""
    from_cache: bool = False
    auto_selected: bool = False
    selection_reason: str = ""
    ledger: StatsLedger | None = None
    storage: str = "memory"
    storage_reason: str = ""
    spill_codec: str = "raw"
    spill_bytes_written: int = 0
    spill_bytes_logical: int = 0
    spill_error_bound: float = 0.0
    seconds: float = 0.0
    trace: Trace | None = None

    @property
    def error(self) -> float:
        return self.errors[-1] if self.errors else self.sthosvd_error

    @property
    def stats(self) -> dict[str, float]:
        """This run's ledger summary (volumes/FLOPs/seconds/events)."""
        return self.ledger.summary() if self.ledger is not None else {}

    @property
    def compression_ratio(self) -> float:
        return self.decomposition.compression_ratio


# --------------------------------------------------------------------- #
# batched results
# --------------------------------------------------------------------- #


@dataclass
class BatchItem:
    """One successfully decomposed item of a :meth:`TuckerSession.run_many`.

    ``index`` is the item's position in the input stream; ``seq`` is its
    execution position (plan-key grouping inside the in-flight window may
    execute items out of arrival order). ``source`` is the ``.npy`` path
    for file items and ``"item[i]"`` for in-memory arrays. ``seconds``
    is the item's run-root-span duration (== ``result.seconds``).
    """

    index: int
    source: str
    seq: int
    seconds: float
    result: TuckerResult

    @property
    def error(self) -> float:
        return self.result.error

    @property
    def backend(self) -> str:
        return self.result.backend

    @property
    def from_cache(self) -> bool:
        return self.result.from_cache


@dataclass
class BatchFailure:
    """One item a ``run_many(on_error="skip")`` call could not decompose."""

    index: int
    source: str
    error: str
    kind: str = ""


@dataclass
class BatchResult:
    """Everything a :meth:`TuckerSession.run_many` call produces.

    ``items`` (input order) carry the per-item :class:`TuckerResult`;
    ``ledger`` merges every item's per-run records; ``plans_compiled`` /
    ``cache_hits`` are the plan-cache deltas of this batch (N same-shape
    tensors compile exactly one plan: ``plans_compiled == 1``,
    ``cache_hits == N - 1``).
    """

    items: list[BatchItem]
    failures: list[BatchFailure]
    seconds: float
    ledger: StatsLedger
    plans_compiled: int
    cache_hits: int
    #: merged batch trace (batch root + every item's spans) on traced
    #: sessions; ``None`` otherwise. ``seconds`` is the batch root
    #: span's duration.
    trace: Trace | None = None

    @property
    def results(self) -> list[TuckerResult]:
        return [item.result for item in self.items]

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def items_per_second(self) -> float:
        """Batch throughput (completed items over total wall seconds).

        The wall seconds come from the batch root span; a zero-duration
        or crash-truncated root degrades to a 0.0 rate — never a raise,
        never ``inf`` in a JSON payload (see :func:`repro.obs.safe_rate`).
        """
        return safe_rate(len(self.items), self.seconds)

    def stats(self) -> dict[str, float]:
        """Aggregate report: merged ledger summary + throughput counters."""
        out = self.ledger.summary()
        out.update(
            n_items=float(self.n_items),
            n_failures=float(len(self.failures)),
            seconds=self.seconds,
            items_per_second=self.items_per_second,
            plans_compiled=float(self.plans_compiled),
            cache_hits=float(self.cache_hits),
        )
        return out


@dataclass
class _PendingItem:
    """A materialized input waiting in the run_many in-flight window."""

    index: int
    source: str
    array: np.ndarray | None
    core: tuple[int, ...]
    group_key: tuple


def _maybe_cast(arr: np.ndarray, dtype) -> np.ndarray:
    """Convert to the working dtype now — unless the run can do better.

    A memory-mapped input needing conversion is returned *unconverted*:
    ``astype`` here would materialize the whole file in RAM, defeating
    lazy inputs exactly when they matter. The run-level
    :func:`_cast_for_run` finishes the job — chunked through the spill
    store when the run spills, plain ``astype`` when it is resident
    anyway.
    """
    dtype = np.dtype(dtype)
    if isinstance(arr, np.memmap) and arr.dtype != dtype:
        return arr
    return arr.astype(dtype, copy=False)


def _cast_for_run(arr: np.ndarray, dtype, store) -> np.ndarray:
    """The deferred half of :func:`_maybe_cast` (no-op when dtypes match)."""
    dtype = np.dtype(dtype)
    if arr.dtype == dtype:
        return arr
    if store is not None:
        key = store.next_key("cast")
        store.put(key, arr, dtype=dtype)  # chunked write-through cast
        return store.get(key)
    return arr.astype(dtype, copy=False)


def _item_source(raw, index: int) -> str:
    if isinstance(raw, (str, os.PathLike)):
        return os.fspath(raw)
    return f"item[{index}]"


def _materialize_item(raw, index: int, core_dims, dtype) -> _PendingItem:
    """Open one batch input (array or ``.npy`` path) and key it for grouping.

    Path items are opened *lazily* (``np.load(..., mmap_mode="r")``): the
    window holds a mapping plus metadata, not the tensor's bytes, so an
    item is never fully resident before its blocks are cut — windowed
    and skipped items cost pages touched, not tensors loaded.
    """
    source = _item_source(raw, index)
    if isinstance(raw, (str, os.PathLike)):
        array = np.load(source, mmap_mode="r")
        if not isinstance(array, np.ndarray):
            raise ValueError(f"{source} does not contain a single ndarray")
    elif isinstance(raw, np.ndarray):
        array = raw
    else:
        raise TypeError(
            f"batch item {index}: expected an ndarray or a .npy path, "
            f"got {type(raw).__name__}"
        )
    core = tuple(
        int(k)
        for k in (core_dims(array.shape) if callable(core_dims) else core_dims)
    )
    # Items agreeing on this key share a compiled plan under this call's
    # fixed planner/n_procs — the grouping the window scheduler uses.
    key = (tuple(array.shape), core, resolve_dtype(array, dtype).name)
    return _PendingItem(
        index=index, source=source, array=array, core=core, group_key=key
    )


class Prefetcher:
    """One background loader double-buffering item load against compute.

    While item *k* executes, :meth:`schedule` hands item *k+1*'s array to
    a daemon thread that faults its backing pages in through
    :func:`repro.storage.warm_pages` (memory-mapped ``.npy`` inputs and
    spill blocks; resident arrays are skipped for free). The executing
    run then finds hot pages instead of stalling on disk — the pipelined
    half of ``run_many`` and of every ``repro.serve`` worker.

    Prefetch is strictly advisory: warming failures are swallowed, and a
    ``max_bytes`` cap (a serving memory budget) bounds how much of a
    large item is pulled ahead. ``bytes_warmed`` is only read after
    :meth:`close` joins the thread.
    """

    def __init__(
        self,
        *,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        max_bytes: int | None = None,
    ) -> None:
        self._chunk_bytes = int(chunk_bytes)
        self._max_bytes = max_bytes
        self._queue: queue_mod.Queue = queue_mod.Queue()
        self._thread: threading.Thread | None = None
        self.bytes_warmed = 0
        self.items_warmed = 0

    def schedule(self, array: np.ndarray | None) -> None:
        """Warm ``array``'s pages in the background (no-op when resident)."""
        if array is None or not isinstance(array, np.memmap):
            return
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-prefetch", daemon=True
            )
            self._thread.start()
        self._queue.put(array)

    def _loop(self) -> None:
        while True:
            array = self._queue.get()
            if array is None:
                return
            try:
                warmed = warm_pages(
                    array,
                    chunk_bytes=self._chunk_bytes,
                    max_bytes=self._max_bytes,
                )
            except (OSError, ValueError) as exc:
                # advisory: a failed warm just means a cold first read
                logger.debug("page warm failed: %s", exc)
                continue
            self.bytes_warmed += warmed
            if warmed:
                self.items_warmed += 1

    def close(self) -> None:
        """Stop the loader (drains the pending warm first)."""
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join(timeout=30.0)
            self._thread = None


# --------------------------------------------------------------------- #
# compiled plans
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CompiledPlan:
    """A plan lowered to a backend-neutral schedule, ready to execute.

    Immutable except for the lazily-built Gram workspace (preallocated
    ``L_n x L_n`` buffers the shared-memory backends accumulate into;
    reused across every run of this compiled plan).
    """

    plan: Plan
    dtype: np.dtype
    planner_key: str
    tree_steps: tuple[Step, ...]
    core_steps: tuple[Step, ...]
    sthosvd_order: tuple[int, ...]
    _workspace: dict = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    # -- delegated metadata ---------------------------------------------- #

    @property
    def meta(self) -> TensorMeta:
        return self.plan.meta

    @property
    def n_procs(self) -> int:
        return self.plan.n_procs

    @property
    def initial_grid(self) -> tuple[int, ...]:
        return self.plan.initial_grid

    @property
    def cache_key(self) -> tuple:
        return plan_cache_key(
            self.meta, self.n_procs, self.planner_key, self.dtype
        )

    # -- workspaces ------------------------------------------------------- #

    def gram_workspace(self) -> dict[int, np.ndarray]:
        """Preallocated per-mode Gram buffers (built on first use)."""
        if not self._workspace:
            for mode, length in enumerate(self.meta.dims):
                self._workspace[mode] = np.empty(
                    (length, length), dtype=self.dtype
                )
        return self._workspace

    # -- serialization ---------------------------------------------------- #

    def to_json(self) -> str:
        """Serialize; the embedded :class:`Plan` round-trips losslessly.

        Schedules are recompiled deterministically on load, so only the
        plan, dtype and planner key are stored.
        """
        return serial.dumps(
            {
                "version": 1,
                "dtype": self.dtype.name,
                "planner_key": self.planner_key,
                "plan": serial.loads(self.plan.to_json()),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "CompiledPlan":
        d = serial.loads(text)
        plan = Plan.from_json(serial.dumps(d["plan"]))
        return compile_plan(
            plan, dtype=d["dtype"], planner_key=d["planner_key"]
        )


def plan_cache_key(
    meta: TensorMeta, n_procs: int, planner_key: str, dtype
) -> tuple:
    """The session cache key: ``(dims, core, procs, planner, dtype)``."""
    return (meta.dims, meta.core, int(n_procs), planner_key, np.dtype(dtype).name)


def compile_plan(
    plan: Plan, *, dtype=np.float64, planner_key: str = "custom"
) -> CompiledPlan:
    """Lower a planner :class:`Plan` into a :class:`CompiledPlan`."""
    dtype = resolve_dtype(np.float64, dtype)
    meta = plan.meta
    core_order = tuple(plan.core_order) or tuple(optimal_chain_ordering(meta))
    core_scheme = plan.core_scheme or None
    return CompiledPlan(
        plan=plan,
        dtype=dtype,
        planner_key=planner_key,
        tree_steps=compile_tree_steps(plan.tree, meta, scheme=plan.scheme),
        core_steps=compile_core_steps(core_order, core_scheme),
        sthosvd_order=tuple(optimal_chain_ordering(meta)),
    )


# --------------------------------------------------------------------- #
# the session
# --------------------------------------------------------------------- #


class TuckerSession:
    """A long-lived decomposition context: one backend, one plan cache.

    Parameters
    ----------
    backend:
        A backend name (``"sequential"``, ``"simcluster"``, ``"threaded"``,
        ``"procpool"``), the adaptive spec ``"auto"`` (the backend is
        selected per input from its metadata, see
        :mod:`repro.backends.select`), or a ready
        :class:`ExecutionBackend` instance.
    cluster / n_procs / machine:
        Configuration for a freshly built ``"simcluster"`` backend (and
        ``n_procs`` caps a fresh ``"threaded"`` / ``"procpool"`` pool or
        anchors ``"auto"`` selection).
    cache_size:
        Maximum number of compiled plans kept (LRU eviction).
    calibration:
        Only for ``backend="auto"``: a profile dict (as produced by
        :func:`repro.backends.calibrate`) or a path to a persisted profile
        JSON; defaults to the machine profile on disk, falling back to the
        built-in cost model.
    storage:
        Where each run's working set lives: ``"memory"`` (fully
        resident, the historical behavior), ``"mmap"`` (always spill to
        memory-mapped block files), or ``"auto"`` (the default: spill
        exactly when ``memory_budget`` — or ``$REPRO_MEMORY_BUDGET`` —
        is set and the input's bytes exceed it). Overridable per run.
    memory_budget:
        Resident-byte budget (int, or ``"512M"``-style string) the
        storage policy holds spilled runs to; out-of-core kernels cut
        their blocks from it.
    spill_dir:
        Root directory for spill files (default ``$REPRO_SPILL_DIR``,
        else the system tempdir). Each spilled run uses a private
        subdirectory, removed when the run finishes.
    spill_codec:
        How spilled blocks are encoded on disk: ``"auto"`` (the
        default: raw, unless a calibrated profile's measured
        encode/decode rates say compression pays), ``"raw"``
        (memmap-able flat files), ``"zlib"`` / ``"zlib:<level>"``
        (lossless deflate), or ``"narrow"`` (lossy float64→float32
        with the realized error bound recorded per block and surfaced
        as ``result.spill_error_bound``). Overridable per run; the
        lossy ``narrow`` is never chosen automatically.
    trace:
        ``True`` to record a full :class:`~repro.obs.Trace` per run
        (``result.trace``): phase spans, one step span per ledger
        record, spill I/O spans, procpool worker fragments, plus the
        plan's modeled per-step volumes for ``repro trace summarize``.
        A ready :class:`~repro.obs.Tracer` is also accepted (shared
        timelines across sessions). Default off: execution still times
        runs through a root span (``result.seconds``) but records
        nothing else — kernels see only the no-op tracer.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "sequential",
        *,
        cluster=None,
        n_procs: int | None = None,
        machine=None,
        cache_size: int = 32,
        calibration=None,
        storage: str = "auto",
        memory_budget: int | str | None = None,
        spill_dir: str | None = None,
        spill_codec: str = "auto",
        trace: bool | Tracer = False,
    ) -> None:
        self._auto = isinstance(backend, str) and backend == AUTO_BACKEND
        self._selection: Selection | None = None
        if self._auto:
            if cluster is not None or machine is not None:
                raise ValueError(
                    "backend='auto' does not accept cluster=/machine= "
                    "(simcluster is never auto-selected; name it explicitly)"
                )
            self._auto_procs = (
                check_positive_int(n_procs, "n_procs")
                if n_procs is not None
                else None
            )
            # Partial dicts are merged over the defaults, exactly like
            # profiles loaded from disk.
            self._profile = (
                merge_profile(calibration)
                if isinstance(calibration, dict)
                else load_profile(calibration)
            )
            self._backends: dict[tuple[str, int], ExecutionBackend] = {}
            #: set on first selection; stays the last-used backend after.
            self.backend: ExecutionBackend | None = None
        else:
            if calibration is not None:
                raise ValueError(
                    "calibration= only applies to backend='auto'"
                )
            self.backend = get_backend(
                backend, cluster=cluster, n_procs=n_procs, machine=machine
            )
        self._cache: OrderedDict[tuple, CompiledPlan] = OrderedDict()
        self._cache_size = check_positive_int(cache_size, "cache_size")
        self._hits = 0
        self._misses = 0
        # Concurrency: the cache lock keeps LRU get/put/evict (and the
        # hit/miss counters) consistent under concurrent compiles; the
        # run lock serializes execution — per-run ledger scoping and
        # tracer mark/drain are positional, so two interleaved runs on
        # one backend would attribute each other's records. Serving
        # layers that want true overlap give each worker its own session
        # (see repro.serve); sharing one session across threads is then
        # *correct*, just serialized.
        self._cache_lock = threading.RLock()
        self._run_lock = threading.RLock()
        if storage not in STORAGE_MODES:
            raise ValueError(
                f"storage must be one of {STORAGE_MODES}, got {storage!r}"
            )
        self._storage = storage
        # Fail fast on a bad budget string; keep bytes (or None).
        self._memory_budget = (
            parse_bytes(memory_budget) if memory_budget is not None else None
        )
        self._spill_dir = spill_dir
        # Fail fast on a bad codec name; "auto" defers to the selector.
        self._spill_codec = (
            spill_codec if spill_codec == "auto" else check_codec(spill_codec)
        )
        # The session always owns a real tracer: the per-run root span
        # is what result.seconds reads even with tracing off (one span
        # per run, drained immediately — no accumulation). Inner
        # instrumentation activates only when `trace` is truthy.
        if isinstance(trace, Tracer):
            self.tracer = trace
            self._trace_enabled = True
        else:
            self.tracer = Tracer()
            self._trace_enabled = bool(trace)
        self.metrics = MetricsRegistry()
        #: trace of the most recent *failed* traced run (``on_error=
        #: "skip"`` batches fold these into the batch trace).
        self.last_error_trace: Trace | None = None

    # -- storage policy ---------------------------------------------------- #

    def _select_storage(
        self, nbytes: int, storage: str | None, memory_budget,
        spill_codec: str | None = None,
    ) -> StorageSelection:
        """Resolve per-run knobs over the session defaults.

        Auto sessions hand the selector their calibration profile, which
        is what lets ``codec="auto"`` rank zlib against raw with measured
        encode/decode rates (uncalibrated selections always stay raw).
        """
        return select_storage(
            nbytes,
            storage if storage is not None else self._storage,
            memory_budget
            if memory_budget is not None
            else self._memory_budget,
            codec=(
                spill_codec if spill_codec is not None else self._spill_codec
            ),
            profile=getattr(self, "_profile", None),
        )

    def _open_store(
        self, selection: StorageSelection, spill_dir: str | None
    ) -> MmapStore | None:
        """A run-scoped spill store, or ``None`` for in-memory runs.

        ``max_block_bytes`` is the budget divided by the out-of-core
        lease factor, so a full worker fan-out's concurrent block leases
        stay within the budget. The write-through chunk comes from the
        selection (a calibrated profile's measured sweet spot) capped at
        the block geometry; the selection's codec becomes the store's
        default for every spilled block.
        """
        if not selection.spilled:
            return None
        budget = selection.memory_budget
        # `is not None`: a 0 budget means the finest practical cut (one
        # page), not the unbounded default — 1-byte blocks would turn
        # spills into per-element Python loops.
        max_block = (
            max(4096, budget // OC_LEASE_FACTOR)
            if budget is not None
            else None
        )
        chunk = (
            selection.chunk_bytes
            if selection.chunk_bytes is not None
            else DEFAULT_CHUNK_BYTES
        )
        return MmapStore(
            root=spill_dir if spill_dir is not None else self._spill_dir,
            max_block_bytes=max_block,
            chunk_bytes=(
                min(chunk, max_block) if max_block is not None else chunk
            ),
            codec=selection.codec,
        )

    def prefetch_chunk_bytes(
        self, memory_budget: int | str | None = None
    ) -> int:
        """The page-warm chunk size matching this session's store geometry.

        Prefetch leases its warm chunks through the resident gauge, so it
        must never lease a bigger chunk than the budget-bounded store
        itself would write: mirror :meth:`_open_store`'s arithmetic
        (budget over the lease factor, floored at one page, capped at
        the default chunk). Unbudgeted sessions keep the default.
        """
        budget = (
            parse_bytes(memory_budget)
            if memory_budget is not None
            else self._memory_budget
        )
        if budget is None:
            return DEFAULT_CHUNK_BYTES
        return min(DEFAULT_CHUNK_BYTES, max(4096, budget // OC_LEASE_FACTOR))

    # -- adaptive backend selection --------------------------------------- #

    def _auto_select(
        self,
        meta: TensorMeta,
        n_procs: int | None,
        dtype,
        storage: str | None = None,
        memory_budget: int | str | None = None,
        spill_codec: str | None = None,
    ) -> None:
        """Pick and install the backend for this input (auto mode only).

        Backend instances are cached per name so their ledgers persist
        across runs; ``self.backend`` always points at the last selection.
        ``storage``/``memory_budget`` are the per-run overrides: whether
        this input will spill changes the scores (spill I/O charged,
        staging copies dropped), so the selector is told up front.
        """
        if not self._auto:
            return
        from repro.backends.select import resolve_auto_procs

        work_dtype = (
            resolve_dtype(np.float64, dtype)
            if dtype is not None
            else np.dtype(np.float64)
        )
        nbytes = int(np.prod([int(d) for d in meta.dims])) * work_dtype.itemsize
        storage_sel = self._select_storage(
            nbytes, storage, memory_budget, spill_codec
        )
        procs = n_procs if n_procs is not None else self._auto_procs
        effective_procs = resolve_auto_procs(procs)
        selection = select_backend(
            meta.dims,
            meta.core,
            n_procs=procs,
            dtype=dtype,
            profile=self._profile,
            spilled=storage_sel.spilled,
            # Spilled scoring charges the codec this run will spill with.
            codec=storage_sel.codec,
            # Instances cached at exactly this worker count have already
            # paid their startup (pool spin-up); don't charge it again. A
            # same-name pool at a *different* count must be rebuilt, so
            # it is not warm.
            warm={
                name
                for name, p in self._backends
                if p == effective_procs
            },
        )
        # Try the winner, then the remaining candidates in score order: a
        # backend the host cannot provide (no /dev/shm, say) must degrade
        # auto mode, never crash it. Instances are cached per (name,
        # procs) so a changed n_procs builds a correctly sized pool.
        ranked = sorted(selection.scores, key=selection.scores.get)
        errors = []
        for name in ranked:
            key = (name, selection.n_procs)
            backend = self._backends.get(key)
            if backend is None:
                try:
                    backend = get_backend(name, n_procs=selection.n_procs)
                except BackendUnavailableError as exc:
                    errors.append(str(exc))
                    continue
                # A same-name pool at a superseded worker count would
                # otherwise keep its workers alive for the session's
                # lifetime; shut it down before caching the replacement.
                for stale_key in [
                    k for k in self._backends if k[0] == name
                ]:
                    self._backends.pop(stale_key).close()
                self._backends[key] = backend
            self.backend = backend
            if name != selection.backend:
                selection = Selection(
                    backend=name,
                    n_procs=selection.n_procs,
                    dtype=selection.dtype,
                    scores=selection.scores,
                    reason=(
                        f"{selection.reason}; fell back to {name} "
                        f"(unavailable: {'; '.join(errors)})"
                    ),
                )
            self._selection = selection
            logger.debug(
                "auto-selected backend %s (n_procs=%d): %s",
                selection.backend, selection.n_procs, selection.reason,
            )
            self._tr().event(
                "select:backend",
                backend=selection.backend,
                n_procs=selection.n_procs,
                reason=selection.reason,
            )
            return
        raise BackendUnavailableError(
            f"no auto-eligible backend is available: {'; '.join(errors)}",
            backend="auto",
            config={"dims": meta.dims, "core": meta.core},
        )

    @property
    def last_selection(self) -> Selection | None:
        """The auto-selector's verdict for the most recent input."""
        return self._selection

    def close(self) -> None:
        """Shut down every backend this session owns (worker pools).

        The session stays usable: pool backends reopen on next use, and
        auto mode simply builds fresh instances.
        """
        with self._run_lock:
            if self._auto:
                for backend in self._backends.values():
                    backend.close()
                self._backends.clear()
            if self.backend is not None:
                self.backend.close()

    def __enter__(self) -> "TuckerSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _result_meta(self) -> dict:
        """Backend/selection fields shared by every TuckerResult."""
        return {
            "backend": self.backend.name,
            "auto_selected": self._auto,
            "selection_reason": (
                self._selection.reason if self._auto and self._selection else ""
            ),
        }

    # -- tracing ----------------------------------------------------------- #

    def _tr(self) -> Tracer:
        """The live tracer for instrumentation, or the shared no-op.

        Only the per-run root span bypasses this (it must exist for
        ``result.seconds`` even untraced); every other instrumentation
        point routes here so disabled tracing costs one attribute read.
        """
        return self.tracer if self._trace_enabled else NULL_TRACER

    @contextmanager
    def _observed(self, run_store=None):
        """Point the resolved backend (and spill store) at the tracer.

        Attaches the ledger observer — every :class:`Record` the backend
        appends becomes a ``kind="step"`` span — plus the backend and
        store tracer references (worker fragments, spill I/O spans).
        Always restored: a crashed run leaves no observer behind.
        """
        if not self._trace_enabled:
            yield
            return
        backend = self.backend
        ledger = backend.ledger
        prev_observer = ledger.observer
        prev_tracer = backend.tracer
        prev_store_tracer = run_store.tracer if run_store is not None else None
        ledger.observer = self.tracer.on_record
        backend.tracer = self.tracer
        if run_store is not None:
            run_store.tracer = self.tracer
        try:
            yield
        finally:
            ledger.observer = prev_observer
            backend.tracer = prev_tracer
            if run_store is not None:
                run_store.tracer = prev_store_tracer

    def _finish_trace(self, root, tmark: int) -> Trace | None:
        """Drain this run's spans; fold run metrics; ``None`` untraced."""
        self.metrics.counter("runs").inc()
        self.metrics.histogram("run_seconds").observe(root.seconds)
        if not self._trace_enabled:
            self.tracer.drain(tmark)  # just the root span; keep memory flat
            return None
        trace = self.tracer.drain(tmark)
        trace.meta.update(dict(root.attrs))
        self._fold_metrics(trace)
        trace.meta["metrics"] = self.metrics.snapshot()
        return trace

    def _stash_error_trace(self, tmark: int) -> None:
        """Preserve a failed run's partial spans (crash forensics)."""
        if self._trace_enabled:
            trace = self.tracer.drain(tmark)
            roots = trace.roots()
            if roots:
                trace.meta.update(dict(roots[-1].attrs))
            self.last_error_trace = trace
        else:
            self.tracer.drain(tmark)

    def _fold_metrics(self, trace: Trace) -> None:
        """Update the session registry from one run's spans."""
        for span in trace.spans:
            if span.kind == "step":
                component = canonical_tag(span.name).split(":", 1)[0]
                self.metrics.histogram(
                    f"step_seconds:{component}"
                ).observe(span.seconds)
            elif span.kind == "io":
                name = "spill_write_bytes" if span.name == "spill:write" else "spill_read_bytes"
                self.metrics.counter(name).inc(
                    float(span.attrs.get("bytes", 0) or 0)
                )
        workers = trace.by_kind("worker")
        if workers:
            busy = sum(s.seconds for s in workers)
            n_workers = int(getattr(self.backend, "n_workers", 1) or 1)
            wall = trace.seconds
            if wall > 0:
                self.metrics.gauge("pool_utilization").set(
                    min(1.0, busy / (wall * n_workers))
                )
        peak = trace.meta.get("resident_peak")
        if peak:
            self.metrics.gauge("resident_peak_bytes").max(float(peak))

    # -- plan cache ------------------------------------------------------- #

    def cache_info(self) -> dict[str, int]:
        with self._cache_lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._cache),
                "maxsize": self._cache_size,
            }

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0

    def _resolve_procs(
        self,
        planner: str | Planner,
        n_procs: int | None,
        meta: TensorMeta | None = None,
    ) -> int:
        if isinstance(planner, Planner):
            procs = planner.n_procs
        elif n_procs is not None:
            procs = check_positive_int(n_procs, "n_procs")
        else:
            procs = self.backend.default_procs
        if (
            isinstance(self.backend, SimClusterBackend)
            and procs != self.backend.cluster.n_procs
        ):
            config = {
                "requested_n_procs": procs,
                "cluster_n_procs": self.backend.cluster.n_procs,
            }
            if meta is not None:
                config["dims"] = meta.dims
                config["core"] = meta.core
            raise BackendUnavailableError(
                f"plan is for {procs} procs but the cluster has "
                f"{self.backend.cluster.n_procs} ranks",
                backend=self.backend.name,
                config=config,
            )
        return procs

    def _compile(
        self,
        meta: TensorMeta,
        n_procs: int | None,
        planner: str | Planner,
        dtype,
        storage: str | None = None,
        memory_budget: int | str | None = None,
        spill_codec: str | None = None,
    ) -> tuple[CompiledPlan, bool]:
        """Compile (or fetch from cache); returns ``(plan, from_cache)``."""
        from repro.hooi.portfolio import select_plan

        self._auto_select(
            meta,
            planner.n_procs if isinstance(planner, Planner) else n_procs,
            dtype,
            storage,
            memory_budget,
            spill_codec,
        )
        procs = self._resolve_procs(planner, n_procs, meta)
        if (
            n_procs is None
            and not isinstance(planner, Planner)
            and not isinstance(self.backend, SimClusterBackend)
        ):
            # The count came from a machine default (cores - 1, say), not
            # a request: clamp it to a plannable P — a prime default
            # larger than every core dim admits no valid grid at all.
            from repro.core.grids import feasible_procs

            procs = feasible_procs(meta, procs)
        if isinstance(planner, Planner):
            planner_key = f"{planner.tree_kind}:{planner.grid_kind}"
        else:
            planner_key = str(planner)
        dtype = resolve_dtype(np.float64, dtype) if dtype is not None else np.dtype(np.float64)
        key = plan_cache_key(meta, procs, planner_key, dtype)
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                self.metrics.counter("plan_cache_hits").inc()
                return cached, True
            self._misses += 1
        self.metrics.counter("plan_cache_misses").inc()
        logger.info(
            "compiling plan: dims=%s core=%s n_procs=%d planner=%s",
            meta.dims, meta.core, procs, planner_key,
        )
        # Planning runs unlocked (it can be slow); two threads racing the
        # same key both compile, last-put wins — wasted work, never a
        # corrupted cache.
        if isinstance(planner, Planner):
            plan = planner.plan(meta)
        elif planner == "portfolio":
            plan = select_plan(meta, procs).plan
        else:
            plan = Planner(procs, tree=planner, grid="dynamic").plan(meta)
        compiled = compile_plan(plan, dtype=dtype, planner_key=planner_key)
        with self._cache_lock:
            self._cache[key] = compiled
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return compiled, False

    def compile(
        self,
        meta: TensorMeta,
        n_procs: int | None = None,
        *,
        planner: str | Planner = "portfolio",
        dtype=None,
        storage: str | None = None,
    ) -> CompiledPlan:
        """Plan + lower ``meta`` (cached).

        ``planner`` is ``"portfolio"`` (model every configuration, keep the
        fastest), a tree kind (planned with dynamic grids), or a ready
        :class:`Planner`. ``n_procs`` defaults to the backend's natural
        parallelism. ``storage`` is accepted (and validated) for API
        symmetry with :meth:`run`: plans are metadata-only and identical
        for every storage mode, so the same compiled plan serves resident
        and spilled executions alike.
        """
        if storage is not None and storage not in STORAGE_MODES:
            raise ValueError(
                f"storage must be one of {STORAGE_MODES}, got {storage!r}"
            )
        compiled, _ = self._compile(meta, n_procs, planner, dtype)
        return compiled

    # -- input handling --------------------------------------------------- #

    def _prepare(
        self,
        tensor: np.ndarray,
        core_dims: Sequence[int] | None,
        plan: CompiledPlan | Plan | None,
        planner: str | Planner,
        n_procs: int | None,
        dtype,
        storage: str | None = None,
        memory_budget: int | str | None = None,
        spill_codec: str | None = None,
    ) -> tuple[np.ndarray, CompiledPlan, bool]:
        """Resolve dtype, validate shapes, compile-or-fetch the plan."""
        # Keep ndarray subclasses (np.memmap in particular): a lazily
        # opened .npy must reach distribute() as a mapping so spilled
        # runs can wrap the file in place instead of materializing it.
        arr = tensor if isinstance(tensor, np.ndarray) else np.asarray(tensor)
        if isinstance(plan, Plan):
            work_dtype = resolve_dtype(arr, dtype)
            self._auto_select(
                plan.meta, plan.n_procs, work_dtype, storage, memory_budget,
                spill_codec,
            )
            if plan.meta.dims != arr.shape:
                raise ValueError(
                    f"tensor shape {arr.shape} != plan dims {plan.meta.dims}"
                )
            # Explicit plans are cached by object identity (Plan holds
            # unhashable parts); the cached CompiledPlan retains the plan,
            # so the id cannot be recycled while the entry lives.
            key = ("explicit", id(plan), work_dtype.name)
            with self._cache_lock:
                cached = self._cache.get(key)
                if cached is not None and cached.plan is plan:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    return _maybe_cast(arr, work_dtype), cached, True
                self._misses += 1
            compiled = compile_plan(
                plan,
                dtype=work_dtype,
                planner_key=f"{plan.tree_kind}:{plan.grid_kind}",
            )
            with self._cache_lock:
                self._cache[key] = compiled
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
            return _maybe_cast(arr, work_dtype), compiled, False
        if isinstance(plan, CompiledPlan):
            work_dtype = resolve_dtype(arr, dtype) if dtype is not None else plan.dtype
            self._auto_select(
                plan.meta, plan.n_procs, work_dtype, storage, memory_budget,
                spill_codec,
            )
            if plan.meta.dims != arr.shape:
                raise ValueError(
                    f"tensor shape {arr.shape} != plan dims {plan.meta.dims}"
                )
            if work_dtype != plan.dtype:
                plan = compile_plan(
                    plan.plan, dtype=work_dtype, planner_key=plan.planner_key
                )
            return _maybe_cast(arr, work_dtype), plan, False
        if core_dims is None:
            raise ValueError("core_dims is required when no plan is given")
        work_dtype = resolve_dtype(arr, dtype)
        arr = _maybe_cast(arr, work_dtype)
        core = check_core_dims(core_dims, arr.shape)
        meta = TensorMeta(dims=arr.shape, core=core)
        compiled, from_cache = self._compile(
            meta, n_procs, planner, work_dtype, storage, memory_budget,
            spill_codec,
        )
        return arr, compiled, from_cache

    # -- algorithms ------------------------------------------------------- #

    def _hooi_loop(
        self,
        arr: np.ndarray,
        factors: Sequence[np.ndarray],
        compiled: CompiledPlan,
        max_iters: int,
        tol: float,
        store=None,
        handle=None,
        t_norm_sq: float | None = None,
    ) -> tuple["TuckerDecomposition", list[float], bool, str]:  # noqa: F821
        from repro.hooi.decomposition import TuckerDecomposition

        backend = self.backend
        tr = self._tr()
        meta = compiled.meta
        factors = check_factors(factors, meta, dtype=compiled.dtype)
        if handle is None:
            with tr.span("distribute", kind="phase"):
                handle = backend.distribute(
                    arr, compiled.initial_grid, store=store
                )
        if t_norm_sq is None:
            # Callers that already reduced the input norm over this very
            # handle pass it in — on an out-of-core handle this reduction
            # is a complete pass over the spill files.
            t_norm_sq = backend.fro_norm_sq(handle, tag="norm:input")
        workspace = compiled.gram_workspace()
        errors: list[float] = []
        core_handle = None
        converged = False
        stopped_reason = "max_iters"
        with tr.span("hooi", kind="phase"):
            for it in range(max_iters):
                tag = f"hooi:it{it}"
                with tr.span(tag, kind="phase", iteration=it):
                    new = run_tree_steps(
                        backend,
                        handle,
                        factors,
                        compiled.tree_steps,
                        tag=tag,
                        workspace=workspace,
                    )
                    if sorted(new) != list(range(meta.ndim)):
                        raise AssertionError(
                            "tree execution did not produce every factor"
                        )
                    factors = [new[m] for m in range(meta.ndim)]
                    core_handle = run_core_steps(
                        backend, handle, factors, compiled.core_steps,
                        tag=f"{tag}:core",
                    )
                    g_norm_sq = backend.fro_norm_sq(
                        core_handle, tag="norm:core"
                    )
                err_sq = max(t_norm_sq - g_norm_sq, 0.0)
                errors.append(
                    0.0 if t_norm_sq == 0 else float(math.sqrt(err_sq / t_norm_sq))
                )
                if it > 0:
                    delta = errors[-2] - errors[-1]
                    # ``delta < tol`` also fires on *rising* error (delta
                    # very negative); that sweep used to be reported as
                    # converged. Keep the stopping set identical (so
                    # ``tol=-inf`` still means "never stop early", and
                    # 1-ulp float32 jitter never ends a run a different
                    # backend would continue) but label the two cases
                    # apart.
                    if delta < tol:
                        if abs(delta) < tol:
                            converged = True
                            stopped_reason = "converged"
                        else:
                            stopped_reason = "non-monotone"
                        break
        # Copy: shared-memory cores may alias reusable workspace/output
        # buffers that the next run would overwrite.
        with tr.span("gather", kind="phase"):
            core = np.array(backend.gather(core_handle), copy=True)
        dec = TuckerDecomposition(core=core, factors=list(factors))
        return dec, errors, converged, stopped_reason

    def hooi(
        self,
        tensor: np.ndarray,
        init,
        *,
        plan: CompiledPlan | Plan | None = None,
        planner: str | Planner = "optimal",
        n_procs: int | None = None,
        dtype=None,
        max_iters: int = 10,
        tol: float = 1e-8,
        storage: str | None = None,
        memory_budget: int | str | None = None,
        spill_dir: str | None = None,
        spill_codec: str | None = None,
    ) -> TuckerResult:
        """Iterate HOOI from an initial decomposition (or factor list).

        ``init`` is a :class:`TuckerDecomposition` or a sequence of factor
        matrices. Per-iteration errors come from the norm identity using
        backend reductions, so no rank ever holds the full tensor on the
        distributed backend. ``storage`` / ``memory_budget`` /
        ``spill_dir`` / ``spill_codec`` override the session's storage
        policy for this run.
        """
        with self._run_lock:
            tmark = self.tracer.mark()
            try:
                with self.tracer.span("run", kind="phase", method="hooi") as root:
                    result = self._hooi_impl(
                        tensor, init, plan=plan, planner=planner,
                        n_procs=n_procs, dtype=dtype, max_iters=max_iters,
                        tol=tol, storage=storage, memory_budget=memory_budget,
                        spill_dir=spill_dir, spill_codec=spill_codec,
                        root=root,
                    )
            except BaseException:
                self._stash_error_trace(tmark)
                raise
            result.seconds = root.seconds
            result.trace = self._finish_trace(root, tmark)
            return result

    def _hooi_impl(
        self, tensor, init, *, plan, planner, n_procs, dtype, max_iters,
        tol, storage, memory_budget, spill_dir, spill_codec, root,
    ) -> TuckerResult:
        factors = init if isinstance(init, (list, tuple)) else init.factors
        core_dims = tuple(f.shape[1] for f in factors)
        tr = self._tr()
        with tr.span("compile", kind="phase"):
            arr, compiled, from_cache = self._prepare(
                tensor, core_dims, plan, planner, n_procs, dtype,
                storage, memory_budget, spill_codec,
            )
        # Policy sees the *working* bytes: a float32 file run at float64
        # occupies twice its on-disk size once cast.
        selection = self._select_storage(
            arr.size * compiled.dtype.itemsize, storage, memory_budget,
            spill_codec,
        )
        tr.event(
            "select:storage", mode=selection.mode, codec=selection.codec,
            reason=selection.reason,
        )
        self._annotate_root(root, compiled, selection, from_cache)
        mark = self.backend.mark_stats()
        if max_iters <= 0:
            # Legacy drivers returned the init untouched for max_iters=0.
            if isinstance(init, (list, tuple)):
                raise ValueError(
                    "max_iters must be >= 1 when init is a bare factor list"
                )
            return TuckerResult(
                decomposition=init,
                plan=compiled.plan,
                errors=[],
                sthosvd_error=float("nan"),
                n_iters=0,
                from_cache=from_cache,
                ledger=self.backend.ledger_since(mark),
                # Nothing was placed, so nothing spilled — report what
                # actually happened, not what the policy would have done.
                storage="memory",
                storage_reason="max_iters <= 0: input never placed",
                **self._result_meta(),
            )
        run_store = self._open_store(selection, spill_dir)
        try:
            with self._observed(run_store):
                arr = _cast_for_run(arr, compiled.dtype, run_store)
                dec, errors, converged, stopped_reason = self._hooi_loop(
                    arr, factors, compiled, max_iters, tol, store=run_store
                )
        finally:
            if run_store is not None:
                root.set(resident_peak=float(run_store.gauge.peak))
                run_store.close()
        return TuckerResult(
            decomposition=dec,
            plan=compiled.plan,
            errors=errors,
            sthosvd_error=float("nan"),
            n_iters=len(errors),
            converged=converged,
            stopped_reason=stopped_reason,
            from_cache=from_cache,
            ledger=self.backend.ledger_since(mark),
            storage=selection.mode,
            storage_reason=selection.reason,
            **(run_store.codec_stats() if run_store is not None else {}),
            **self._result_meta(),
        )

    def _sthosvd_pass(
        self, arr: np.ndarray, compiled: CompiledPlan, store=None, handle=None
    ) -> tuple["TuckerDecomposition", float, float]:  # noqa: F821
        """One STHOSVD pass; ``(decomposition, error, input_norm_sq)``.

        ``handle``, when given, is an already distributed input (callers
        running several phases distribute once and share it — the input
        handle is never mutated by the kernels). The input's squared
        norm rides along so multi-phase callers don't re-reduce it.
        """
        from repro.hooi.decomposition import TuckerDecomposition

        backend = self.backend
        tr = self._tr()
        meta = compiled.meta
        if handle is None:
            with tr.span("distribute", kind="phase"):
                handle = backend.distribute(
                    arr, compiled.initial_grid, store=store
                )
        with tr.span("sthosvd", kind="phase"):
            t_norm_sq = backend.fro_norm_sq(handle, tag="norm:input")
            workspace = compiled.gram_workspace()
            factors: list[np.ndarray | None] = [None] * meta.ndim
            for mode in compiled.sthosvd_order:
                f = backend.leading_factor(
                    handle,
                    mode,
                    meta.core[mode],
                    tag=f"sthosvd:svd{mode}",
                    out=workspace.get(mode),
                )
                factors[mode] = f
                handle = backend.ttm(
                    handle, f.T, mode, tag=f"sthosvd:ttm{mode}"
                )
            g_norm_sq = backend.fro_norm_sq(handle, tag="norm:core")
        err_sq = max(t_norm_sq - g_norm_sq, 0.0)
        error = 0.0 if t_norm_sq == 0 else float(math.sqrt(err_sq / t_norm_sq))
        with tr.span("gather", kind="phase"):
            core = np.array(backend.gather(handle), copy=True)
        return (
            TuckerDecomposition(core=core, factors=list(factors)),
            error,
            t_norm_sq,
        )

    def _rand_pass(
        self,
        compiled: CompiledPlan,
        handle,
        *,
        method: str,
        oversample: int,
        power_iters: int,
        seed: int,
    ) -> tuple["TuckerDecomposition", float, float]:  # noqa: F821
        """One randomized pass; ``(decomposition, error, input_norm_sq)``.

        ``handle`` is the already distributed input. The input's squared
        norm is a free by-product of the first sketch pass — no separate
        norm reduction over the input ever runs. For ``rsthosvd`` the
        final truncated handle *is* the core (a projection of the
        input), so the norm identity gives the exact relative error; for
        ``sp-rsthosvd`` the core is solved host-side from the sketches
        and the identity only yields a clamped estimate.
        """
        from repro.hooi.decomposition import TuckerDecomposition

        backend = self.backend
        tr = self._tr()
        meta = compiled.meta
        rng = np.random.default_rng(seed)
        steps = compile_rand_steps(
            compiled.sthosvd_order,
            meta,
            method=method,
            oversample=oversample,
            power_iters=power_iters,
        )
        with tr.span(
            method, kind="phase", seed=int(seed),
            oversample=int(oversample), power_iters=int(power_iters),
        ):
            factors, current, t_norm_sq, core = run_rand_steps(
                backend, handle, steps, meta,
                rng=rng, dtype=compiled.dtype, tag=method,
            )
            if core is None:
                g_norm_sq = backend.fro_norm_sq(current, tag="norm:core")
                with tr.span("gather", kind="phase"):
                    # Copy: shared-memory cores may alias reusable
                    # buffers the next run would overwrite.
                    core = np.array(backend.gather(current), copy=True)
            else:
                g_norm_sq = float(np.dot(core.ravel(), core.ravel()))
        err_sq = max(t_norm_sq - g_norm_sq, 0.0)
        error = 0.0 if t_norm_sq == 0 else float(math.sqrt(err_sq / t_norm_sq))
        dec = TuckerDecomposition(
            core=core, factors=[factors[m] for m in range(meta.ndim)]
        )
        return dec, error, float(t_norm_sq)

    def sthosvd(
        self,
        tensor: np.ndarray,
        core_dims: Sequence[int] | None = None,
        *,
        plan: CompiledPlan | Plan | None = None,
        planner: str | Planner = "portfolio",
        n_procs: int | None = None,
        dtype=None,
        storage: str | None = None,
        memory_budget: int | str | None = None,
        spill_dir: str | None = None,
        spill_codec: str | None = None,
    ) -> TuckerResult:
        """One STHOSVD pass on the backend (static grid, optimal order)."""
        with self._run_lock:
            tmark = self.tracer.mark()
            try:
                with self.tracer.span("run", kind="phase", method="sthosvd") as root:
                    result = self._sthosvd_impl(
                        tensor, core_dims, plan=plan, planner=planner,
                        n_procs=n_procs, dtype=dtype, storage=storage,
                        memory_budget=memory_budget, spill_dir=spill_dir,
                        spill_codec=spill_codec, root=root,
                    )
            except BaseException:
                self._stash_error_trace(tmark)
                raise
            result.seconds = root.seconds
            result.trace = self._finish_trace(root, tmark)
            return result

    def _sthosvd_impl(
        self, tensor, core_dims, *, plan, planner, n_procs, dtype,
        storage, memory_budget, spill_dir, spill_codec, root,
    ) -> TuckerResult:
        tr = self._tr()
        with tr.span("compile", kind="phase"):
            arr, compiled, from_cache = self._prepare(
                tensor, core_dims, plan, planner, n_procs, dtype,
                storage, memory_budget, spill_codec,
            )
        # Policy sees the *working* bytes: a float32 file run at float64
        # occupies twice its on-disk size once cast.
        selection = self._select_storage(
            arr.size * compiled.dtype.itemsize, storage, memory_budget,
            spill_codec,
        )
        tr.event(
            "select:storage", mode=selection.mode, codec=selection.codec,
            reason=selection.reason,
        )
        self._annotate_root(root, compiled, selection, from_cache)
        mark = self.backend.mark_stats()
        run_store = self._open_store(selection, spill_dir)
        try:
            with self._observed(run_store):
                arr = _cast_for_run(arr, compiled.dtype, run_store)
                dec, error, _ = self._sthosvd_pass(
                    arr, compiled, store=run_store
                )
        finally:
            if run_store is not None:
                root.set(resident_peak=float(run_store.gauge.peak))
                run_store.close()
        return TuckerResult(
            decomposition=dec,
            plan=compiled.plan,
            errors=[],
            sthosvd_error=error,
            n_iters=0,
            from_cache=from_cache,
            ledger=self.backend.ledger_since(mark),
            storage=selection.mode,
            storage_reason=selection.reason,
            **(run_store.codec_stats() if run_store is not None else {}),
            **self._result_meta(),
        )

    def run(
        self,
        tensor: np.ndarray,
        core_dims: Sequence[int] | None = None,
        *,
        plan: CompiledPlan | Plan | None = None,
        planner: str | Planner = "portfolio",
        n_procs: int | None = None,
        dtype=None,
        max_iters: int = 10,
        tol: float = 1e-8,
        skip_hooi: bool = False,
        method: str = "exact",
        oversample: int = 5,
        power_iters: int = 0,
        seed: int = 0,
        storage: str | None = None,
        memory_budget: int | str | None = None,
        spill_dir: str | None = None,
        spill_codec: str | None = None,
    ) -> TuckerResult:
        """The full pipeline: STHOSVD init + HOOI refinement to tolerance.

        Repeated calls with same-shaped tensors hit the plan cache
        (``result.from_cache``). ``dtype`` overrides the working precision;
        by default float32 inputs stay float32, everything else runs in
        float64.

        ``method`` picks the initialization algorithm. ``"exact"`` (the
        default) is the Gram+EVD STHOSVD. ``"rsthosvd"`` replaces each
        mode's Gram step with a randomized range finder — the mode-``n``
        basis comes from a small sketch ``W = Y x_{m != n} Omega_m``
        with Gaussian test matrices of width ``core[n] + oversample``
        (clamped to the mode length), optionally sharpened by
        ``power_iters`` power iterations — and still truncates
        sequentially. ``"sp-rsthosvd"`` accumulates every mode sketch
        plus a core sketch in one single pass over the input and solves
        the core from the sketches alone; its reported error is a
        clamped norm-identity *estimate* (the sketched core is not a
        projection). Both are deterministic given ``seed``
        (``numpy.random.default_rng``). Randomized runs execute on the
        configured backend — including ``simcluster``, whose ledger then
        charges the sketch's reduced communication volumes.

        ``storage`` / ``memory_budget`` / ``spill_dir`` override the
        session's storage policy for this run: a spilled run
        (``result.storage == "mmap"``) stages the tensor through
        memory-mapped block files in a run-private spill directory —
        removed before this method returns — instead of holding it
        resident, so inputs larger than RAM (or than the budget)
        decompose on the shared-memory backends. (``simcluster`` spills
        its per-rank bricks too, but its sequential STHOSVD init still
        materializes working copies — it is a measurement instrument,
        not a capacity path.)
        The run is timed through the session tracer's root span
        (``result.seconds``); on traced sessions ``result.trace`` holds
        the full span tree, a metrics snapshot and the plan's modeled
        per-step volumes.
        """
        with self._run_lock:
            tmark = self.tracer.mark()
            try:
                with self.tracer.span(
                    "run", kind="phase", method="run", algorithm=method
                ) as root:
                    result = self._run_impl(
                        tensor, core_dims, plan=plan, planner=planner,
                        n_procs=n_procs, dtype=dtype, max_iters=max_iters,
                        tol=tol, skip_hooi=skip_hooi, method=method,
                        oversample=oversample, power_iters=power_iters,
                        seed=seed, storage=storage,
                        memory_budget=memory_budget, spill_dir=spill_dir,
                        spill_codec=spill_codec, root=root,
                    )
            except BaseException:
                self._stash_error_trace(tmark)
                raise
            result.seconds = root.seconds
            result.trace = self._finish_trace(root, tmark)
            return result

    def _annotate_root(
        self, root, compiled: CompiledPlan, selection, from_cache: bool
    ) -> None:
        """Run-level metadata on the root span (becomes ``trace.meta``)."""
        root.set(
            backend=self.backend.name,
            storage=selection.mode,
            itemsize=int(compiled.dtype.itemsize),
            dims=list(compiled.meta.dims),
            core=list(compiled.meta.core),
            n_procs=int(compiled.n_procs),
            from_cache=bool(from_cache),
        )
        if self._trace_enabled:
            from repro.obs import modeled_step_volumes

            root.set(modeled_volumes=modeled_step_volumes(compiled.plan))

    def _run_impl(
        self, tensor, core_dims, *, plan, planner, n_procs, dtype,
        max_iters, tol, skip_hooi, method, oversample, power_iters, seed,
        storage, memory_budget, spill_dir, spill_codec, root,
    ) -> TuckerResult:
        if method != "exact" and method not in RAND_METHODS:
            raise ValueError(
                f"method must be 'exact' or one of {RAND_METHODS}, "
                f"got {method!r}"
            )
        tr = self._tr()
        with tr.span("compile", kind="phase"):
            arr, compiled, from_cache = self._prepare(
                tensor, core_dims, plan, planner, n_procs, dtype,
                storage, memory_budget, spill_codec,
            )
        # Policy sees the *working* bytes: a float32 file run at float64
        # occupies twice its on-disk size once cast.
        selection = self._select_storage(
            arr.size * compiled.dtype.itemsize, storage, memory_budget,
            spill_codec,
        )
        tr.event(
            "select:storage", mode=selection.mode, codec=selection.codec,
            reason=selection.reason,
        )
        if selection.spilled:
            logger.info("run spills to mmap store: %s", selection.reason)
        self._annotate_root(root, compiled, selection, from_cache)
        mark = self.backend.mark_stats()
        run_store = self._open_store(selection, spill_dir)
        try:
            with self._observed(run_store):
                arr = _cast_for_run(arr, compiled.dtype, run_store)
                handle = None
                t_norm_sq = None
                if method in RAND_METHODS:
                    # Randomized init runs through the backend on EVERY
                    # backend — on simcluster that is the point: the
                    # ledger charges the sketches' reduced volumes
                    # instead of the exact path's Gram traffic.
                    with tr.span("distribute", kind="phase"):
                        handle = self.backend.distribute(
                            arr, compiled.initial_grid, store=run_store
                        )
                    init, init_error, t_norm_sq = self._rand_pass(
                        compiled, handle, method=method,
                        oversample=oversample, power_iters=power_iters,
                        seed=seed,
                    )
                elif isinstance(self.backend, SimClusterBackend):
                    # Sequential init on the cluster backend: the paper
                    # does not charge the initial decomposition, and the
                    # HOOI initial grid need not be STHOSVD-feasible (a
                    # TTM requires K_n >= q_n). Capacity caveat: this
                    # init materializes working copies of the tensor in
                    # RAM even on a spilled run — the virtual cluster is
                    # a measurement instrument, not a capacity path; only
                    # its HOOI phase runs store-backed.
                    from repro.hooi.sthosvd import sthosvd as sthosvd_sequential

                    with tr.span("sthosvd", kind="phase", init="sequential"):
                        init = sthosvd_sequential(
                            arr,
                            compiled.meta.core,
                            mode_order=list(compiled.sthosvd_order),
                            dtype=compiled.dtype,
                        )
                        init_error = init.error_vs(arr)
                else:
                    # Distribute exactly once for both phases: the input
                    # handle is read-only to every kernel, and re-placing
                    # it would double the spill (or shared-memory) copy
                    # I/O.
                    with tr.span("distribute", kind="phase"):
                        handle = self.backend.distribute(
                            arr, compiled.initial_grid, store=run_store
                        )
                    init, init_error, t_norm_sq = self._sthosvd_pass(
                        arr, compiled, store=run_store, handle=handle
                    )
                if skip_hooi or max_iters <= 0:
                    return TuckerResult(
                        decomposition=init,
                        plan=compiled.plan,
                        errors=[],
                        sthosvd_error=init_error,
                        n_iters=0,
                        method=method,
                        from_cache=from_cache,
                        ledger=self.backend.ledger_since(mark),
                        storage=selection.mode,
                        storage_reason=selection.reason,
                        **(
                            run_store.codec_stats()
                            if run_store is not None
                            else {}
                        ),
                        **self._result_meta(),
                    )
                dec, errors, converged, stopped_reason = self._hooi_loop(
                    arr, init.factors, compiled, max_iters, tol,
                    store=run_store, handle=handle, t_norm_sq=t_norm_sq,
                )
        finally:
            if run_store is not None:
                root.set(resident_peak=float(run_store.gauge.peak))
                run_store.close()
        return TuckerResult(
            decomposition=dec,
            plan=compiled.plan,
            errors=errors,
            sthosvd_error=init_error,
            n_iters=len(errors),
            method=method,
            converged=converged,
            stopped_reason=stopped_reason,
            from_cache=from_cache,
            ledger=self.backend.ledger_since(mark),
            storage=selection.mode,
            storage_reason=selection.reason,
            **(run_store.codec_stats() if run_store is not None else {}),
            **self._result_meta(),
        )

    def run_many(
        self,
        inputs: Iterable,
        core_dims: Sequence[int] | Callable | None = None,
        *,
        planner: str | Planner = "portfolio",
        n_procs: int | None = None,
        dtype=None,
        max_iters: int = 10,
        tol: float = 1e-8,
        skip_hooi: bool = False,
        method: str = "exact",
        oversample: int = 5,
        power_iters: int = 0,
        seed: int = 0,
        max_in_flight: int = 1,
        on_error: str = "raise",
        storage: str | None = None,
        memory_budget: int | str | None = None,
        spill_dir: str | None = None,
        spill_codec: str | None = None,
        prefetch: bool = True,
    ) -> BatchResult:
        """Decompose a stream of tensors through one warm session.

        ``inputs`` is any iterable — a list, a generator, a lazily read
        manifest — of in-memory ndarrays and/or ``.npy`` paths
        (``str``/``os.PathLike``); path items are opened as lazy
        memory mappings at most ``max_in_flight`` ahead of execution, so
        an arbitrarily long stream never materializes more than the
        executing item (and, spilled, never even that — see below).
        ``core_dims`` is one core shape applied to every item, or a
        callable ``shape -> core`` for heterogeneous streams.

        ``storage`` / ``memory_budget`` / ``spill_dir`` apply the
        session's storage policy per item: with a budget set, any item
        whose bytes exceed it streams through memory-mapped spill blocks
        (its ``result.storage`` reports ``"mmap"``) while smaller items
        stay resident — a mixed stream gets per-item out-of-core
        treatment exactly like it gets per-item backend selection.

        Each distinct ``(shape, core, dtype)`` compiles its plan exactly
        once (the session's LRU plan cache); within the in-flight window
        items sharing a plan key execute consecutively, so a mixed stream
        does not thrash backend selection. Worker pools stay warm across
        the whole batch: the session's backend (and, under
        ``backend="auto"``, every per-selection cached instance) is
        *never* torn down between items — auto mode re-selects per item
        from its metadata, reusing already-built pools at zero startup
        charge.

        ``prefetch`` (default on) double-buffers file-backed items: while
        item *i* computes, a background thread touches one element per
        page of item *i+1*'s memory mapping, so its pages are faulted in
        from disk by the time execution reaches it. In-memory items are
        skipped (nothing to fault); ``prefetch=False`` restores strictly
        serial I/O. Warmed bytes land in the session metrics as the
        ``prefetch_bytes`` / ``prefetch_items`` counters.

        ``on_error="raise"`` (default) propagates the first failure;
        ``"skip"`` records it as a :class:`BatchFailure` and keeps
        streaming. Per-item results, the merged per-run ledger and
        throughput counters come back as a :class:`BatchResult`.
        """
        if core_dims is None:
            raise ValueError(
                "core_dims is required: one tuple for every item, or a "
                "callable shape -> core for heterogeneous streams"
            )
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}"
            )
        max_in_flight = check_positive_int(max_in_flight, "max_in_flight")
        if dtype is not None:
            resolve_dtype(np.float64, dtype)  # fail fast on a bad knob
        if storage is not None and storage not in STORAGE_MODES:
            raise ValueError(
                f"storage must be one of {STORAGE_MODES}, got {storage!r}"
            )
        if memory_budget is not None:
            parse_bytes(memory_budget)  # fail fast on a bad budget string
        if spill_codec is not None and spill_codec != "auto":
            check_codec(spill_codec)  # fail fast on a bad codec name
        info = self.cache_info()
        hits0, misses0 = info["hits"], info["misses"]
        self._run_lock.acquire()  # whole-batch scope: tmark..drain is positional
        tmark = self.tracer.mark()
        item_traces: list[Trace] = []
        stream = iter(inputs)
        window: deque[_PendingItem] = deque()
        items: list[BatchItem] = []
        failures: list[BatchFailure] = []
        ledger = StatsLedger()
        # Warm chunks sized to the (possibly overridden) budget geometry,
        # never larger than the run stores this batch will open.
        prefetcher = (
            Prefetcher(chunk_bytes=self.prefetch_chunk_bytes(memory_budget))
            if prefetch
            else None
        )
        seq = 0
        index = 0
        exhausted = False

        def fill() -> None:
            """Top the window up to ``max_in_flight`` materialized items."""
            nonlocal index, exhausted
            while not exhausted and len(window) < max_in_flight:
                try:
                    raw = next(stream)
                except StopIteration:
                    exhausted = True
                    return
                try:
                    window.append(
                        _materialize_item(raw, index, core_dims, dtype)
                    )
                except Exception as exc:
                    if on_error == "raise":
                        raise
                    failures.append(
                        BatchFailure(
                            index=index,
                            source=_item_source(raw, index),
                            error=str(exc),
                            kind=type(exc).__name__,
                        )
                    )
                index += 1

        try:
            with self.tracer.span("batch", kind="phase", method="batch") as root:
                fill()
                while window:
                    # Drain the oldest item's plan-key group first:
                    # streaming order overall, grouped execution within
                    # the window.
                    key = window[0].group_key
                    group = [
                        entry for entry in window if entry.group_key == key
                    ]
                    for entry in group:
                        window.remove(entry)
                    # Top the window back up *before* executing: the
                    # prefetcher needs the next item materialized while
                    # this group computes, not after.
                    fill()
                    for pos, entry in enumerate(group):
                        if prefetcher is not None:
                            nxt = (
                                group[pos + 1]
                                if pos + 1 < len(group)
                                else (window[0] if window else None)
                            )
                            if nxt is not None:
                                prefetcher.schedule(nxt.array)
                        try:
                            result = self.run(
                                entry.array,
                                entry.core,
                                planner=planner,
                                n_procs=n_procs,
                                dtype=dtype,
                                max_iters=max_iters,
                                tol=tol,
                                skip_hooi=skip_hooi,
                                method=method,
                                oversample=oversample,
                                power_iters=power_iters,
                                seed=seed,
                                storage=storage,
                                memory_budget=memory_budget,
                                spill_dir=spill_dir,
                                spill_codec=spill_codec,
                            )
                        except Exception as exc:
                            if on_error == "raise":
                                raise
                            failures.append(
                                BatchFailure(
                                    index=entry.index,
                                    source=entry.source,
                                    error=str(exc),
                                    kind=type(exc).__name__,
                                )
                            )
                            # The failed run stashed its spans; fold
                            # them into the batch timeline so a skipped
                            # item still shows up in the trace.
                            if self.last_error_trace is not None:
                                item_traces.append(self.last_error_trace)
                                self.last_error_trace = None
                            continue
                        finally:
                            entry.array = None  # released before next load
                        if result.trace is not None:
                            item_traces.append(result.trace)
                        items.append(
                            BatchItem(
                                index=entry.index,
                                source=entry.source,
                                seq=seq,
                                seconds=result.seconds,
                                result=result,
                            )
                        )
                        seq += 1
                        if result.ledger is not None:
                            ledger.merge(result.ledger)
                # Join the loader before the metrics snapshot below so
                # the warmed totals it reports are final.
                if prefetcher is not None:
                    prefetcher.close()
                    self.metrics.counter("prefetch_bytes").inc(
                        prefetcher.bytes_warmed
                    )
                    self.metrics.counter("prefetch_items").inc(
                        prefetcher.items_warmed
                    )
                root.set(items=len(items), failures=len(failures))
        except BaseException:
            try:
                if self._trace_enabled:
                    tail = self.tracer.drain(tmark)
                    pieces = [tail] + item_traces
                    if self.last_error_trace is not None:
                        pieces.append(self.last_error_trace)
                    self.last_error_trace = Trace.merge(pieces)
                else:
                    self.tracer.drain(tmark)
            finally:
                self._run_lock.release()
            raise
        finally:
            if prefetcher is not None:
                prefetcher.close()
        try:
            items.sort(key=lambda item: item.index)
            failures.sort(key=lambda failure: failure.index)
            info = self.cache_info()
            self.metrics.counter("batches").inc()
            trace = None
            if self._trace_enabled:
                # Batch root first so its meta wins the first-wins merge.
                tail = self.tracer.drain(tmark)
                tail.meta.update(dict(root.attrs))
                tail.meta["method"] = "batch"
                trace = Trace.merge([tail] + item_traces)
                trace.meta["metrics"] = self.metrics.snapshot()
            else:
                self.tracer.drain(tmark)
        finally:
            self._run_lock.release()
        return BatchResult(
            items=items,
            failures=failures,
            seconds=root.seconds,
            ledger=ledger,
            plans_compiled=info["misses"] - misses0,
            cache_hits=info["hits"] - hits0,
            trace=trace,
        )
