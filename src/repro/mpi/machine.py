"""Alpha-beta machine model for the virtual cluster.

Time for a collective over a group of ``p`` ranks moving ``b`` bytes along
the critical path is modeled as ``alpha * hops(p) + beta_op * b`` where
``beta_op`` is an operation-specific inverse bandwidth. Compute time is
``flops / rate`` with separate rates for BLAS-3 (dgemm/syrk) work and the
small sequential EVD.

The defaults (:meth:`MachineModel.bgq_like`) are calibrated to the paper's
platform: one rank corresponds to one BG/Q node (16 cores; the paper maps one
MPI rank per node and threads within). Peak node dgemm is ~204.8 GF/s; we use
a 70% efficiency figure. The key *qualitative* constant is
``beta_alltoall < beta_reduce_scatter``: the paper observes (section 6.2)
that regridding (all-to-all) is faster than TTM reduce-scatter for the same
volume, which is why communication-time gains (median 9.4x) exceed volume
gains (up to 6x). We encode that as a 3x bandwidth advantage by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineModel:
    """Performance parameters of the modeled distributed machine.

    Attributes
    ----------
    flop_rate:
        Effective multiply-add rate per rank for BLAS-3 kernels
        (multiply-adds / second; the paper counts one TTM multiply-add as one
        FLOP unit, cost ``K_n * |In(u)|``).
    evd_rate:
        Effective flop rate of the *sequential* eigendecomposition used for
        the SVD step (dsyevx in the paper).
    alpha:
        Per-message latency in seconds.
    beta_reduce_scatter / beta_alltoall / beta_allgather / beta_allreduce /
    beta_bcast:
        Inverse bandwidths in seconds/byte for each collective family.
    bytes_per_element:
        Size of a tensor element (float64 = 8).
    """

    flop_rate: float = 1.4e11
    evd_rate: float = 5.0e9
    alpha: float = 5.0e-6
    beta_reduce_scatter: float = 1.0 / 1.5e9
    beta_alltoall: float = 1.0 / 4.5e9
    beta_allgather: float = 1.0 / 1.5e9
    beta_allreduce: float = 1.0 / 1.5e9
    beta_bcast: float = 1.0 / 1.5e9
    bytes_per_element: int = 8

    def __post_init__(self) -> None:
        for name in (
            "flop_rate",
            "evd_rate",
            "beta_reduce_scatter",
            "beta_alltoall",
            "beta_allgather",
            "beta_allreduce",
            "beta_bcast",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.bytes_per_element < 1:
            raise ValueError("bytes_per_element must be >= 1")

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #

    @classmethod
    def bgq_like(cls) -> "MachineModel":
        """BG/Q-flavoured defaults (one rank = one 16-core node)."""
        return cls()

    @classmethod
    def uniform(cls, bandwidth: float = 2.0e9, alpha: float = 0.0) -> "MachineModel":
        """All collectives share one bandwidth; handy for volume-only tests."""
        beta = 1.0 / bandwidth
        return cls(
            alpha=alpha,
            beta_reduce_scatter=beta,
            beta_alltoall=beta,
            beta_allgather=beta,
            beta_allreduce=beta,
            beta_bcast=beta,
        )

    def with_alltoall_advantage(self, factor: float) -> "MachineModel":
        """Return a copy whose all-to-all bandwidth is ``factor`` x the
        reduce-scatter bandwidth (used by the regrid-cost ablation)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(self, beta_alltoall=self.beta_reduce_scatter / factor)

    # ------------------------------------------------------------------ #
    # compute-time formulas
    # ------------------------------------------------------------------ #

    def gemm_seconds(self, madds: float) -> float:
        """Time for ``madds`` BLAS-3 multiply-adds on one rank."""
        return float(madds) / self.flop_rate

    def evd_seconds(self, flops: float) -> float:
        """Time for a sequential eigendecomposition of the given flop count."""
        return float(flops) / self.evd_rate

    # ------------------------------------------------------------------ #
    # collective-time formulas (critical path)
    # ------------------------------------------------------------------ #

    def _bytes(self, elements: float) -> float:
        return float(elements) * self.bytes_per_element

    def reduce_scatter_seconds(self, p: int, max_rank_elements: float) -> float:
        """Ring reduce-scatter over ``p`` ranks.

        ``max_rank_elements`` is the largest per-rank send volume; a ring
        performs ``p - 1`` steps.
        """
        if p <= 1:
            return 0.0
        return self.alpha * (p - 1) + self._bytes(max_rank_elements) * (
            self.beta_reduce_scatter
        )

    def alltoall_seconds(self, p: int, max_rank_elements: float) -> float:
        """Personalized all-to-all over ``p`` ranks (pairwise exchange)."""
        if p <= 1:
            return 0.0
        return self.alpha * (p - 1) + self._bytes(max_rank_elements) * (
            self.beta_alltoall
        )

    def allgather_seconds(self, p: int, max_rank_elements: float) -> float:
        """Ring allgather; ``max_rank_elements`` is the largest receive size."""
        if p <= 1:
            return 0.0
        return self.alpha * (p - 1) + self._bytes(max_rank_elements) * (
            self.beta_allgather
        )

    def allreduce_seconds(self, p: int, elements: float) -> float:
        """Rabenseifner-style allreduce: reduce-scatter + allgather."""
        if p <= 1:
            return 0.0
        steps = 2 * math.ceil(math.log2(p))
        moved = 2.0 * elements * (p - 1) / p
        return self.alpha * steps + self._bytes(moved) * self.beta_allreduce

    def bcast_seconds(self, p: int, elements: float) -> float:
        """Binomial-tree broadcast."""
        if p <= 1:
            return 0.0
        return self.alpha * math.ceil(math.log2(p)) + self._bytes(elements) * (
            self.beta_bcast
        )
