"""The virtual cluster: collectives over per-rank NumPy blocks.

:class:`SimCluster` plays the role of ``MPI_COMM_WORLD`` plus the mode
sub-communicators of a Cartesian grid. Because the cluster is simulated
in-process, a "distributed" array is simply a ``dict[rank -> ndarray]`` and a
collective is a function transforming such dicts. Each collective

* computes the result with the same data movement pattern a real MPI
  implementation would use (so results are bit-identical to an SPMD run up to
  floating-point reduction order, which we fix to ascending-rank order);
* appends a :class:`~repro.mpi.stats.Record` with the *exact* element volume
  (the paper's metric) and the alpha-beta modeled time.

Volume conventions (elements, not bytes):

* ``reduce_scatter`` over ``p`` ranks producing chunks of total size ``m``:
  volume ``(p - 1) * m`` — each output element is combined from ``p`` partial
  values held on distinct ranks, costing ``p - 1`` transfers (ring). This is
  exactly the paper's ``(q_n - 1) |Out(u)|`` once summed over fibers.
* ``alltoallv``: the number of elements whose source differs from their
  destination rank.
* ``allgather`` over ``p`` ranks of per-rank pieces summing to ``m``:
  volume ``(p - 1) * m`` (ring).
* ``allreduce`` of an ``n``-element buffer: ``2 n (p - 1) / p * p = 2 n (p-1)``
  total elements (reduce-scatter + allgather decomposition).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.mpi.machine import MachineModel
from repro.mpi.stats import StatsLedger
from repro.util.dtypes import accumulator_dtype
from repro.util.validation import check_positive_int


class SimCluster:
    """A deterministic, in-process stand-in for an MPI communicator.

    Parameters
    ----------
    n_procs:
        World size (the paper uses 32: one rank per BG/Q node).
    machine:
        Performance model used for the modeled-seconds column of the stats
        ledger; defaults to :meth:`MachineModel.bgq_like`.
    """

    def __init__(self, n_procs: int, machine: MachineModel | None = None) -> None:
        self.n_procs = check_positive_int(n_procs, "n_procs")
        self.machine = machine if machine is not None else MachineModel.bgq_like()
        self.stats = StatsLedger()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _check_group(self, group: Sequence[int]) -> list[int]:
        group = list(group)
        if len(group) == 0:
            raise ValueError("group must be non-empty")
        if len(set(group)) != len(group):
            raise ValueError(f"group has duplicate ranks: {group}")
        for r in group:
            if not 0 <= r < self.n_procs:
                raise ValueError(f"rank {r} out of range [0, {self.n_procs})")
        return group

    def record_compute(self, op: str, tag: str, flops: float) -> float:
        """Record a modeled compute kernel; returns modeled seconds.

        ``op`` selects the rate: ``"gemm"``/``"syrk"`` use the BLAS-3 rate,
        ``"evd"`` the sequential eigensolver rate.
        """
        if op in ("gemm", "syrk"):
            seconds = self.machine.gemm_seconds(flops)
        elif op == "evd":
            seconds = self.machine.evd_seconds(flops)
        else:
            raise ValueError(f"unknown compute op {op!r}")
        self.stats.add_compute(op=op, tag=tag, flops=flops, seconds=seconds)
        return seconds

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #

    def reduce_scatter(
        self,
        group: Sequence[int],
        partials: Mapping[int, np.ndarray],
        counts: Sequence[int],
        *,
        axis: int = 0,
        tag: str = "reduce_scatter",
    ) -> dict[int, np.ndarray]:
        """Sum per-rank partial arrays and scatter chunks along ``axis``.

        ``partials[r]`` for each rank ``r`` in ``group`` must have identical
        shape; ``counts[i]`` is the chunk size (along ``axis``) delivered to
        ``group[i]``. Returns ``{rank: chunk}``.
        """
        group = self._check_group(group)
        if set(partials.keys()) != set(group):
            raise ValueError("partials must provide exactly the group ranks")
        counts = [int(c) for c in counts]
        if len(counts) != len(group):
            raise ValueError("counts must have one entry per group rank")
        if any(c < 0 for c in counts):
            raise ValueError("counts must be non-negative")
        shapes = {partials[r].shape for r in group}
        if len(shapes) != 1:
            raise ValueError(f"partial shapes differ: {shapes}")
        (shape,) = shapes
        if sum(counts) != shape[axis]:
            raise ValueError(
                f"counts sum to {sum(counts)} but axis {axis} has length {shape[axis]}"
            )

        # Deterministic ascending-rank reduction order; floats keep their
        # precision, everything else accumulates in float64.
        first = partials[group[0]]
        total = first.astype(accumulator_dtype(first.dtype), copy=True)
        for r in group[1:]:
            total += partials[r]

        offsets = np.concatenate(([0], np.cumsum(counts)))
        out: dict[int, np.ndarray] = {}
        index: list[slice] = [slice(None)] * total.ndim
        for i, r in enumerate(group):
            index[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            out[r] = np.ascontiguousarray(total[tuple(index)])

        p = len(group)
        if p > 1:
            per_fiber = int(np.prod(shape)) // shape[axis] if shape[axis] else 0
            chunk_elems = [c * per_fiber for c in counts]
            total_out = sum(chunk_elems)
            volume = (p - 1) * total_out
            # Each rank's ring send volume is (p-1) x its *output* chunk of
            # the reduction; the slowest rank owns the largest chunk.
            max_rank = (p - 1) * max(chunk_elems)
            seconds = self.machine.reduce_scatter_seconds(p, max_rank)
            self.stats.add_comm("reduce_scatter", tag, p, float(volume), seconds)
        return out

    def alltoallv(
        self,
        send: Mapping[int, Mapping[int, np.ndarray]],
        *,
        tag: str = "alltoallv",
    ) -> dict[int, dict[int, np.ndarray]]:
        """Personalized exchange: ``send[src][dst]`` -> ``recv[dst][src]``.

        Only off-rank pieces (``src != dst``) count toward volume. Pieces may
        be absent (no message). Arrays are not copied for the local piece.
        """
        group = self._check_group(list(send.keys()))
        recv: dict[int, dict[int, np.ndarray]] = {r: {} for r in group}
        sent = dict.fromkeys(group, 0)
        got = dict.fromkeys(group, 0)
        volume = 0
        for src in group:
            for dst, piece in send[src].items():
                if dst not in recv:
                    raise ValueError(f"destination rank {dst} not in group {group}")
                recv[dst][src] = piece
                if src != dst:
                    size = int(piece.size)
                    volume += size
                    sent[src] += size
                    got[dst] += size
        p = len(group)
        if p > 1 and volume > 0:
            max_rank = max(max(sent[r], got[r]) for r in group)
            seconds = self.machine.alltoall_seconds(p, max_rank)
            self.stats.add_comm("alltoallv", tag, p, float(volume), seconds)
        return recv

    def allgather(
        self,
        group: Sequence[int],
        pieces: Mapping[int, np.ndarray],
        *,
        axis: int = 0,
        tag: str = "allgather",
    ) -> dict[int, np.ndarray]:
        """Concatenate per-rank pieces along ``axis``; everyone gets the whole.

        Pieces are concatenated in ascending *group position* order, matching
        MPI_Allgatherv semantics with ranks ordered as in ``group``.
        """
        group = self._check_group(group)
        if set(pieces.keys()) != set(group):
            raise ValueError("pieces must provide exactly the group ranks")
        gathered = np.concatenate([pieces[r] for r in group], axis=axis)
        out = {r: gathered if i == 0 else gathered.copy() for i, r in enumerate(group)}
        p = len(group)
        if p > 1:
            total = int(gathered.size)
            sizes = {r: int(pieces[r].size) for r in group}
            volume = sum(total - s for s in sizes.values())  # == (p-1)*total
            max_rank = total - min(sizes.values())
            seconds = self.machine.allgather_seconds(p, max_rank)
            self.stats.add_comm("allgather", tag, p, float(volume), seconds)
        return out

    def allreduce(
        self,
        group: Sequence[int],
        data: Mapping[int, np.ndarray],
        *,
        tag: str = "allreduce",
    ) -> dict[int, np.ndarray]:
        """Elementwise sum over the group; everyone gets the total."""
        group = self._check_group(group)
        if set(data.keys()) != set(group):
            raise ValueError("data must provide exactly the group ranks")
        shapes = {data[r].shape for r in group}
        if len(shapes) != 1:
            raise ValueError(f"shapes differ: {shapes}")
        first = data[group[0]]
        total = first.astype(accumulator_dtype(first.dtype), copy=True)
        for r in group[1:]:
            total += data[r]
        out = {r: total if i == 0 else total.copy() for i, r in enumerate(group)}
        p = len(group)
        if p > 1:
            n = int(total.size)
            volume = 2.0 * n * (p - 1)
            seconds = self.machine.allreduce_seconds(p, n)
            self.stats.add_comm("allreduce", tag, p, volume, seconds)
        return out

    def bcast(
        self,
        group: Sequence[int],
        value: np.ndarray,
        *,
        root: int,
        tag: str = "bcast",
    ) -> dict[int, np.ndarray]:
        """Broadcast ``value`` from ``root`` to the group."""
        group = self._check_group(group)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        out = {r: value if r == root else value.copy() for r in group}
        p = len(group)
        if p > 1:
            n = int(np.asarray(value).size)
            volume = float(n * (p - 1))
            seconds = self.machine.bcast_seconds(p, n)
            self.stats.add_comm("bcast", tag, p, volume, seconds)
        return out
