"""Simulated MPI substrate.

The paper runs on a 32-node IBM BG/Q with MPI; that hardware (and ``mpi4py``)
is unavailable here, so this subpackage provides a **deterministic in-process
virtual cluster**: :class:`~repro.mpi.comm.SimCluster` executes the same
collective algorithms a distributed HOOI engine uses (reduce-scatter,
all-to-all-v, all-gather, all-reduce, broadcast) on real NumPy blocks, while
recording exact per-operation communication volume and modeled time under an
alpha-beta :class:`~repro.mpi.machine.MachineModel`.

The paper's two optimization metrics — FLOP load and communication volume —
are machine-independent; the virtual cluster reproduces them exactly.
Modeled time uses a BG/Q-like preset so that relative comparisons ("who wins,
by what factor") carry over.
"""

from repro.mpi.machine import MachineModel
from repro.mpi.stats import Record, StatsLedger
from repro.mpi.comm import SimCluster

__all__ = ["MachineModel", "Record", "StatsLedger", "SimCluster"]
