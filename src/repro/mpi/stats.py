"""Ledger of communication and computation events.

Every collective executed by :class:`repro.mpi.comm.SimCluster` and every
modeled compute kernel appends a :class:`Record`. The benchmark harness then
aggregates volumes and modeled times per *tag* — tags follow a
``"component:detail"`` convention, e.g. ``"ttm:mode3"``, ``"regrid:node7"``,
``"svd:gram"``, ``"core:chain"``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable


@dataclass(frozen=True)
class Record:
    """One communication or computation event.

    Attributes
    ----------
    category: ``"comm"`` or ``"compute"``.
    op: operation name (``"reduce_scatter"``, ``"alltoallv"``, ``"gemm"``...).
    tag: caller-supplied label for aggregation.
    group_size: number of ranks participating (1 for compute).
    elements: total elements moved across the group (0 for compute). This is
        the paper's "communication volume" unit.
    flops: total multiply-adds (0 for comm).
    seconds: modeled critical-path time of the event.
    """

    category: str
    op: str
    tag: str
    group_size: int = 1
    elements: float = 0.0
    flops: float = 0.0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.category not in ("comm", "compute"):
            raise ValueError(f"bad category {self.category!r}")
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if self.elements < 0 or self.flops < 0 or self.seconds < 0:
            raise ValueError("elements/flops/seconds must be non-negative")


class StatsLedger:
    """Append-only list of :class:`Record` with aggregation helpers.

    ``observer``, when set, is called with every record as it is
    appended — the hook the tracing layer (:mod:`repro.obs`) uses to
    mirror ledger events as spans without touching any recording call
    site. Observers see live appends only: :meth:`merge` copies records
    that were already observed (or deliberately not) at their origin.

    Appends, :meth:`mark` and :meth:`since` are thread-safe: concurrent
    serving workers share warm backends, and per-run scoping relies on
    mark/slice positions staying consistent under concurrent appends.
    (Scoping one run's records still requires the runs themselves not to
    interleave on one ledger — the session serializes execution per
    backend; the lock keeps the bookkeeping itself uncorrupted.)
    """

    def __init__(self) -> None:
        self._records: list[Record] = []
        self._lock = threading.Lock()
        self.observer: Callable[[Record], None] | None = None

    # -- recording ------------------------------------------------------ #

    def add(self, record: Record) -> None:
        with self._lock:
            self._records.append(record)
            observer = self.observer
        if observer is not None:
            observer(record)

    def add_comm(
        self, op: str, tag: str, group_size: int, elements: float, seconds: float
    ) -> None:
        self.add(
            Record(
                category="comm",
                op=op,
                tag=tag,
                group_size=group_size,
                elements=elements,
                seconds=seconds,
            )
        )

    def add_compute(self, op: str, tag: str, flops: float, seconds: float) -> None:
        self.add(
            Record(category="compute", op=op, tag=tag, flops=flops, seconds=seconds)
        )

    # -- access ---------------------------------------------------------- #

    @property
    def records(self) -> tuple[Record, ...]:
        with self._lock:
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def merge(self, other: "StatsLedger") -> None:
        """Append all records of ``other`` (used when composing phases)."""
        records = other.records  # snapshot outside our lock (no deadlock)
        with self._lock:
            self._records.extend(records)

    def mark(self) -> int:
        """Opaque position marker for :meth:`since` (the current length)."""
        with self._lock:
            return len(self._records)

    def since(self, mark: int) -> "StatsLedger":
        """A new ledger holding only the records appended after ``mark``.

        This is how callers scope a shared, append-only ledger to one run:
        take a :meth:`mark` before executing, slice after. The records are
        shared (they are immutable), the list is not.
        """
        out = StatsLedger()
        with self._lock:
            out._records.extend(self._records[mark:])
        return out

    # -- aggregation ----------------------------------------------------- #

    def _select(
        self,
        category: str | None = None,
        op: str | None = None,
        tag_prefix: str | None = None,
    ) -> Iterable[Record]:
        for r in self.records:  # snapshot: aggregation under live appends
            if category is not None and r.category != category:
                continue
            if op is not None and r.op != op:
                continue
            if tag_prefix is not None and not r.tag.startswith(tag_prefix):
                continue
            yield r

    def volume(self, op: str | None = None, tag_prefix: str | None = None) -> float:
        """Total communication volume (elements) over matching records."""
        return sum(r.elements for r in self._select("comm", op, tag_prefix))

    def flops(self, tag_prefix: str | None = None) -> float:
        """Total multiply-adds over matching compute records."""
        return sum(r.flops for r in self._select("compute", None, tag_prefix))

    def comm_seconds(
        self, op: str | None = None, tag_prefix: str | None = None
    ) -> float:
        return sum(r.seconds for r in self._select("comm", op, tag_prefix))

    def compute_seconds(self, tag_prefix: str | None = None) -> float:
        return sum(r.seconds for r in self._select("compute", None, tag_prefix))

    def total_seconds(self, tag_prefix: str | None = None) -> float:
        return sum(r.seconds for r in self._select(None, None, tag_prefix))

    def summary(self) -> dict[str, float]:
        """The uniform aggregate every backend reports via ``stats()``."""
        return {
            "comm_volume": self.volume(),
            "flops": self.flops(),
            "comm_seconds": self.comm_seconds(),
            "compute_seconds": self.compute_seconds(),
            "events": float(len(self)),
        }

    def by_tag_prefix(
        self, key: Callable[[str], str] = lambda tag: tag.split(":", 1)[0]
    ) -> dict[str, dict[str, float]]:
        """Aggregate volume/flops/seconds keyed by ``key(tag)``.

        Default key takes the component part of ``component:detail`` tags.
        """
        out: dict[str, dict[str, float]] = {}
        for r in self.records:
            slot = out.setdefault(
                key(r.tag),
                {"volume": 0.0, "flops": 0.0, "comm_seconds": 0.0, "compute_seconds": 0.0},
            )
            if r.category == "comm":
                slot["volume"] += r.elements
                slot["comm_seconds"] += r.seconds
            else:
                slot["flops"] += r.flops
                slot["compute_seconds"] += r.seconds
        return out
