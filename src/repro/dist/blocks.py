"""Near-even 1-D block partitioning.

Imposing a grid extent ``q`` on a mode of length ``L`` splits the index
range ``[0, L)`` into ``q`` contiguous blocks whose sizes differ by at most
one, larger blocks first (the paper's block distribution, section 3). The
front-loaded convention makes the mapping a closed form, so both the engine
and the redistribution kernel can locate any element's owner without
communication.
"""

from __future__ import annotations

from repro.util.validation import check_positive_int


def block_sizes(length: int, parts: int) -> list[int]:
    """Sizes of ``parts`` near-even contiguous blocks of ``range(length)``.

    Sizes are non-increasing (``ceil`` blocks first) and differ by at most
    one. ``parts > length`` is rejected — the engine never tolerates a rank
    owning an empty block (the paper's grid-validity constraint
    ``q_n <= K_n``).
    """
    length = check_positive_int(length, "length")
    parts = check_positive_int(parts, "parts")
    if parts > length:
        raise ValueError(
            f"cannot split length {length} into {parts} parts without "
            f"empty blocks"
        )
    base, extra = divmod(length, parts)
    return [base + 1] * extra + [base] * (parts - extra)


def block_ranges(length: int, parts: int) -> list[tuple[int, int]]:
    """Half-open ``(start, end)`` index ranges of the near-even blocks."""
    ranges: list[tuple[int, int]] = []
    start = 0
    for size in block_sizes(length, parts):
        ranges.append((start, start + size))
        start += size
    return ranges


def block_range(length: int, parts: int, index: int) -> tuple[int, int]:
    """The ``index``-th block's ``(start, end)`` range."""
    if not 0 <= index < parts:
        raise ValueError(f"block index {index} out of range [0, {parts})")
    base, extra = divmod(check_positive_int(length, "length"), parts)
    if parts > length:
        # delegate for the canonical error message
        block_sizes(length, parts)
    if index < extra:
        start = index * (base + 1)
        return (start, start + base + 1)
    start = extra * (base + 1) + (index - extra) * base
    return (start, start + base)
