"""The distributed-tensor engine (paper sections 3-5).

``repro.dist`` is the layer between the planner (:mod:`repro.core`) and the
algorithms (:mod:`repro.hooi`): dense tensors block-distributed over
Cartesian processor grids on a :class:`~repro.mpi.comm.SimCluster`, with

* :mod:`repro.dist.blocks` — the near-even 1-D partitioning closed forms;
* :mod:`repro.dist.grid_comm` — :class:`ProcessorGrid` rank/coordinate maps
  and mode-fiber / mode-slice sub-communicator groups;
* :mod:`repro.dist.dtensor` — :class:`DistTensor` scatter/gather and
  distributed norms;
* :mod:`repro.dist.ttm` — :func:`dist_ttm`, the local-dgemm +
  reduce-scatter TTM with the paper's exact ``(q_n - 1) |Out(u)|`` volume;
* :mod:`repro.dist.gram` — :func:`dist_gram` / :func:`dist_leading_factor`,
  the Gram+EVD SVD step;
* :mod:`repro.dist.regrid` — :func:`regrid`, the all-to-all grid move of
  dynamic gridding.

Every collective charges its exact element volume to the cluster's
:class:`~repro.mpi.stats.StatsLedger`, which is what lets the
engine-vs-model benchmarks reconcile executed runs against the planner's
closed-form cost model.
"""

from repro.dist.blocks import block_range, block_ranges, block_sizes
from repro.dist.dtensor import DistTensor
from repro.dist.gram import dist_gram, dist_leading_factor
from repro.dist.grid_comm import ProcessorGrid
from repro.dist.regrid import regrid
from repro.dist.ttm import dist_ttm

__all__ = [
    "block_range",
    "block_ranges",
    "block_sizes",
    "DistTensor",
    "ProcessorGrid",
    "dist_gram",
    "dist_leading_factor",
    "dist_ttm",
    "regrid",
]
