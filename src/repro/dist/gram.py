"""Distributed Gram matrices and the Gram+EVD factor extraction.

The paper's SVD step (section 5) forms the Gram matrix of the mode-``n``
unfolding, ``G = Z_(n) Z_(n)^T``, then solves a *sequential* symmetric EVD —
``G`` is only ``L_n x L_n`` and ``L_n <= 2000``. Forming ``G`` needs
full-length mode-``n`` fibers on each rank:

* if the grid already has ``q_n = 1``, fibers are whole; each rank adds its
  ``L x L`` partial ``U U^T`` from its local column slab and a world
  allreduce completes ``G``;
* if ``q_n > 1`` but some grid of the same processor count with ``q_n = 1``
  fits the tensor, the engine regrids onto the deterministic target chosen by
  :func:`repro.core.grids.svd_regrid_target` — the same closed form the cost
  model charges — for at most ``|Z|`` alltoallv volume;
* otherwise it allgathers fiber segments within each mode-fiber group
  (volume ``(q_n - 1) |Z|``) and lets one representative per group
  contribute the slab's partial.

The factor is then the leading-``k`` eigenvector matrix of ``G``, computed
redundantly on every rank from the allreduced ``G`` (so no broadcast is
needed) with the deterministic sign convention shared with the sequential
kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.grids import svd_regrid_target
from repro.dist.dtensor import DistTensor
from repro.dist.regrid import regrid
from repro.tensor.linalg import leading_eigvecs
from repro.tensor.unfold import unfold
from repro.util.validation import check_mode


def dist_gram(
    dtensor: DistTensor,
    mode: int,
    *,
    tag: str = "gram",
) -> np.ndarray:
    """Gram matrix of the mode-``mode`` unfolding, replicated on every rank.

    Communication lands in the ledger under ``{tag}:regrid`` /
    ``{tag}:allgather`` (layout fixing) and ``{tag}:allreduce`` (the world
    reduction of the ``L x L`` partials); the local syrk is one ``syrk``
    compute record.
    """
    mode = check_mode(mode, dtensor.ndim)
    grid = dtensor.grid
    cluster = dtensor.cluster
    length = dtensor.global_shape[mode]

    slabs: dict[int, np.ndarray]
    if grid.shape[mode] == 1:
        slabs = dict(dtensor.blocks)
    else:
        target = svd_regrid_target(grid.shape, dtensor.global_shape, mode)
        if target is not None:
            work = regrid(dtensor, target, tag=f"{tag}:regrid")
            slabs = dict(work.blocks)
        else:
            # Allgather fallback: assemble full-length fibers within each
            # mode-fiber group. Every rank of a group ends up with the same
            # slab, so only the group's first rank contributes the partial.
            slabs = {}
            for group in grid.mode_groups(mode):
                gathered = cluster.allgather(
                    group,
                    {r: dtensor.block(r) for r in group},
                    axis=mode,
                    tag=f"{tag}:allgather",
                )
                slabs[group[0]] = gathered[group[0]]

    # Local L x L partials (syrk); ranks without a slab contribute zeros.
    partials: dict[int, np.ndarray] = {}
    max_rank_flops = 0
    total_flops = 0
    for rank in range(cluster.n_procs):
        slab = slabs.get(rank)
        if slab is None:
            partials[rank] = np.zeros((length, length), dtype=dtensor.dtype)
            continue
        u = unfold(slab, mode)
        partials[rank] = u @ u.T
        flops = length * (length + 1) // 2 * u.shape[1]
        total_flops += flops
        max_rank_flops = max(max_rank_flops, flops)
    cluster.stats.add_compute(
        op="syrk",
        tag=f"{tag}:gram",
        flops=float(total_flops),
        seconds=cluster.machine.gemm_seconds(max_rank_flops),
    )

    total = cluster.allreduce(grid.ranks, partials, tag=f"{tag}:allreduce")
    g = total[0]
    return (g + g.T) * 0.5


def dist_leading_factor(
    dtensor: DistTensor,
    mode: int,
    k: int,
    *,
    tag: str = "svd",
) -> np.ndarray:
    """Leading-``k`` factor of the mode-``mode`` unfolding (replicated).

    The EVD runs redundantly on every rank from the replicated Gram; the
    ledger records it once (its critical-path time — the redundant copies
    overlap perfectly).
    """
    g = dist_gram(dtensor, mode, tag=tag)
    length = g.shape[0]
    dtensor.cluster.record_compute(
        "evd", f"{tag}:evd", flops=4.0 * length**3 / 3.0
    )
    return leading_eigvecs(g, k)
