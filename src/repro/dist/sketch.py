"""Distributed randomized sketches on the virtual cluster.

The communication story is the whole point of sketching on a cluster
(Minster, Li & Ballard): a mode-``n`` sketch ``W = Y x_{m != n} Omega_m``
is tiny — ``L_n x prod(s_m)`` — and every rank's *block* contribution to
it is independent, so the only collective is one world **allreduce of
the sketch itself**. The exact path's Gram step moves ``O(L_n^2)`` (or
regrids/allgathers slabs of ``Y``); the sketch moves ``2 |W| (p-1)``
elements and never rearranges the input. The ledger records exactly
that.

Per-rank contributions reuse the same
:func:`~repro.backends.sketch.add_block_contribution` kernel as the
shared-memory backends: the test matrices are column-restricted to the
rank's global block ranges, and the allreduce (ascending group-rank
order, like every SimCluster reduction) plays the role of the
ascending-block sum — so distributed sketches agree with the
shared-memory ones to reduction-order rounding.
"""

from __future__ import annotations

import numpy as np

from repro.backends.sketch import (
    add_block_contribution,
    out_shape,
    sketch_flops,
)
from repro.core.grids import svd_regrid_target
from repro.dist.dtensor import DistTensor
from repro.dist.regrid import regrid
from repro.tensor.unfold import unfold
from repro.util.validation import check_mode

__all__ = ["dist_cross_gram", "dist_sketch"]


def dist_sketch(
    dtensor: DistTensor,
    specs,
    *,
    tag: str = "sketch",
) -> tuple[list[np.ndarray], float]:
    """All sketches of ``dtensor`` (replicated) plus its squared norm.

    One pass over every rank's resident block computes all the spec
    contributions and the norm partial; per spec, one world allreduce of
    the small sketch tensor (ledger tag ``{tag}:allreduce{i}``) — volume
    ``2 |W_i| (p-1)`` — replicates it, and one scalar allreduce
    (``{tag}:norm``) completes the norm. The input is never regridded,
    gathered, or re-read.
    """
    cluster = dtensor.cluster
    grid = dtensor.grid
    dims = dtensor.global_shape
    specs = list(specs)

    max_rank_flops = 0.0
    total_flops = 0.0
    per_spec_partials: list[dict[int, np.ndarray]] = []
    norm_partials: dict[int, np.ndarray] = {}
    rank_flops: dict[int, float] = {}
    for rank in range(cluster.n_procs):
        block = dtensor.block(rank)
        ranges = dtensor.block_ranges_of(rank)
        flops = float(block.size)  # the norm partial's multiply-adds
        for i, spec in enumerate(specs):
            if len(per_spec_partials) <= i:
                per_spec_partials.append({})
            out = np.zeros(out_shape(dims, spec), dtype=dtensor.dtype)
            add_block_contribution(out, block, spec, ranges)
            per_spec_partials[i][rank] = out
            flops += sketch_flops(block.shape, spec)
        norm_partials[rank] = np.array(
            [float(np.sum(block * block))], dtype=np.float64
        )
        rank_flops[rank] = flops
        total_flops += flops
        max_rank_flops = max(max_rank_flops, flops)
    cluster.stats.add_compute(
        op="gemm",
        tag=f"{tag}:gemm",
        flops=float(total_flops),
        seconds=cluster.machine.gemm_seconds(max_rank_flops),
    )

    sketches = []
    for i, partials in enumerate(per_spec_partials):
        total = cluster.allreduce(
            grid.ranks, partials, tag=f"{tag}:allreduce{i}"
        )
        sketches.append(total[0])
    norm_total = cluster.allreduce(
        grid.ranks, norm_partials, tag=f"{tag}:norm"
    )
    return sketches, float(norm_total[0][0])


def dist_cross_gram(
    a: DistTensor,
    b: DistTensor,
    mode: int,
    *,
    tag: str = "xgram",
) -> np.ndarray:
    """``unfold(A, mode) @ unfold(B, mode).T`` replicated on every rank.

    The power-iteration primitive. Both tensors live on the same grid
    (``b`` is a TTM image of ``a``, which preserves the grid) and agree
    on every mode length except ``mode``; the slab strategy mirrors
    :func:`repro.dist.gram.dist_gram` — whole fibers in place when
    ``q_mode == 1``, else regrid both onto the deterministic ``q_mode =
    1`` target, else allgather fiber segments within mode groups — then
    per-rank gemm partials reduce with one world allreduce of the small
    ``L x w`` result.
    """
    mode = check_mode(mode, a.ndim)
    grid = a.grid
    cluster = a.cluster
    length = a.global_shape[mode]
    width = b.global_shape[mode]

    # One layout decision for BOTH tensors — their per-rank slabs must
    # pair on identical non-mode index sets. The target is computed from
    # ``a``; it differs from ``b``'s geometry only along ``mode``, where
    # the target's extent is 1, so it is feasible for ``b`` whenever it
    # is for ``a``.
    if grid.shape[mode] == 1:
        target = None
        use_allgather = False
    else:
        target = svd_regrid_target(grid.shape, a.global_shape, mode)
        use_allgather = target is None

    def slabs_of(dtensor: DistTensor) -> dict[int, np.ndarray]:
        if grid.shape[mode] == 1:
            return dict(dtensor.blocks)
        if not use_allgather:
            work = regrid(dtensor, target, tag=f"{tag}:regrid")
            return dict(work.blocks)
        slabs: dict[int, np.ndarray] = {}
        for group in dtensor.grid.mode_groups(mode):
            gathered = dtensor.cluster.allgather(
                group,
                {r: dtensor.block(r) for r in group},
                axis=mode,
                tag=f"{tag}:allgather",
            )
            slabs[group[0]] = gathered[group[0]]
        return slabs

    slabs_a = slabs_of(a)
    slabs_b = slabs_of(b)

    partials: dict[int, np.ndarray] = {}
    max_rank_flops = 0
    total_flops = 0
    for rank in range(cluster.n_procs):
        slab_a = slabs_a.get(rank)
        slab_b = slabs_b.get(rank)
        if slab_a is None or slab_b is None:
            partials[rank] = np.zeros((length, width), dtype=a.dtype)
            continue
        ua = unfold(slab_a, mode)
        ub = unfold(slab_b, mode)
        partials[rank] = ua @ ub.T
        flops = length * width * ua.shape[1]
        total_flops += flops
        max_rank_flops = max(max_rank_flops, flops)
    cluster.stats.add_compute(
        op="gemm",
        tag=f"{tag}:gemm",
        flops=float(total_flops),
        seconds=cluster.machine.gemm_seconds(max_rank_flops),
    )

    total = cluster.allreduce(grid.ranks, partials, tag=f"{tag}:allreduce")
    return total[0]
