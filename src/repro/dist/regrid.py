"""Grid-to-grid redistribution (the paper's all-to-all, section 4.3).

Dynamic gridding moves a tensor between two grids of the same processor
count. Because both layouts are closed-form (near-even blocks in C rank
order), every rank can compute the intersection of its brick with every
destination brick locally; :func:`regrid` exchanges exactly the elements
whose owner changes. The model charges a full ``|X|`` for the move — the
engine's alltoallv records the true (never larger) volume, which the
engine-vs-model benchmark reconciles.
"""

from __future__ import annotations

import numpy as np

from repro.dist.blocks import block_ranges
from repro.dist.dtensor import DistTensor
from repro.dist.grid_comm import ProcessorGrid


def _overlaps(
    src: tuple[tuple[int, int], ...],
    dst_ranges: list[list[tuple[int, int]]],
) -> list[tuple[int, ...]]:
    """Per-mode destination block indices whose range intersects ``src``."""
    hits: list[tuple[int, ...]] = []
    for mode, (lo, hi) in enumerate(src):
        hits.append(
            tuple(
                i
                for i, (a, b) in enumerate(dst_ranges[mode])
                if a < hi and lo < b
            )
        )
    return hits


def regrid(
    dtensor: DistTensor,
    new_grid: tuple[int, ...],
    *,
    tag: str = "regrid",
) -> DistTensor:
    """Redistribute ``dtensor`` onto ``new_grid``.

    A same-grid call returns ``dtensor`` itself and records nothing. The
    exchange is a single alltoallv whose recorded volume counts only the
    elements leaving their source rank.
    """
    new_grid = tuple(int(q) for q in new_grid)
    if new_grid == dtensor.grid.shape:
        return dtensor
    cluster = dtensor.cluster
    dst_grid = ProcessorGrid(cluster, new_grid)
    shape = dtensor.global_shape
    if dst_grid.ndim != len(shape):
        raise ValueError(
            f"grid {new_grid} has {dst_grid.ndim} modes but tensor has "
            f"{len(shape)}"
        )
    dst_ranges = [
        block_ranges(length, extent)
        for length, extent in zip(shape, dst_grid.shape)
    ]

    # Slice every source brick along its intersections with destination
    # bricks; the piece covering global ranges [max(lo), min(hi)) per mode
    # goes to the destination rank at those block coordinates.
    send: dict[int, dict[int, np.ndarray]] = {}
    pieces_meta: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}
    for src in range(cluster.n_procs):
        src_ranges = dtensor.block_ranges_of(src)
        block = dtensor.block(src)
        send[src] = {}
        per_mode = _overlaps(src_ranges, dst_ranges)
        for coords in np.ndindex(*[len(h) for h in per_mode]):
            dst_coords = tuple(h[i] for h, i in zip(per_mode, coords))
            dst = dst_grid.rank_of(dst_coords)
            inter = tuple(
                (max(slo, dst_ranges[m][c][0]), min(shi, dst_ranges[m][c][1]))
                for m, ((slo, shi), c) in enumerate(
                    zip(src_ranges, dst_coords)
                )
            )
            local = tuple(
                slice(lo - slo, hi - slo)
                for (lo, hi), (slo, _) in zip(inter, src_ranges)
            )
            send[src][dst] = block[local]
            pieces_meta[(src, dst)] = inter

    recv = cluster.alltoallv(send, tag=tag)

    # Reassemble destination bricks from the received pieces.
    out_blocks: dict[int, np.ndarray] = {}
    for dst in range(cluster.n_procs):
        dst_coords = dst_grid.coords(dst)
        brick_ranges = tuple(
            dst_ranges[m][c] for m, c in enumerate(dst_coords)
        )
        brick = np.empty(
            tuple(b - a for a, b in brick_ranges), dtype=dtensor.dtype
        )
        for src, piece in recv[dst].items():
            inter = pieces_meta[(src, dst)]
            local = tuple(
                slice(lo - dlo, hi - dlo)
                for (lo, hi), (dlo, _) in zip(inter, brick_ranges)
            )
            brick[local] = piece
        out_blocks[dst] = brick

    return DistTensor(dst_grid, shape, out_blocks)
