"""Distributed TTM: local dgemm + reduce-scatter over mode fibers.

The paper's TTM engine (section 3): to compute ``Z = X x_n A`` with ``X``
block-distributed on grid ``g``, each rank multiplies the columns of ``A``
matching its mode-``n`` block range against its local brick's mode-``n``
unfolding — a partial product of the *full* output fiber segment — and the
``q_n`` ranks of each mode-``n`` fiber group reduce-scatter those partials,
leaving each rank its near-even share of the output mode. The output lives
on the same grid; the exchanged volume is exactly ``(q_n - 1) |Out(u)|``.
"""

from __future__ import annotations

import numpy as np

from repro.dist.blocks import block_sizes
from repro.dist.dtensor import DistTensor
from repro.tensor.ttm import ttm
from repro.util.dtypes import as_float
from repro.util.validation import check_mode


def dist_ttm(
    dtensor: DistTensor,
    matrix: np.ndarray,
    mode: int,
    *,
    tag: str = "ttm",
) -> DistTensor:
    """Multiply ``dtensor`` by ``matrix`` (shape ``K x L_mode``) along ``mode``.

    Returns a new :class:`DistTensor` on the same grid with the mode length
    replaced by ``K``. Records one ``gemm`` compute event (total multiply-adds
    ``K |X|``, critical-path seconds from the largest per-rank share) and one
    ``reduce_scatter`` comm event per mode-fiber group.
    """
    mode = check_mode(mode, dtensor.ndim)
    matrix = as_float(matrix)
    grid = dtensor.grid
    length = dtensor.global_shape[mode]
    if matrix.ndim != 2 or matrix.shape[1] != length:
        raise ValueError(
            f"matrix shape {matrix.shape} incompatible with mode {mode} of "
            f"length {length}"
        )
    k = matrix.shape[0]
    q = grid.shape[mode]
    if k < q:
        raise ValueError(
            f"output mode length K={k} is smaller than the grid extent "
            f"q_mode={q}: some ranks would own empty output blocks"
        )

    # Local partial products: A's column block against the local unfolding.
    cluster = dtensor.cluster
    partials: dict[int, np.ndarray] = {}
    max_rank_flops = 0
    for rank in range(grid.n_procs):
        lo, hi = dtensor.block_ranges_of(rank)[mode]
        block = dtensor.block(rank)
        partials[rank] = ttm(block, matrix[:, lo:hi], mode)
        max_rank_flops = max(max_rank_flops, k * block.size)
    total_flops = k * dtensor.cardinality
    cluster.stats.add_compute(
        op="gemm",
        tag=tag,
        flops=float(total_flops),
        seconds=cluster.machine.gemm_seconds(max_rank_flops),
    )

    # Reduce-scatter within every mode-n fiber group: rank with mode
    # coordinate c receives the c-th near-even chunk of the K output slices.
    out_counts = block_sizes(k, q)
    out_blocks: dict[int, np.ndarray] = {}
    for group in grid.mode_groups(mode):
        chunks = cluster.reduce_scatter(
            group,
            {r: partials[r] for r in group},
            out_counts,
            axis=mode,
            tag=tag,
        )
        out_blocks.update(chunks)

    out_shape = (
        dtensor.global_shape[:mode] + (k,) + dtensor.global_shape[mode + 1 :]
    )
    return DistTensor(grid, out_shape, out_blocks)
