"""Cartesian processor grids over a :class:`~repro.mpi.comm.SimCluster`.

A :class:`ProcessorGrid` imposes grid coordinates on the cluster's ranks in
C (row-major) order — the analogue of ``MPI_Cart_create`` — and derives the
two sub-communicator families the paper's engine needs (section 3):

* **mode-fiber groups** for mode ``n``: ranks that agree on every coordinate
  except the ``n``-th. The distributed TTM reduce-scatters partial products
  within each fiber group; the SVD's allgather fallback assembles full-length
  fibers within them.
* **mode-slice groups** for mode ``n``: ranks sharing the same ``n``-th
  coordinate (one slice per coordinate value). These are the complements of
  the fiber groups and the natural groups for slice-wise reductions.
"""

from __future__ import annotations

import math

from repro.mpi.comm import SimCluster
from repro.util.validation import check_mode


class ProcessorGrid:
    """A Cartesian rank layout for ``cluster`` with extents ``shape``.

    Raises ``ValueError`` unless every extent is positive and the number of
    grid cells equals the cluster's world size.
    """

    def __init__(self, cluster: SimCluster, shape: tuple[int, ...]) -> None:
        shape = tuple(int(q) for q in shape)
        if len(shape) == 0:
            raise ValueError("grid shape must have at least one mode")
        if any(q < 1 for q in shape):
            raise ValueError(f"grid extents must be positive, got {shape}")
        cells = math.prod(shape)
        if cells != cluster.n_procs:
            raise ValueError(
                f"grid {shape} has {cells} cells but the cluster has "
                f"{cluster.n_procs} ranks"
            )
        self.cluster = cluster
        self.shape = shape
        self._strides = tuple(
            math.prod(shape[d + 1 :]) for d in range(len(shape))
        )

    # ------------------------------------------------------------------ #
    # basic geometry
    # ------------------------------------------------------------------ #

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_procs(self) -> int:
        return self.cluster.n_procs

    @property
    def ranks(self) -> list[int]:
        """All world ranks, ascending (the world group)."""
        return list(range(self.n_procs))

    def coords(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of ``rank`` (C order: last mode fastest)."""
        if not 0 <= rank < self.n_procs:
            raise ValueError(f"rank {rank} out of range [0, {self.n_procs})")
        out = []
        for stride, extent in zip(self._strides, self.shape):
            out.append((rank // stride) % extent)
        return tuple(out)

    def rank_of(self, coords: tuple[int, ...]) -> int:
        """Inverse of :meth:`coords`."""
        coords = tuple(int(c) for c in coords)
        if len(coords) != self.ndim:
            raise ValueError(
                f"coords {coords} have {len(coords)} entries, grid has "
                f"{self.ndim} modes"
            )
        for c, extent in zip(coords, self.shape):
            if not 0 <= c < extent:
                raise ValueError(f"coords {coords} out of grid {self.shape}")
        return sum(c * s for c, s in zip(coords, self._strides))

    # ------------------------------------------------------------------ #
    # sub-communicator groups
    # ------------------------------------------------------------------ #

    def mode_group(self, mode: int, rank: int) -> list[int]:
        """The mode-``mode`` fiber group containing ``rank``.

        Ranks are ordered by ascending mode coordinate, the order every
        collective over the group uses (fixing the reduction order).
        """
        mode = check_mode(mode, self.ndim)
        coords = list(self.coords(rank))
        group = []
        for c in range(self.shape[mode]):
            coords[mode] = c
            group.append(self.rank_of(tuple(coords)))
        return group

    def mode_groups(self, mode: int) -> list[list[int]]:
        """All mode-``mode`` fiber groups; together they partition the ranks.

        Groups are listed in C order of the fixed (non-``mode``)
        coordinates; each group is ordered by ascending mode coordinate.
        """
        mode = check_mode(mode, self.ndim)
        seen: dict[tuple[int, ...], list[int]] = {}
        for rank in range(self.n_procs):
            coords = self.coords(rank)
            key = coords[:mode] + coords[mode + 1 :]
            seen.setdefault(key, []).append(rank)
        # ranks ascend with the mode coordinate inside each group (C order),
        # and dict insertion order is C order of the fixed coordinates.
        return list(seen.values())

    def slice_group(self, mode: int, coord: int) -> list[int]:
        """Ranks whose mode-``mode`` coordinate equals ``coord``, ascending."""
        mode = check_mode(mode, self.ndim)
        if not 0 <= coord < self.shape[mode]:
            raise ValueError(
                f"coordinate {coord} out of range [0, {self.shape[mode]}) "
                f"for mode {mode}"
            )
        return [
            rank
            for rank in range(self.n_procs)
            if self.coords(rank)[mode] == coord
        ]

    def slice_groups(self, mode: int) -> list[list[int]]:
        """All mode-``mode`` slice groups, by ascending coordinate."""
        mode = check_mode(mode, self.ndim)
        return [self.slice_group(mode, c) for c in range(self.shape[mode])]

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessorGrid(shape={self.shape}, n_procs={self.n_procs})"
