"""Block-distributed dense tensors.

A :class:`DistTensor` is the engine's representation of the paper's data
layout (section 3): a dense tensor block-partitioned over a Cartesian
:class:`~repro.dist.grid_comm.ProcessorGrid`, rank ``r`` owning the brick at
its grid coordinates with near-even per-mode block ranges. Because the
cluster is simulated in-process, the per-rank blocks live in one dict; the
collectives of :class:`~repro.mpi.comm.SimCluster` transform such dicts and
charge the exact element volumes to the stats ledger.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.dist.blocks import block_ranges
from repro.dist.grid_comm import ProcessorGrid
from repro.mpi.comm import SimCluster
from repro.util.dtypes import as_float


class DistTensor:
    """A dense tensor block-distributed over a processor grid.

    Parameters
    ----------
    grid:
        The processor grid; its dimensionality must match ``global_shape``.
    global_shape:
        Shape of the underlying global tensor.
    blocks:
        ``{rank: ndarray}`` with one entry per rank; each block's shape must
        equal the rank's brick shape under the near-even partitioning.
    """

    def __init__(
        self,
        grid: ProcessorGrid,
        global_shape: tuple[int, ...],
        blocks: Mapping[int, np.ndarray],
    ) -> None:
        global_shape = tuple(int(d) for d in global_shape)
        if len(global_shape) != grid.ndim:
            raise ValueError(
                f"tensor has {len(global_shape)} modes but grid "
                f"{grid.shape} has {grid.ndim}"
            )
        # Per-mode block ranges; raises on empty blocks (q_n > L_n).
        ranges = [
            block_ranges(length, extent)
            for length, extent in zip(global_shape, grid.shape)
        ]
        if set(blocks.keys()) != set(range(grid.n_procs)):
            raise ValueError(
                f"blocks must cover every rank 0..{grid.n_procs - 1}, got "
                f"{sorted(blocks.keys())}"
            )
        for rank in range(grid.n_procs):
            coords = grid.coords(rank)
            expected = tuple(
                ranges[m][c][1] - ranges[m][c][0] for m, c in enumerate(coords)
            )
            if tuple(blocks[rank].shape) != expected:
                raise ValueError(
                    f"rank {rank} block has shape {blocks[rank].shape}, "
                    f"expected {expected} at grid coords {coords}"
                )
        self.grid = grid
        self.global_shape = global_shape
        self._ranges = ranges
        self._blocks = {r: blocks[r] for r in range(grid.n_procs)}
        #: the BlockStore backing the bricks, if this tensor was spilled
        #: (set by :meth:`from_global`; None for in-memory tensors).
        self.store = None

    # ------------------------------------------------------------------ #
    # construction / assembly
    # ------------------------------------------------------------------ #

    @classmethod
    def from_global(
        cls,
        cluster: SimCluster,
        tensor: np.ndarray,
        grid_shape: tuple[int, ...],
        *,
        store=None,
    ) -> "DistTensor":
        """Scatter a global ndarray onto ``grid_shape`` (no volume charged).

        The paper does not charge the initial distribution of ``T``; neither
        does the engine. Floating dtypes are preserved (float32 stays
        float32); everything else promotes to float64.

        ``store``, when given, is a :class:`~repro.storage.BlockStore`
        the per-rank bricks are spilled through instead of living in RAM:
        each brick is written write-through (chunked, so only one chunk of
        one brick is resident while cutting a lazily mapped global
        tensor) and the block dict holds the store's memory-mapped views.
        The engine's kernels read them like any ndarray; the store owns
        the files and reclaims them on close.
        """
        tensor = as_float(tensor)
        grid = ProcessorGrid(cluster, tuple(grid_shape))
        if tensor.ndim != grid.ndim:
            raise ValueError(
                f"tensor has {tensor.ndim} modes but grid {grid.shape} has "
                f"{grid.ndim}"
            )
        ranges = [
            block_ranges(length, extent)
            for length, extent in zip(tensor.shape, grid.shape)
        ]
        blocks: dict[int, np.ndarray] = {}
        for rank in range(grid.n_procs):
            coords = grid.coords(rank)
            index = tuple(
                slice(*ranges[m][c]) for m, c in enumerate(coords)
            )
            if store is None:
                blocks[rank] = np.ascontiguousarray(tensor[index])
            else:
                key = store.next_key(f"rank{rank}")
                # Bricks are mutable per-rank working state, so they are
                # always spilled raw: an encoded block could not back the
                # writable mapping below, whatever the store's default.
                store.put(key, tensor[index], codec="raw")
                # Writable mapping: ranks own their bricks (collectives
                # may accumulate in place); mutations land in the spill
                # file, exactly like a local buffer would.
                blocks[rank] = store.writer(key)
        out = cls(grid, tensor.shape, blocks)
        out.store = store
        return out

    def to_global(self) -> np.ndarray:
        """Assemble and return the global ndarray (test/driver-side only)."""
        out = np.empty(self.global_shape, dtype=self.dtype)
        for rank in range(self.grid.n_procs):
            out[self.block_slices(rank)] = self._blocks[rank]
        return out

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #

    @property
    def cluster(self) -> SimCluster:
        return self.grid.cluster

    @property
    def ndim(self) -> int:
        return len(self.global_shape)

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the per-rank blocks."""
        return self._blocks[0].dtype

    @property
    def cardinality(self) -> int:
        """Total number of elements ``|T|`` (the paper's cardinality)."""
        return int(np.prod(self.global_shape, dtype=np.int64))

    @property
    def blocks(self) -> dict[int, np.ndarray]:
        """The per-rank block dict (shared, not copied)."""
        return self._blocks

    def block(self, rank: int) -> np.ndarray:
        return self._blocks[rank]

    def block_ranges_of(self, rank: int) -> tuple[tuple[int, int], ...]:
        """Per-mode global ``(start, end)`` ranges of ``rank``'s brick."""
        coords = self.grid.coords(rank)
        return tuple(self._ranges[m][c] for m, c in enumerate(coords))

    def block_slices(self, rank: int) -> tuple[slice, ...]:
        return tuple(slice(a, b) for a, b in self.block_ranges_of(rank))

    def block_shape(self, rank: int) -> tuple[int, ...]:
        return tuple(b - a for a, b in self.block_ranges_of(rank))

    def mode_ranges(self, mode: int) -> list[tuple[int, int]]:
        """The near-even block ranges along one mode."""
        return list(self._ranges[mode])

    # ------------------------------------------------------------------ #
    # distributed reductions
    # ------------------------------------------------------------------ #

    def fro_norm_sq(self, *, tag: str = "norm") -> float:
        """Squared Frobenius norm via local partials + world allreduce."""
        partials = {
            r: np.array([float(np.sum(b * b))])
            for r, b in self._blocks.items()
        }
        total = self.cluster.allreduce(self.grid.ranks, partials, tag=tag)
        return float(total[0][0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistTensor(shape={self.global_shape}, grid={self.grid.shape})"
        )
