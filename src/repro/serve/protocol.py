"""Newline-delimited JSON front-end for :class:`TuckerServer`.

One JSON object per line. Requests (``op`` defaults to ``"run"``) are
submitted as they arrive and execute concurrently across the server's
workers; *responses are written in submission order* (a dedicated
responder thread walks the tickets FIFO), so a client can pair line *k*
of output with line *k* of its requests without correlating ids —
concurrency shows up in the latencies, not in the framing.

Control ops:

* ``{"op": "stats"}`` — inline :meth:`TuckerServer.stats_snapshot`.
* ``{"op": "drain"}`` — stop reading, finish in-flight requests, tear
  down the workers, emit a final ``{"op": "drain", ...}`` line with the
  closing stats. EOF on the input behaves like ``drain``.

Transports: :func:`serve_stdio` (the ``repro serve`` default) and
:func:`serve_socket` (a local ``AF_UNIX`` listener, one client at a
time — same line protocol across connections; only ``drain`` or closing
the listener ends the server).

Shed requests (queue full / draining) and malformed lines get an
immediate ``ok=false`` response; the server process never dies on a bad
request.
"""

from __future__ import annotations

import json
import logging
import os
import queue as queue_mod
import socket
import threading

from repro.serve.admission import AdmissionError
from repro.serve.server import TuckerServer

__all__ = ["serve_lines", "serve_socket", "serve_stdio"]

logger = logging.getLogger(__name__)


class _Responder:
    """Writes ticket results (FIFO) and control lines: one lock, one stream."""

    def __init__(self, write_line) -> None:
        self._write_line = write_line
        self._lock = threading.Lock()
        self._tickets: queue_mod.Queue = queue_mod.Queue()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-responder", daemon=True
        )
        self._thread.start()

    def emit(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True)
        with self._lock:
            self._write_line(line)

    def enqueue(self, item) -> None:
        """Queue a ticket *or* an already-resolved payload dict.

        Resolved payloads (shed/parse errors, stats snapshots) ride the
        same FIFO as tickets so the output ordering really is the input
        ordering — an instant rejection never overtakes the response of
        an earlier, still-running request.
        """
        self._tickets.put(item)

    def _loop(self) -> None:
        while True:
            item = self._tickets.get()
            if item is None:
                return
            try:
                payload = item if isinstance(item, dict) else item.result().to_dict()
                self.emit(payload)
            except (OSError, ValueError, TypeError):
                # a broken pipe / unencodable payload must not wedge the
                # drain; later tickets still flush in order
                logger.exception("responder failed to write a result")

    def close(self) -> None:
        """Flush every queued ticket, then stop."""
        self._tickets.put(None)
        self._thread.join()


def _handle_stream(server: TuckerServer, read_line, write_line) -> bool:
    """Pump one line stream into the server; ``True`` when drain was asked.

    Every accepted request's response is flushed (in submission order)
    before this returns; the server itself is left running — the caller
    decides whether EOF means drain (stdio) or just a departed client
    (socket).
    """
    responder = _Responder(write_line)
    drain_requested = False
    try:
        while True:
            line = read_line()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                responder.enqueue({
                    "id": None, "ok": False,
                    "error": f"bad JSON: {exc}",
                    "error_kind": "JSONDecodeError",
                })
                continue
            op = payload.get("op", "run") if isinstance(payload, dict) else "run"
            if op == "stats":
                responder.enqueue({"op": "stats", **server.stats_snapshot()})
                continue
            if op == "drain":
                drain_requested = True
                break
            try:
                ticket = server.submit(payload)
            except AdmissionError as exc:
                responder.enqueue({
                    "id": payload.get("id"), "ok": False, "shed": True,
                    "error": str(exc), "error_kind": "AdmissionError",
                    "reason": exc.reason,
                })
                continue
            except (ValueError, TypeError, OSError) as exc:
                responder.enqueue({
                    "id": payload.get("id"), "ok": False,
                    "error": str(exc), "error_kind": type(exc).__name__,
                })
                continue
            responder.enqueue(ticket)
    finally:
        responder.close()
    return drain_requested


def _drain_and_report(server: TuckerServer, write_line) -> dict:
    """Drain the server and emit the final ``{"op": "drain"}`` line."""
    drained = server.drain()
    stats = server.stats_snapshot()
    try:
        write_line(json.dumps({"op": "drain", "ok": drained, **stats},
                              sort_keys=True))
    except (OSError, ValueError, TypeError):
        logger.exception("failed to write the drain line")
    return stats


def serve_lines(server: TuckerServer, read_line, write_line) -> dict:
    """Run the line protocol until drain/EOF; returns the final stats.

    ``read_line`` yields one decoded line per call (``""``/``None`` on
    EOF); ``write_line`` takes one undecorated JSON string. The caller
    owns the transport; this owns the framing and the server lifecycle
    (the server is always drained before returning).
    """
    _handle_stream(server, read_line, write_line)
    return _drain_and_report(server, write_line)


def serve_stdio(server: TuckerServer, stdin=None, stdout=None) -> dict:
    """Speak the line protocol over stdio (the ``repro serve`` default)."""
    import sys

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def write_line(line: str) -> None:
        stdout.write(line + "\n")
        stdout.flush()

    return serve_lines(server, stdin.readline, write_line)


def serve_socket(server: TuckerServer, path: str) -> dict:
    """Listen on a local ``AF_UNIX`` socket; one client at a time.

    Each connection speaks the line protocol. A client's EOF ends only
    its connection; ``{"op": "drain"}`` ends the whole server (the final
    drain line goes to the client that asked). The socket file is
    unlinked on exit.
    """
    if os.path.exists(path):
        os.unlink(path)
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    stats: dict = {}
    try:
        listener.bind(path)
        listener.listen(1)
        logger.info("serving on %s", path)
        while True:
            conn, _ = listener.accept()
            with conn, conn.makefile("r") as rfile, conn.makefile("w") as wfile:

                def write_line(line: str) -> None:
                    wfile.write(line + "\n")
                    wfile.flush()

                if _handle_stream(server, rfile.readline, write_line):
                    stats = _drain_and_report(server, write_line)
                    return stats
    finally:
        listener.close()
        if os.path.exists(path):
            os.unlink(path)
        server.drain()
