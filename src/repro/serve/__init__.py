"""repro.serve — a concurrent Tucker decomposition service.

The batch layer (PR 4) made one session stream many tensors; this
package makes many *clients* stream tensors through many sessions at
once, on one machine, without giving up the guarantees the stack
already earns:

* **Worker-private sessions.** Each of N workers owns a full
  :class:`~repro.session.TuckerSession` — plan LRU, warm backend pools,
  tracer. Concurrency comes from worker parallelism; within a session
  execution stays serialized, so per-run ledgers and traces remain
  exact (see the session's ``_run_lock`` notes).
* **Plan-key affinity** (:class:`~repro.serve.router.AffinityRouter`):
  requests agreeing on ``(dims, core, dtype)`` ride the same worker's
  compiled plan and warm pool, with backlog-aware spillover.
* **Admission control**
  (:class:`~repro.serve.admission.AdmissionController`): a global
  ``memory_budget`` charged per request through a
  :class:`~repro.storage.store.ResidentGauge`; oversized requests run
  alone via the out-of-core path instead of being shed; a full bounded
  queue sheds fast with a typed
  :class:`~repro.serve.admission.AdmissionError`.
* **Pipelined prefetch**: while a worker computes, its
  :class:`~repro.session.Prefetcher` faults the next request's ``.npy``
  pages in from disk.
* **Deadlines, cancellation, graceful drain** on
  :class:`~repro.serve.server.TuckerServer`, with
  :class:`~repro.serve.stats.ServerStats` reporting through the PR-6
  metrics registry.

Wire clients speak newline-delimited JSON via
:mod:`repro.serve.protocol` (``repro serve`` on the CLI)::

    with TuckerServer(workers=2, memory_budget="256M") as srv:
        t = srv.submit({"id": "r1", "random": {"dims": [24, 24, 24]},
                        "core": [6, 6, 6]})
        print(t.result().seconds)
"""

from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.protocol import serve_lines, serve_socket, serve_stdio
from repro.serve.request import (
    DeadlineExceeded,
    RequestCancelled,
    RequestResult,
    ServeError,
    ServeRequest,
    Ticket,
    parse_request,
    plan_key,
)
from repro.serve.router import AffinityRouter
from repro.serve.server import TuckerServer
from repro.serve.stats import ServerStats
from repro.serve.worker import ServeWorker

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AffinityRouter",
    "DeadlineExceeded",
    "RequestCancelled",
    "RequestResult",
    "ServeError",
    "ServeRequest",
    "ServeWorker",
    "ServerStats",
    "Ticket",
    "TuckerServer",
    "parse_request",
    "plan_key",
    "serve_lines",
    "serve_socket",
    "serve_stdio",
]
