"""Admission control: a global memory budget over concurrent requests.

The server shares one :class:`AdmissionController` across its workers.
Before a worker materializes a request it acquires the request's
working-set bytes here; the controller charges them to a
:class:`~repro.storage.store.ResidentGauge` and blocks further
acquisitions that would push the total past ``memory_budget`` until
running requests release their leases. That makes the budget a true
concurrency limiter: two half-budget tensors decompose in parallel, two
three-quarter-budget tensors take turns.

A request *larger* than the whole budget is charged ``min(nbytes,
budget)`` — it runs, alone, with the session's out-of-core path keeping
its *resident* footprint inside the budget (the PR-5 spill guarantee) —
rather than being shed as unserveable.

:class:`AdmissionError` is reserved for the server's fast rejections:
a full bounded queue, or submissions after drain began.
"""

from __future__ import annotations

import threading

from repro.storage import ResidentGauge, parse_bytes

__all__ = ["AdmissionController", "AdmissionError"]


class AdmissionError(Exception):
    """The server refused (or timed out) a request at the door.

    ``reason`` is machine-readable: ``"queue_full"``, ``"draining"`` or
    ``"budget_timeout"``.
    """

    def __init__(self, message: str, *, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


class AdmissionController:
    """Byte-budget gatekeeper shared by every worker of one server."""

    def __init__(
        self,
        memory_budget: int | str | None = None,
        *,
        gauge: ResidentGauge | None = None,
    ) -> None:
        self.budget = (
            parse_bytes(memory_budget) if memory_budget is not None else None
        )
        if self.budget is not None and self.budget <= 0:
            raise ValueError("memory_budget must be positive bytes")
        self.gauge = gauge if gauge is not None else ResidentGauge()
        self._cond = threading.Condition()
        self.waits = 0  # acquisitions that had to block

    def charge_for(self, nbytes: int) -> int:
        """The bytes actually charged for an ``nbytes`` request."""
        nbytes = int(nbytes)
        if self.budget is None:
            return nbytes
        return min(nbytes, self.budget)

    def acquire(self, nbytes: int, *, timeout: float | None = None) -> int:
        """Block until ``nbytes`` fits under the budget; return the charge.

        With no budget the charge is recorded (observability) and never
        blocks. ``timeout`` bounds the wait — a deadline-carrying request
        hands its remaining seconds here — and raises
        :class:`AdmissionError` (``reason="budget_timeout"``) on expiry.
        """
        charge = self.charge_for(nbytes)
        if self.budget is None:
            self.gauge.charge(charge)
            return charge
        with self._cond:
            if self.gauge.current + charge > self.budget:
                self.waits += 1
                fits = self._cond.wait_for(
                    lambda: self.gauge.current + charge <= self.budget,
                    timeout=timeout,
                )
                if not fits:
                    raise AdmissionError(
                        f"budget wait timed out: {charge} bytes against "
                        f"{self.budget - self.gauge.current} free",
                        reason="budget_timeout",
                    )
            self.gauge.charge(charge)
        return charge

    def release(self, charge: int) -> None:
        with self._cond:
            self.gauge.release(charge)
            self._cond.notify_all()

    def snapshot(self) -> dict:
        return {
            "budget": self.budget,
            "charged": self.gauge.current,
            "charged_peak": self.gauge.peak,
            "waits": self.waits,
        }
