"""The serving front door: bounded admission over a pool of workers.

:class:`TuckerServer` turns the batch-era session into a long-lived
service. Each request is validated, shed fast when the server is full
or draining (:class:`~repro.serve.admission.AdmissionError`), routed by
plan-key affinity to a worker whose private session already holds the
compiled plan and a warm pool, and executed under the global memory
budget with the next input prefetching in the background. ``submit``
returns a :class:`~repro.serve.request.Ticket` future; ``drain`` is the
graceful end: finish everything in flight, reject newcomers, tear the
worker sessions (and their spill artifacts) down.
"""

from __future__ import annotations

import logging
import threading

from repro.obs import MetricsRegistry
from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.request import ServeRequest, Ticket, parse_request, plan_key
from repro.serve.router import AffinityRouter
from repro.serve.stats import ServerStats
from repro.serve.worker import ServeWorker
from repro.session import TuckerSession
from repro.util.validation import check_positive_int

__all__ = ["TuckerServer"]

logger = logging.getLogger(__name__)

DEFAULT_MAX_QUEUE = 64


class TuckerServer:
    """A concurrent decomposition service over private worker sessions.

    Parameters
    ----------
    workers: number of worker threads, each owning a full
        :class:`~repro.session.TuckerSession` (backend pools included).
    backend / n_procs / planner / storage / spill_dir / spill_codec /
        trace: forwarded
        to every worker session — ``n_procs`` is *per worker*; size it so
        ``workers x n_procs`` fits the machine.
    memory_budget: global working-set budget across all workers. Each
        request charges ``min(its bytes, budget)`` while it executes;
        requests that don't fit wait their turn (or their deadline). The
        same budget reaches the worker sessions, so an individually
        oversized tensor runs spilled with bounded resident bytes.
    max_queue: bound on queued-plus-running requests; past it ``submit``
        sheds with :class:`AdmissionError` (``reason="queue_full"``).
    prefetch: double-buffer file-backed inputs on every worker.
    deadline: default per-request deadline (seconds from submission),
        applied to requests that don't carry their own.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        backend: str = "auto",
        n_procs: int | None = None,
        planner: str = "portfolio",
        memory_budget: int | str | None = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        storage: str = "auto",
        spill_dir: str | None = None,
        spill_codec: str = "auto",
        prefetch: bool = True,
        deadline: float | None = None,
        trace: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        workers = check_positive_int(workers, "workers")
        self.max_queue = check_positive_int(max_queue, "max_queue")
        self.planner = planner
        if deadline is not None and float(deadline) <= 0:
            raise ValueError("deadline must be positive seconds")
        self.default_deadline = deadline
        self.stats = ServerStats(metrics)
        self.admission = AdmissionController(memory_budget)
        self.router = AffinityRouter(workers)
        self._lock = threading.Lock()
        self._pending = 0
        self._draining = False
        self._drained = threading.Condition(self._lock)
        self._seq = 0
        self.workers = [
            ServeWorker(
                i,
                session=TuckerSession(
                    backend=backend,
                    n_procs=n_procs,
                    storage=storage,
                    memory_budget=memory_budget,
                    spill_dir=spill_dir,
                    spill_codec=spill_codec,
                    trace=trace,
                ),
                admission=self.admission,
                stats=self.stats,
                on_finished=self._finished,
                prefetch=prefetch,
            )
            for i in range(workers)
        ]

    # -- submission -------------------------------------------------------- #

    def submit(self, request: ServeRequest | dict) -> Ticket:
        """Admit, route and enqueue one request; returns its ticket.

        Raises :class:`AdmissionError` (shed) when draining or when the
        bounded queue is full, and ``ValueError`` for malformed
        requests — both *before* any tensor bytes are touched.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
        if isinstance(request, dict):
            request = parse_request(request, index=seq)
        if request.deadline is None and self.default_deadline is not None:
            request.deadline = self.default_deadline
        key = plan_key(request)  # validates shape/core without data I/O
        loads = [w.load() for w in self.workers]
        with self._lock:
            if self._draining:
                self.stats.shed("draining")
                raise AdmissionError(
                    "server is draining; not accepting requests",
                    reason="draining",
                )
            if self._pending >= self.max_queue:
                self.stats.shed("queue_full")
                raise AdmissionError(
                    f"queue full ({self._pending}/{self.max_queue} pending)",
                    reason="queue_full",
                )
            worker_idx, hit = self.router.route(key, loads)
            self._pending += 1
            self.stats.queue_depth(self._pending)
        self.stats.submitted()
        ticket = Ticket(request, worker_idx, hit)
        self.workers[worker_idx].submit(ticket)
        return ticket

    def _finished(self, ticket: Ticket) -> None:
        with self._lock:
            self._pending -= 1
            self.stats.queue_depth(self._pending)
            if self._pending == 0:
                self._drained.notify_all()

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    # -- lifecycle --------------------------------------------------------- #

    def drain(self, *, timeout: float | None = None) -> bool:
        """Graceful shutdown: finish in-flight work, reject new work.

        Returns ``True`` when every queued request completed (and the
        worker threads, sessions and pools are torn down) within
        ``timeout``; ``False`` leaves the workers stopping in the
        background. Idempotent.
        """
        with self._lock:
            already = self._draining
            self._draining = True
            if not already:
                logger.info("drain: %d request(s) in flight", self._pending)
            done = self._drained.wait_for(
                lambda: self._pending == 0, timeout=timeout
            )
        if not done:
            return False
        for worker in self.workers:
            worker.stop(timeout=timeout)
        return all(not w.thread.is_alive() for w in self.workers)

    def close(self) -> None:
        """Drain with no timeout (blocks until fully stopped)."""
        self.drain()

    def __enter__(self) -> "TuckerServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reporting --------------------------------------------------------- #

    def merged_trace(self):
        """All workers' per-run traces as one, or ``None`` untraced."""
        from repro.obs import Trace

        traces = [t for w in self.workers for t in w.traces]
        return Trace.merge(traces) if traces else None

    def stats_snapshot(self) -> dict:
        """The ``{"op": "stats"}`` payload: server + admission + affinity."""
        out = self.stats.snapshot(
            admission=self.admission.snapshot(),
            affinity=self.router.snapshot(),
        )
        out["workers"] = len(self.workers)
        out["pending"] = self.pending
        out["draining"] = self._draining
        out["plan_cache"] = {
            f"w{w.index}": w.session.cache_info() for w in self.workers
        }
        return out
