"""Server-level metrics, wired through the PR-6 observability layer.

One :class:`ServerStats` per server, backed by a
:class:`~repro.obs.metrics.MetricsRegistry` — the same instrument kinds
(and the same percentile semantics) the session and bench layers use, so
a serving dashboard and a ``repro bench`` report quote comparable
numbers. :meth:`snapshot` is the JSON payload behind the protocol's
``{"op": "stats"}`` and the CLI's shutdown report.
"""

from __future__ import annotations

import time

from repro.obs import MetricsRegistry, safe_rate

__all__ = ["ServerStats"]


class ServerStats:
    """Counters/gauges/latency histograms for one serving process."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._started = time.monotonic()

    # -- recording (hot path: one counter bump per event) ----------------- #

    def submitted(self) -> None:
        self.registry.counter("serve_submitted").inc()

    def shed(self, reason: str) -> None:
        self.registry.counter("serve_shed").inc()
        self.registry.counter(f"serve_shed:{reason}").inc()

    def completed(self, *, seconds: float, wall_seconds: float) -> None:
        self.registry.counter("serve_completed").inc()
        self.registry.histogram("serve_run_seconds").observe(seconds)
        self.registry.histogram("serve_latency_seconds").observe(wall_seconds)

    def failed(self, kind: str) -> None:
        self.registry.counter("serve_failed").inc()
        self.registry.counter(f"serve_failed:{kind}").inc()

    def cancelled(self) -> None:
        self.registry.counter("serve_cancelled").inc()

    def deadline_missed(self) -> None:
        self.registry.counter("serve_deadline_missed").inc()

    def queue_depth(self, depth: int) -> None:
        self.registry.gauge("serve_queue_depth").set(float(depth))

    def prefetched(self, nbytes: int) -> None:
        if nbytes:
            self.registry.counter("serve_prefetch_bytes").inc(nbytes)

    # -- reporting --------------------------------------------------------- #

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def snapshot(
        self, *, admission: dict | None = None, affinity: dict | None = None
    ) -> dict:
        """The JSON stats payload (all rates via :func:`safe_rate`)."""
        counters = self.registry.snapshot()["counters"]
        completed = counters.get("serve_completed", 0.0)
        latency = self.registry.histogram("serve_latency_seconds")
        pct = latency.percentiles((50.0, 90.0, 99.0))
        out = {
            "elapsed_seconds": self.elapsed,
            "submitted": counters.get("serve_submitted", 0.0),
            "completed": completed,
            "failed": counters.get("serve_failed", 0.0),
            "shed": counters.get("serve_shed", 0.0),
            "cancelled": counters.get("serve_cancelled", 0.0),
            "deadline_missed": counters.get("serve_deadline_missed", 0.0),
            "queue_depth": self.registry.gauge("serve_queue_depth").value,
            "queue_depth_peak": self.registry.gauge("serve_queue_depth").peak,
            "items_per_second": safe_rate(completed, self.elapsed),
            "latency_p50": pct[50.0],
            "latency_p90": pct[90.0],
            "latency_p99": pct[99.0],
            "prefetch_bytes": counters.get("serve_prefetch_bytes", 0.0),
        }
        if admission is not None:
            out["admission"] = admission
        if affinity is not None:
            out["affinity"] = affinity
        return out
