"""Request/response types for the serving layer.

A :class:`ServeRequest` names one decomposition: its input (an in-memory
array, a ``.npy`` path, or a seeded random spec), the core shape, and
per-request execution knobs (method, dtype, deadline). Submitting one to
a :class:`~repro.serve.server.TuckerServer` yields a :class:`Ticket` —
a small future the caller waits on, cancels, or polls — which resolves
to a :class:`RequestResult`.

``plan_key(request)`` is the affinity identity: requests agreeing on
``(dims, core, dtype)`` share a compiled plan and a warm backend, so the
router keeps them on the same worker.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.util.validation import check_core_dims, check_dims, check_positive_int

__all__ = [
    "DeadlineExceeded",
    "RequestCancelled",
    "RequestResult",
    "ServeError",
    "ServeRequest",
    "Ticket",
    "parse_request",
    "plan_key",
]

_METHODS = ("run", "sthosvd", "rsthosvd", "sp-rsthosvd")


class ServeError(Exception):
    """Base class for serving-layer failures."""


class DeadlineExceeded(ServeError):
    """The request's deadline elapsed before (or while) it could run."""


class RequestCancelled(ServeError):
    """The request was cancelled while still queued."""


@dataclass
class ServeRequest:
    """One decomposition to serve.

    Exactly one of ``array`` / ``path`` / ``dims`` (random spec) names
    the input. ``deadline`` is seconds from submission; a request still
    queued (or still waiting on admission) when it elapses fails with
    :class:`DeadlineExceeded` instead of running.
    """

    core: tuple[int, ...]
    id: str = ""
    array: np.ndarray | None = None
    path: str | None = None
    dims: tuple[int, ...] | None = None
    seed: int = 0
    method: str = "run"
    dtype: str | None = None
    max_iters: int = 10
    tol: float = 1e-8
    deadline: float | None = None
    save: str | None = None

    def __post_init__(self) -> None:
        sources = [
            s for s in (self.array is not None, self.path is not None,
                        self.dims is not None) if s
        ]
        if len(sources) != 1:
            raise ValueError(
                "exactly one of array=/path=/dims= must name the input"
            )
        if self.method not in _METHODS:
            raise ValueError(
                f"method must be one of {_METHODS}, got {self.method!r}"
            )
        if self.dims is not None:
            self.dims = check_dims(self.dims)
        self.core = tuple(int(k) for k in self.core)
        self.max_iters = check_positive_int(self.max_iters, "max_iters")
        if self.deadline is not None and float(self.deadline) <= 0:
            raise ValueError("deadline must be positive seconds")

    def materialize(self) -> np.ndarray:
        """The input tensor: resident array, lazy ``.npy`` map, or RNG."""
        if self.array is not None:
            return self.array
        if self.path is not None:
            arr = np.load(os.fspath(self.path), mmap_mode="r")
            if not isinstance(arr, np.ndarray):
                raise ValueError(
                    f"{self.path} does not contain a single ndarray"
                )
            return arr
        from repro.tensor.random import random_tensor

        return random_tensor(self.dims, seed=self.seed)

    def input_shape(self) -> tuple[int, ...]:
        """The input's dims without materializing it (header peek for paths)."""
        if self.array is not None:
            return tuple(self.array.shape)
        if self.dims is not None:
            return tuple(self.dims)
        shape, _ = _npy_header(os.fspath(self.path))
        return shape

    def input_dtype_name(self) -> str:
        """The *working* dtype name this request resolves to."""
        if self.dtype is not None:
            return np.dtype(self.dtype).name
        if self.array is not None:
            src = self.array.dtype
        elif self.dims is not None:
            src = np.dtype(np.float64)
        else:
            _, src = _npy_header(os.fspath(self.path))
        # Mirrors repro.util.serial.resolve_dtype: float32 stays, the
        # rest runs float64.
        return "float32" if src == np.dtype(np.float32) else "float64"

    def nbytes(self) -> int:
        """Working-set bytes (shape x resolved dtype) for admission."""
        n = 1
        for d in self.input_shape():
            n *= int(d)
        return n * np.dtype(self.input_dtype_name()).itemsize

    def source(self) -> str:
        if self.path is not None:
            return os.fspath(self.path)
        if self.dims is not None:
            return f"random{tuple(self.dims)}#seed={self.seed}"
        return f"array{tuple(self.array.shape)}"


def _npy_header(path: str) -> tuple[tuple[int, ...], np.dtype]:
    """Shape and dtype from a ``.npy`` header (maps, never reads data)."""
    arr = np.load(path, mmap_mode="r")
    if not isinstance(arr, np.ndarray):
        raise ValueError(f"{path} does not contain a single ndarray")
    return tuple(int(d) for d in arr.shape), arr.dtype


def plan_key(request: ServeRequest) -> tuple:
    """The affinity identity: ``(dims, core, dtype.name)``.

    Matches the session plan-cache grouping (`_materialize_item`'s
    ``group_key``): two requests with equal keys compile one plan and
    share a warm backend selection on whichever worker owns the key.
    """
    core = check_core_dims(request.core, request.input_shape())
    return (request.input_shape(), core, request.input_dtype_name())


@dataclass
class RequestResult:
    """The serialized outcome of one served request."""

    id: str
    ok: bool
    source: str = ""
    error: str | None = None
    error_kind: str | None = None
    seconds: float = 0.0
    wall_seconds: float = 0.0
    worker: int = -1
    affinity_hit: bool = False
    storage: str = ""
    backend: str = ""
    from_cache: bool = False
    saved: str | None = None
    #: the full in-process TuckerResult (never serialized over the wire)
    value: Any = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        """The ndjson response payload (JSON-safe fields only)."""
        return {
            "id": self.id,
            "ok": self.ok,
            "source": self.source,
            "error": self.error,
            "error_kind": self.error_kind,
            "seconds": self.seconds,
            "wall_seconds": self.wall_seconds,
            "worker": self.worker,
            "affinity_hit": self.affinity_hit,
            "storage": self.storage,
            "backend": self.backend,
            "from_cache": self.from_cache,
            "saved": self.saved,
        }


class Ticket:
    """A submitted request's future: wait, poll, or cancel.

    States move one way: queued -> running -> done, or queued ->
    cancelled. :meth:`cancel` only succeeds while still queued — an
    executing decomposition is never interrupted mid-kernel.
    """

    def __init__(self, request: ServeRequest, worker: int, affinity_hit: bool):
        self.request = request
        self.worker = worker
        self.affinity_hit = affinity_hit
        self.submitted_at = time.monotonic()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._state = "queued"
        self._result: RequestResult | None = None

    @property
    def state(self) -> str:
        return self._state

    def deadline_remaining(self) -> float | None:
        """Seconds left before the deadline; ``None`` when unbounded."""
        if self.request.deadline is None:
            return None
        return self.request.deadline - (time.monotonic() - self.submitted_at)

    def cancel(self) -> bool:
        """Cancel if still queued; returns whether it took effect.

        A successful cancel publishes the ``ok=False`` result itself —
        waiters unblock immediately; the owning worker later skips the
        dead ticket when it surfaces from the inbox.
        """
        with self._lock:
            if self._state != "queued":
                return False
            self._state = "cancelled"
            self._result = RequestResult(
                id=self.request.id,
                ok=False,
                source=self.request.source(),
                error="cancelled while queued",
                error_kind="RequestCancelled",
                worker=self.worker,
                affinity_hit=self.affinity_hit,
                wall_seconds=time.monotonic() - self.submitted_at,
            )
        self._done.set()
        return True

    def _start(self) -> bool:
        """Worker claims the ticket; ``False`` when already cancelled."""
        with self._lock:
            if self._state != "queued":
                return False
            self._state = "running"
            return True

    def _finish(self, result: RequestResult) -> None:
        result.wall_seconds = time.monotonic() - self.submitted_at
        with self._lock:
            self._result = result
            self._state = "done"
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> RequestResult:
        """Block for the outcome (cancellation counts as an outcome)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.id!r} not done after {timeout}s"
            )
        return self._result


def parse_request(payload: dict, *, index: int = 0) -> ServeRequest:
    """Build a :class:`ServeRequest` from one ndjson payload dict.

    The wire shape (all fields but ``core`` + one input source are
    optional)::

        {"id": "r1", "path": "x.npy", "core": [4, 4, 4],
         "method": "run", "dtype": "float64", "deadline": 5.0,
         "max_iters": 10, "tol": 1e-8, "save": "out/r1.npz",
         "random": {"dims": [32, 32, 32], "seed": 7}}
    """
    if not isinstance(payload, dict):
        raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - {
        "op", "id", "path", "data", "random", "core", "method", "dtype",
        "deadline", "max_iters", "tol", "save", "seed",
    }
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    if "core" not in payload:
        raise ValueError("request needs a core= shape")
    random_spec = payload.get("random")
    dims = None
    seed = int(payload.get("seed", 0))
    if random_spec is not None:
        if not isinstance(random_spec, dict) or "dims" not in random_spec:
            raise ValueError('random= must be {"dims": [...], "seed": n}')
        dims = tuple(int(d) for d in random_spec["dims"])
        if "seed" in random_spec:
            inner = int(random_spec["seed"])
            if "seed" in payload and inner != seed:
                # The inner seed used to silently win; with the seed now
                # also steering randomized decomposition, a conflicting
                # pair is ambiguous and must be rejected, not resolved.
                raise ValueError(
                    f"conflicting seeds: seed={seed} vs "
                    f"random.seed={inner}; give one (or the same value)"
                )
            seed = inner
    array = None
    if payload.get("data") is not None:
        array = np.asarray(payload["data"], dtype=np.float64)
    return ServeRequest(
        id=str(payload.get("id", f"req{index}")),
        core=tuple(int(k) for k in payload["core"]),
        array=array,
        path=payload.get("path"),
        dims=dims,
        seed=seed,
        method=payload.get("method", "run"),
        dtype=payload.get("dtype"),
        max_iters=int(payload.get("max_iters", 10)),
        tol=float(payload.get("tol", 1e-8)),
        deadline=(
            float(payload["deadline"])
            if payload.get("deadline") is not None
            else None
        ),
        save=payload.get("save"),
    )
