"""Plan-key affinity routing.

A worker that has already served a ``(dims, core, dtype)`` key holds its
compiled plan in the session LRU and — decisive for the shared-memory
backends — a warm worker pool sized by that key's auto-selection.
Routing an equal-keyed request anywhere else repays both startup costs,
so the router keeps keys sticky, spilling to the least-loaded worker
only when the sticky owner's backlog outruns the cheapest queue by more
than ``spill_threshold`` items (affinity should pipeline, not starve).
"""

from __future__ import annotations

import threading

__all__ = ["AffinityRouter"]


class AffinityRouter:
    """Sticky ``plan_key -> worker`` assignment with backlog spillover."""

    def __init__(self, n_workers: int, *, spill_threshold: int = 4) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if spill_threshold < 0:
            raise ValueError("spill_threshold must be >= 0")
        self.n_workers = n_workers
        self.spill_threshold = spill_threshold
        self._owner: dict[tuple, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def route(self, key: tuple, loads: list[int]) -> tuple[int, bool]:
        """Pick a worker for ``key`` given per-worker backlogs.

        Returns ``(worker_index, affinity_hit)``. A hit re-uses the
        sticky owner; a miss assigns (or re-assigns, after spillover)
        the least-loaded worker and records the new ownership.
        """
        if len(loads) != self.n_workers:
            raise ValueError(
                f"expected {self.n_workers} loads, got {len(loads)}"
            )
        with self._lock:
            coldest = min(range(self.n_workers), key=lambda i: loads[i])
            owner = self._owner.get(key)
            if (
                owner is not None
                and loads[owner] - loads[coldest] <= self.spill_threshold
            ):
                self.hits += 1
                return owner, True
            # First sighting, or the owner is too far behind: move the
            # key to the coldest queue and make that the new home.
            self._owner[key] = coldest
            self.misses += 1
            return coldest, False

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "keys": len(self._owner),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate(),
            }
