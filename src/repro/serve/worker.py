"""One serving worker: a private session, an inbox, a prefetch loader.

Workers own their :class:`~repro.session.TuckerSession` outright — the
session's ledger scoping and tracer marks are positional, so overlap
across requests comes from *worker parallelism*, never from sharing one
session between threads. The inbox is the affinity target: the router
sends every request with a given plan key here, so this session's LRU
plan cache and warm backend pools hit run after run.

The pipelined half: before executing a request, the worker hands the
*next* queued request's file mapping to its
:class:`~repro.session.Prefetcher`, which faults the pages in from disk
while the current decomposition computes.
"""

from __future__ import annotations

import logging
import queue as queue_mod
import threading
import time

import numpy as np

from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.request import RequestResult, ServeRequest, Ticket
from repro.serve.stats import ServerStats
from repro.session import Prefetcher, TuckerSession

__all__ = ["ServeWorker"]

logger = logging.getLogger(__name__)


def _failure(
    req: ServeRequest, worker: int, ticket: Ticket, error: str, kind: str
) -> RequestResult:
    return RequestResult(
        id=req.id,
        ok=False,
        source=req.source(),
        error=error,
        error_kind=kind,
        worker=worker,
        affinity_hit=ticket.affinity_hit,
    )


class ServeWorker:
    """A daemon thread draining one inbox through one private session."""

    def __init__(
        self,
        index: int,
        *,
        session: TuckerSession,
        admission: AdmissionController,
        stats: ServerStats,
        on_finished,
        prefetch: bool = True,
    ) -> None:
        self.index = index
        self.session = session
        self.admission = admission
        self.stats = stats
        self._on_finished = on_finished
        self.inbox: queue_mod.Queue = queue_mod.Queue()
        self.inflight = 0
        #: per-run traces, collected when the session traces (CLI --trace)
        self.traces: list = []
        # Warm chunks match the session's budget-bounded store geometry,
        # so prefetch never leases a larger chunk than a spill would.
        self.prefetcher = (
            Prefetcher(
                chunk_bytes=session.prefetch_chunk_bytes(),
                max_bytes=admission.budget,
            )
            if prefetch
            else None
        )
        self.thread = threading.Thread(
            target=self._loop, name=f"repro-serve-w{index}", daemon=True
        )
        self.thread.start()

    def load(self) -> int:
        """Backlog the router balances on: queued plus executing."""
        return self.inbox.qsize() + self.inflight

    def submit(self, ticket: Ticket) -> None:
        self.inbox.put(ticket)

    # -- execution --------------------------------------------------------- #

    def _loop(self) -> None:
        while True:
            ticket = self.inbox.get()
            if ticket is None:
                return
            self.inflight = 1
            try:
                self._execute(ticket)
            finally:
                self.inflight = 0
                self._on_finished(ticket)

    def _execute(self, ticket: Ticket) -> None:
        req = ticket.request
        if not ticket._start():
            # Cancelled while queued; cancel() already published the
            # result — only the accounting is left to do.
            self.stats.cancelled()
            return
        remaining = ticket.deadline_remaining()
        if remaining is not None and remaining <= 0:
            self.stats.deadline_missed()
            self.stats.failed("DeadlineExceeded")
            ticket._finish(_failure(
                req, self.index, ticket,
                f"deadline ({req.deadline}s) elapsed while queued",
                "DeadlineExceeded",
            ))
            return
        charge = None
        try:
            arr = req.materialize()
            charge = self.admission.acquire(req.nbytes(), timeout=remaining)
            self._prefetch_next()
            if req.method == "sthosvd":
                result = self.session.sthosvd(
                    arr, req.core, dtype=req.dtype
                )
            elif req.method in ("rsthosvd", "sp-rsthosvd"):
                # Init-only, like "sthosvd" — these exist for raw speed.
                # The request seed doubles as the sketch seed, so a
                # replayed request reproduces its decomposition bit for
                # bit — not just its input.
                result = self.session.run(
                    arr,
                    req.core,
                    dtype=req.dtype,
                    skip_hooi=True,
                    method=req.method,
                    seed=req.seed,
                )
            else:
                result = self.session.run(
                    arr,
                    req.core,
                    dtype=req.dtype,
                    max_iters=req.max_iters,
                    tol=req.tol,
                )
        except AdmissionError as exc:
            if exc.reason == "budget_timeout" and remaining is not None:
                self.stats.deadline_missed()
                self.stats.failed("DeadlineExceeded")
                ticket._finish(_failure(
                    req, self.index, ticket,
                    f"deadline ({req.deadline}s) elapsed waiting for "
                    f"memory budget: {exc}",
                    "DeadlineExceeded",
                ))
            else:
                self.stats.failed(type(exc).__name__)
                ticket._finish(_failure(
                    req, self.index, ticket, str(exc), type(exc).__name__
                ))
            return
        except Exception as exc:
            # deliberately broad: this is the worker thread's fault
            # barrier — any decomposition failure becomes a failed
            # response instead of a dead worker (and it is logged).
            logger.warning("request %r failed: %s", req.id, exc)
            self.stats.failed(type(exc).__name__)
            ticket._finish(_failure(
                req, self.index, ticket, str(exc), type(exc).__name__
            ))
            return
        finally:
            if charge is not None:
                self.admission.release(charge)
        if result.trace is not None:
            self.traces.append(result.trace)
        saved = None
        if req.save:
            dec = result.decomposition
            np.savez(
                req.save,
                core=dec.core,
                **{f"factor{m}": f for m, f in enumerate(dec.factors)},
            )
            saved = req.save
        wall = time.monotonic() - ticket.submitted_at
        ticket._finish(RequestResult(
            id=req.id,
            ok=True,
            source=req.source(),
            seconds=result.seconds,
            worker=self.index,
            affinity_hit=ticket.affinity_hit,
            storage=result.storage,
            backend=result.backend,
            from_cache=result.from_cache,
            saved=saved,
            value=result,
        ))
        self.stats.completed(seconds=result.seconds, wall_seconds=wall)

    def _prefetch_next(self) -> None:
        """Warm the next queued file-backed input while this one runs."""
        if self.prefetcher is None:
            return
        with self.inbox.mutex:
            nxt = self.inbox.queue[0] if self.inbox.queue else None
        if not isinstance(nxt, Ticket) or nxt.request.path is None:
            return
        try:
            arr = np.load(nxt.request.path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            # advisory: the real load will surface the error to the client
            logger.debug("prefetch of %r skipped: %s", nxt.request.path, exc)
            return
        if isinstance(arr, np.ndarray):
            self.prefetcher.schedule(arr)

    # -- shutdown ---------------------------------------------------------- #

    def stop(self, *, timeout: float | None = None) -> None:
        """Finish everything queued, then stop the thread and session."""
        self.inbox.put(None)
        self.thread.join(timeout)
        if self.prefetcher is not None:
            self.prefetcher.close()
            self.stats.prefetched(self.prefetcher.bytes_warmed)
        self.session.close()
