"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index). The expensive part — planning all five algorithm
configurations over the section-6.1 tensor suite — is done once per session
and shared. Environment knobs:

* ``REPRO_BENCH_FULL=1``  — sweep the full canonical enumeration
  (10312 + 7710 tensors) instead of the paper-sized deterministic subsample
  (1134 + 642).
* ``REPRO_BENCH_COUNT=N`` — cap the per-dimension suite at N tensors (quick
  smoke runs).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.algorithms import ALGORITHMS
from repro.bench.runner import sweep
from repro.bench.suite import benchmark_metas, paper_subsample
from repro.mpi.machine import MachineModel

N_PROCS = 32  # the paper's platform: 32 BG/Q nodes, one rank per node


def _suite(ndim: int):
    if os.environ.get("REPRO_BENCH_FULL"):
        metas = benchmark_metas(ndim)
    else:
        metas = paper_subsample(ndim)
    cap = os.environ.get("REPRO_BENCH_COUNT")
    if cap and int(cap) < len(metas):
        # evenly spaced, not a prefix: the suite is sorted by shape, so a
        # prefix would be all-smallest tensors and bias every distribution
        n = int(cap)
        step = (len(metas) - 1) / (n - 1) if n > 1 else 0.0
        metas = [metas[round(i * step)] for i in range(n)]
    return metas


@pytest.fixture(scope="session")
def machine() -> MachineModel:
    return MachineModel.bgq_like()


@pytest.fixture(scope="session")
def records5(machine):
    """All five algorithm configs planned+modeled over the 5-D suite."""
    return sweep(_suite(5), list(ALGORITHMS), n_procs=N_PROCS, machine=machine)


@pytest.fixture(scope="session")
def records6(machine):
    """All five algorithm configs planned+modeled over the 6-D suite."""
    return sweep(_suite(6), list(ALGORITHMS), n_procs=N_PROCS, machine=machine)
