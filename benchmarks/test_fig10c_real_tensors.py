"""Figure 10c — stacked time bars on the real tensors (HCCI, TJLR, SP).

For each tensor and each of CK / CH / B / OPT, one HOOI invocation's modeled
time is decomposed into SVD, TTM computation and TTM communication — the
paper's bar segments. Claimed shapes checked:

* the balanced tree outperforms both chain heuristics on every real tensor;
* OPT (opt-tree + dynamic gridding) is fastest on every real tensor, with
  gains in the multi-x range (paper: up to 4.6x/5.8x/4.1x over CH/CK/B);
* OPT's *tree* TTM communication is (near) zero — "remarkably, the opt-tree
  algorithm becomes near communication-free under all the three tensors".
"""

from repro.bench.algorithms import make_planner, paper_label
from repro.bench.report import ascii_table
from repro.bench.suite import REAL_TENSORS
from repro.hooi.model import predict

ALGS = ("chain-k", "chain-h", "balanced", "opt-dynamic")


def _run(machine):
    results = {}
    for tensor_name, meta in REAL_TENSORS.items():
        per_alg = {}
        for alg in ALGS:
            plan = make_planner(alg, 32).plan(meta)
            rep = predict(plan, machine)
            per_alg[alg] = {
                "svd": rep.svd_seconds,
                "ttm_compute": rep.ttm_compute_seconds,
                "ttm_comm": rep.ttm_comm_seconds,
                "total": rep.total_seconds,
                "tree_comm_volume": plan.total_volume,
                "tree_ttm_volume": plan.ttm_volume,
            }
        results[tensor_name] = per_alg
    return results


def test_fig10c_real_tensor_bars(benchmark, machine):
    results = benchmark.pedantic(_run, args=(machine,), rounds=1, iterations=1)

    rows = []
    for tensor_name, per_alg in results.items():
        for alg in ALGS:
            d = per_alg[alg]
            rows.append(
                [
                    tensor_name,
                    paper_label(alg),
                    f"{d['svd']:.2f}",
                    f"{d['ttm_compute']:.2f}",
                    f"{d['ttm_comm']:.2f}",
                    f"{d['total']:.2f}",
                ]
            )
    print()
    print(
        ascii_table(
            ["Tensor", "Alg", "SVD s", "TTM comp s", "TTM comm s", "total s"],
            rows,
            title="Fig 10c: modeled per-invocation time decomposition "
            "(32 ranks, BG/Q-like model)",
        )
    )

    for tensor_name, per_alg in results.items():
        ck, ch, b, opt = (
            per_alg["chain-k"]["total"],
            per_alg["chain-h"]["total"],
            per_alg["balanced"]["total"],
            per_alg["opt-dynamic"]["total"],
        )
        # balanced beats the chains (paper: "balanced tree outperforms the
        # chain algorithms, because it reuses TTM operations")
        assert b <= min(ck, ch) * 1.05, tensor_name
        # OPT is fastest, by a real margin
        assert opt < b and opt < ck and opt < ch, tensor_name
        assert min(ck, ch, b) / opt > 1.5, tensor_name
        # OPT's tree TTM reduce-scatter volume is exactly zero on all three
        # real tensors (the dynamic DP finds communication-free gridding)
        assert per_alg["opt-dynamic"]["tree_ttm_volume"] == 0, tensor_name
        print(
            f"{tensor_name}: OPT gain over CK {ck / opt:.2f}x, "
            f"CH {ch / opt:.2f}x, B {b / opt:.2f}x; "
            f"OPT tree TTM volume = {per_alg['opt-dynamic']['tree_ttm_volume']}"
        )
