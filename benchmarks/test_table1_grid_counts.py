"""Table 1 — number of grids psi(P, N) for P in {2^5, 2^10, 2^20}, N = 5..10.

Regenerates the paper's Table 1 from the closed form and cross-checks the
small rows by explicit enumeration. Note the paper's printed value "562" for
(P=2^5, N=7) is a typo for 462 = C(11, 6); every other entry matches.
"""

from repro.bench.report import ascii_table
from repro.core.grids import enumerate_grids, psi

PAPER_TABLE1 = {
    32: {5: 126, 6: 252, 7: 462, 8: 792, 9: 1287, 10: 2002},
    1024: {5: 1001, 6: 3003, 7: 8008, 8: 19448, 9: 43758, 10: 92378},
    2**20: {
        5: 10626,
        6: 53130,
        7: 230230,
        8: 888030,
        9: 3108105,
        10: 10015005,
    },
}


def test_table1_grid_counts(benchmark):
    rows = []
    for p, row in PAPER_TABLE1.items():
        values = [psi(p, n) for n in range(5, 11)]
        assert values == [row[n] for n in range(5, 11)]
        rows.append([f"P = 2^{p.bit_length() - 1}"] + values)

    # enumeration cross-check for the rows that are cheap to enumerate
    for p in (32, 1024):
        for n in (5, 6, 7):
            assert sum(1 for _ in enumerate_grids(p, n)) == PAPER_TABLE1[p][n]

    # the benchmarked quantity: closed-form psi evaluation across the table
    def compute_table():
        return [psi(p, n) for p in PAPER_TABLE1 for n in range(5, 11)]

    benchmark(compute_table)

    print()
    print(
        ascii_table(
            ["P \\ N"] + [str(n) for n in range(5, 11)],
            rows,
            title="Table 1: number of grids psi(P, N) "
            "(paper's 562 at (2^5, 7) is a typo for 462)",
        )
    )
