"""Figures 10a / 10b — percentile plots of normalized overall HOOI time.

For every suite tensor, one HOOI invocation is modeled for the three prior
heuristics and (opt-tree, dynamic grid); times are normalized to the latter
(which becomes 1). The paper reports: opt wins on every tensor, gains
1.5x-7x, median 3.4x (5D) and 4.0x (6D).

Our measured shape (EXPERIMENTS.md records the exact numbers): opt-dynamic
wins on the overwhelming majority (>= 90%) of tensors — a handful of small,
tiny-core tensors where the flop-optimal tree is communication-hostile slip
under 1 — and the median gain lands in the paper's band.
"""

import numpy as np

from repro.bench.algorithms import PAPER_HEURISTICS
from repro.bench.percentiles import curve_summary, percentile_curve
from repro.bench.report import format_curve
from repro.bench.runner import normalize_against

BASELINE = "opt-dynamic"


def _check_and_print(records, title):
    norm = normalize_against(records, "total_s", BASELINE)
    curves = {}
    for name in PAPER_HEURISTICS + (BASELINE,):
        curves[name] = percentile_curve(norm[name])
    print()
    print(format_curve(curves, title=title))

    best_prior = [
        min(norm[a][i] for a in PAPER_HEURISTICS) for i in range(len(records))
    ]
    wins = sum(1 for v in best_prior if v >= 1.0)
    med = float(np.median(best_prior))
    mx = float(np.max(best_prior))
    print(
        f"opt-dynamic wins on {wins}/{len(records)} tensors "
        f"({100 * wins / len(records):.1f}%); median gain over best prior "
        f"{med:.2f}x, max {mx:.2f}x"
    )
    # paper shape: dominance on (essentially) all tensors, median gain in a
    # broad band around the reported 3.4x/4.0x, max gain in the several-x
    # range.
    assert wins / len(records) >= 0.90
    assert 1.5 <= med <= 8.0
    assert mx >= 4.0
    return med


def test_fig10a_overall_time_5d(benchmark, records5):
    med = benchmark.pedantic(
        _check_and_print,
        args=(records5, "Fig 10a: normalized overall time percentiles (5D)"),
        rounds=1,
        iterations=1,
    )
    assert med > 1.0


def test_fig10b_overall_time_6d(benchmark, records6):
    med = benchmark.pedantic(
        _check_and_print,
        args=(records6, "Fig 10b: normalized overall time percentiles (6D)"),
        rounds=1,
        iterations=1,
    )
    assert med > 1.0
