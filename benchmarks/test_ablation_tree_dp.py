"""Ablation A — what the tree DP's two moves are each worth.

The optimal-tree recurrence chooses between *reuse* (share one TTM across
all factors below) and *split* (solve factor subsets independently).
Handicapped policies isolate each move:

* ``no_reuse``    — splits only (the best forest of independent chains,
  i.e. chain trees with per-chain optimal orderings);
* ``eager_reuse`` — must reuse whenever possible (the strategy the paper's
  section 3.3 remark proves non-optimal).

Measured: load ratios vs the full DP over the benchmark subsample.
"""

import numpy as np

from repro.bench.report import ascii_table
from repro.bench.suite import paper_subsample
from repro.core.opt_tree import optimal_tree_cost


def _analyze(metas):
    rows = []
    ratios = {"no_reuse": [], "eager_reuse": []}
    for m in metas:
        opt = optimal_tree_cost(m)
        for policy in ratios:
            ratios[policy].append(optimal_tree_cost(m, policy=policy) / opt)
    for policy, vals in ratios.items():
        arr = np.asarray(vals)
        rows.append(
            [
                policy,
                f"{arr.min():.3f}",
                f"{np.median(arr):.3f}",
                f"{arr.max():.3f}",
                f"{(arr > 1.0 + 1e-12).mean() * 100:.1f}%",
            ]
        )
    print()
    print(
        ascii_table(
            ["policy", "min", "median", "max", "% strictly worse"],
            rows,
            title="Ablation A: handicapped tree-DP policies "
            "(load ratio vs optimal tree)",
        )
    )
    return ratios


def test_ablation_reuse_vs_split(benchmark):
    metas = paper_subsample(5, count=200) + paper_subsample(6, count=100)
    ratios = benchmark.pedantic(_analyze, args=(metas,), rounds=1, iterations=1)
    # both moves matter: each handicapped policy is dominated and strictly
    # worse somewhere
    for policy, vals in ratios.items():
        assert min(vals) >= 1.0 - 1e-12, policy
        assert max(vals) > 1.0 + 1e-9, policy
    # reuse is the bigger lever on this suite: forbidding it hurts more
    assert np.median(ratios["no_reuse"]) >= np.median(ratios["eager_reuse"])
