"""Table 2 — the real combustion tensors (HCCI, TJLR, SP).

Prints the metadata exactly as the paper tabulates it and benchmarks
planning (optimal tree + dynamic grids) on the real metadata — the paper's
claim that the planner runs in "negligible time" is checked by the
pytest-benchmark timing of this very call.
"""

from repro.bench.report import ascii_table
from repro.bench.suite import REAL_TENSORS
from repro.core.planner import Planner


def test_table2_real_tensor_metadata(benchmark):
    rows = []
    for name, meta in REAL_TENSORS.items():
        rows.append(
            [
                name,
                "(" + ", ".join(map(str, meta.dims)) + ")",
                "(" + ", ".join(map(str, meta.core)) + ")",
                f"{meta.cardinality:,}",
                f"{meta.compression_ratio:.1f}x",
            ]
        )

    # pinned to the paper's Table 2
    assert REAL_TENSORS["HCCI"].dims == (672, 672, 627, 16)
    assert REAL_TENSORS["TJLR"].core == (306, 232, 239, 16, 4)
    assert REAL_TENSORS["SP"].dims == (500, 500, 500, 11, 10)

    planner = Planner(32, tree="optimal", grid="dynamic")

    def plan_all():
        return [planner.plan(meta) for meta in REAL_TENSORS.values()]

    plans = benchmark(plan_all)
    for plan in plans:
        assert plan.flops > 0

    print()
    print(
        ascii_table(
            ["Tensor", "Dimensions", "Core Dimensions", "|T|", "compression"],
            rows,
            title="Table 2: real tensors used in the study",
        )
    )
