"""Ablation C — the paper's "negligible planning time" claims.

Section 3.3: the optimal-tree DP runs in O(4^N); section 4.4: the dynamic
gridding DP costs O(|H| psi(P, N)) lookups. Both are claimed negligible in
practice (N <= 10). This bench times them as N and P grow.
"""

import time

from repro.bench.report import ascii_table
from repro.core.dynamic_grid import optimal_dynamic_scheme
from repro.core.meta import TensorMeta
from repro.core.opt_tree import optimal_tree
from repro.core.planner import Planner


def _meta(n: int) -> TensorMeta:
    dims = tuple([20, 50, 100, 400, 50, 20, 100, 50, 20, 50][:n])
    core = tuple(max(2, d // 5) for d in dims)
    return TensorMeta(dims=dims, core=core)


def test_opt_tree_dp_scaling(benchmark):
    rows = []
    for n in range(4, 11):
        meta = _meta(n)
        t0 = time.perf_counter()
        tree = optimal_tree(meta)
        dt = time.perf_counter() - t0
        rows.append([n, tree.n_ttm_ops, f"{dt * 1e3:.1f} ms"])
        assert dt < 30.0, f"tree DP no longer negligible at N={n}"
    print()
    print(
        ascii_table(
            ["N", "TTMs in opt tree", "DP time"],
            rows,
            title="Ablation C1: optimal-tree DP wall-clock vs N (O(4^N))",
        )
    )
    benchmark(optimal_tree, _meta(7))


def test_dynamic_grid_dp_scaling(benchmark):
    rows = []
    meta = _meta(6)
    tree = optimal_tree(meta)
    for p in (8, 32, 128, 1024):
        t0 = time.perf_counter()
        scheme = optimal_dynamic_scheme(tree, meta, p)
        dt = time.perf_counter() - t0
        rows.append([p, len(scheme.assignment), f"{dt * 1e3:.1f} ms"])
        assert dt < 60.0
    print()
    print(
        ascii_table(
            ["P", "nodes gridded", "DP time"],
            rows,
            title="Ablation C2: dynamic-gridding DP wall-clock vs P "
            "(O(|H| psi(P, N)))",
        )
    )
    benchmark(optimal_dynamic_scheme, tree, meta, 32)


def test_full_planner_negligible_vs_invocation(benchmark, machine):
    # planning must be negligible compared to one modeled HOOI invocation
    from repro.hooi.model import predict

    meta = _meta(6)
    t0 = time.perf_counter()
    plan = Planner(32, tree="optimal", grid="dynamic").plan(meta)
    planning = time.perf_counter() - t0
    invocation = predict(plan, machine).total_seconds
    print(
        f"\nplanning {planning * 1e3:.1f} ms vs one modeled invocation "
        f"{invocation:.2f} s ({invocation / max(planning, 1e-9):.0f}x)"
    )
    assert planning < invocation, (
        "planner must be cheaper than a single HOOI invocation"
    )
    benchmark(Planner(32, tree="optimal", grid="dynamic").plan, meta)
