"""Figures 11c / 11d — normalized computational *load* (FLOP) percentiles.

The machine-independent metric: TTM-component multiply-adds per algorithm
normalized to the optimal tree. The paper reports reductions up to 2.8x (5D)
and 3.6x (6D) over the best prior heuristic, with 6D gains exceeding 5D
("opt-tree has more opportunities for careful placement and reuse").
"""

import numpy as np

from repro.bench.algorithms import PAPER_HEURISTICS
from repro.bench.percentiles import percentile_curve
from repro.bench.report import format_curve
from repro.bench.runner import normalize_against

BASELINE = "opt-static"  # load depends only on the tree


def _analyze(records, title):
    norm = normalize_against(records, "flops", BASELINE)
    curves = {
        name: percentile_curve(norm[name])
        for name in PAPER_HEURISTICS + (BASELINE,)
    }
    print()
    print(format_curve(curves, title=title))
    best_prior = [
        min(norm[a][i] for a in PAPER_HEURISTICS) for i in range(len(records))
    ]
    med = float(np.median(best_prior))
    mx = float(np.max(best_prior))
    print(f"gain over best prior heuristic: median {med:.2f}x, max {mx:.2f}x")
    # optimality: the DP can never lose on load (exact guarantee)
    for name in PAPER_HEURISTICS:
        assert min(norm[name]) >= 1.0 - 1e-12
    assert mx >= 1.8  # paper: up to 2.8x/3.6x; demand a substantial max gain
    return med


def test_fig11c_comp_load_5d(benchmark, records5):
    med5 = benchmark.pedantic(
        _analyze,
        args=(records5, "Fig 11c: normalized computational load (5D)"),
        rounds=1,
        iterations=1,
    )
    assert med5 >= 1.0


def test_fig11d_comp_load_6d(benchmark, records6, records5):
    med6 = benchmark.pedantic(
        _analyze,
        args=(records6, "Fig 11d: normalized computational load (6D)"),
        rounds=1,
        iterations=1,
    )
    # paper: improvements are higher for 6D than 5D
    norm5 = normalize_against(records5, "flops", BASELINE)
    best5 = [
        min(norm5[a][i] for a in PAPER_HEURISTICS)
        for i in range(len(records5))
    ]
    assert med6 >= float(np.median(best5)) * 0.95
