"""Figures 11a / 11b — normalized TTM computation *time* percentiles.

Comparison of the prior heuristics against (opt-tree, static grid) on the
TTM component's compute time; the paper reports 1.5-1.7x (5D) and 1.4-2.0x
(6D) median improvements, with maxima 2.8x / 3.7x.
"""

import numpy as np

from repro.bench.algorithms import PAPER_HEURISTICS
from repro.bench.percentiles import percentile_curve
from repro.bench.report import format_curve
from repro.bench.runner import normalize_against

BASELINE = "opt-static"


def _check_and_print(records, title):
    norm = normalize_against(records, "tree_compute_s", BASELINE)
    curves = {
        name: percentile_curve(norm[name])
        for name in PAPER_HEURISTICS + (BASELINE,)
    }
    print()
    print(format_curve(curves, title=title))
    medians = {
        name: float(np.median(norm[name])) for name in PAPER_HEURISTICS
    }
    best_prior = [
        min(norm[a][i] for a in PAPER_HEURISTICS) for i in range(len(records))
    ]
    print(
        "medians vs opt-static:",
        {k: round(v, 2) for k, v in medians.items()},
        f"max gain over best prior {max(best_prior):.2f}x",
    )
    # compute time is proportional to load here; opt never loses (DP bound)
    for name in PAPER_HEURISTICS:
        assert min(norm[name]) >= 1.0 - 1e-12
        assert 1.0 <= medians[name] <= 6.0
    assert max(best_prior) >= 1.5
    return medians


def test_fig11a_comp_time_5d(benchmark, records5):
    benchmark.pedantic(
        _check_and_print,
        args=(records5, "Fig 11a: normalized TTM computation time (5D)"),
        rounds=1,
        iterations=1,
    )


def test_fig11b_comp_time_6d(benchmark, records6):
    benchmark.pedantic(
        _check_and_print,
        args=(records6, "Fig 11b: normalized TTM computation time (6D)"),
        rounds=1,
        iterations=1,
    )
