"""Ablation E — the time-aware portfolio planner.

Fig 10's deviation analysis found a small tail of tensors where a prior
heuristic beats (opt-tree, dynamic). The portfolio planner prices every
configuration with the model executor and keeps the fastest, restoring
uniform dominance by construction. This bench quantifies: how often the
portfolio deviates from opt-dynamic, and how much it recovers on the tail.
"""

import numpy as np

from repro.bench.report import ascii_table
from repro.bench.suite import paper_subsample
from repro.hooi.model import predict
from repro.hooi.portfolio import select_plan
from repro.bench.algorithms import make_planner


def _analyze(metas, machine):
    deviations = 0
    recovery = []
    configs = {}
    for m in metas:
        choice = select_plan(m, 32, machine)
        opt_seconds = choice.scores[("optimal", "dynamic")]
        configs[choice.config] = configs.get(choice.config, 0) + 1
        if choice.config != ("optimal", "dynamic"):
            deviations += 1
            recovery.append(opt_seconds / choice.modeled_seconds)
        # dominance by construction
        assert choice.modeled_seconds <= opt_seconds + 1e-15
    return deviations, recovery, configs


def test_ablation_portfolio(benchmark, machine):
    metas = paper_subsample(5, count=250)
    deviations, recovery, configs = benchmark.pedantic(
        _analyze, args=(metas, machine), rounds=1, iterations=1
    )
    rows = [
        [f"{t}/{g}", n, f"{100 * n / len(metas):.1f}%"]
        for (t, g), n in sorted(configs.items(), key=lambda kv: -kv[1])
    ]
    print()
    print(
        ascii_table(
            ["winning config", "tensors", "share"],
            rows,
            title="Ablation E: portfolio planner — which configuration wins",
        )
    )
    if recovery:
        print(
            f"portfolio deviates from opt-dynamic on {deviations}/{len(metas)} "
            f"tensors; recovery on those: median "
            f"{float(np.median(recovery)):.2f}x, max {max(recovery):.2f}x"
        )
    # opt-dynamic should remain the workhorse...
    assert configs.get(("optimal", "dynamic"), 0) / len(metas) >= 0.5
    # ...but the portfolio must exploit the tail at least occasionally
    assert deviations >= 1
    # and every deviation is a strict improvement
    assert all(r >= 1.0 for r in recovery)

    # verify dominance against each individually-planned paper config on a
    # small spot-check subset
    for m in metas[::50]:
        choice = select_plan(m, 32, machine)
        for alg in ("chain-k", "chain-h", "balanced", "opt-dynamic"):
            plan = make_planner(alg, 32).plan(m)
            assert (
                choice.modeled_seconds
                <= predict(plan, machine).total_seconds + 1e-12
            )
