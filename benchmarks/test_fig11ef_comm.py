"""Figures 11e / 11f — communication time and volume: static vs dynamic.

Both schemes run on the optimal tree; quantities are normalized to dynamic
gridding. Paper claims: dynamic wins on volume up to 6x with at least 3x on
90% of tensors (11f); communication *time* gains are larger still (median
9.4x, up to 17x) because the all-to-all regrid moves bytes faster than the
TTM reduce-scatter (11e).
"""

import numpy as np

from repro.bench.percentiles import percentile_curve
from repro.bench.report import format_curve
from repro.bench.runner import normalize_against

BASELINE = "opt-dynamic"
STATIC = "opt-static"


def _finite(values):
    return [v for v in values if np.isfinite(v)]


def _analyze(records5, records6):
    out = {}
    for metric, fig in (("comm_volume", "11f"), ("tree_comm_s", "11e")):
        curves = {}
        for label, records in (("5D", records5), ("6D", records6)):
            ratios = normalize_against(records, metric, BASELINE)[STATIC]
            curves[f"static/{label}"] = percentile_curve(ratios)
            finite = _finite(ratios)
            med = float(np.median(finite))
            mx = float(np.max(finite))
            p10 = float(np.percentile(finite, 10))
            out[(fig, label)] = {"median": med, "max": mx, "p10": p10}
            if metric == "comm_volume":
                # dynamic gridding subsumes static schemes: the volume-DP
                # guarantee is exact and pointwise
                assert min(ratios) >= 1.0 - 1e-12
            else:
                # modeled *time* can dip below 1 on tiny tensors where the
                # all-to-all alpha latency dominates (the volume-only DP is
                # latency-blind); the paper's own claim is distributional
                # ("outperforms on almost all tensors")
                below = sum(1 for v in ratios if v < 1.0 - 1e-12)
                assert below / len(ratios) <= 0.10
        title = (
            f"Fig {fig}: normalized communication "
            f"{'volume' if metric == 'comm_volume' else 'time'} "
            f"(static vs dynamic, opt tree)"
        )
        print()
        print(format_curve(curves, title=title))
    return out


def test_fig11ef_comm_static_vs_dynamic(benchmark, records5, records6):
    out = benchmark.pedantic(
        _analyze, args=(records5, records6), rounds=1, iterations=1
    )
    for (fig, label), s in out.items():
        print(
            f"Fig {fig} {label}: median {s['median']:.2f}x, "
            f"p10 {s['p10']:.2f}x, max {s['max']:.2f}x"
        )
    # volume: substantial gains with a multi-x median and >=2x for 90%
    for label in ("5D", "6D"):
        v = out[("11f", label)]
        assert v["median"] >= 3.0
        assert v["max"] >= 6.0
        assert v["p10"] >= 1.5
        # time gains exceed volume gains (all-to-all advantage)
        t = out[("11e", label)]
        assert t["median"] >= v["median"] * 0.9
        assert t["max"] >= v["max"]
