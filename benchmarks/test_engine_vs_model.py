"""Ablation D — executed engine volumes vs the closed-form model.

The whole substitution argument (DESIGN.md section 2) rests on the virtual
cluster reproducing the paper's machine-independent statistics. This bench
executes real HOOI invocations on the engine for a spread of problem shapes
and grids and compares recorded volumes against the model:

* TTM reduce-scatter:    engine == model, exactly;
* regridding:            engine <= model (model charges a full |In|);
* SVD (regrid+allreduce): engine <= model.
"""

import numpy as np

from repro.bench.report import ascii_table
from repro.core.meta import TensorMeta
from repro.core.planner import Planner
from repro.dist.dtensor import DistTensor
from repro.hooi.hooi import hooi_step_distributed
from repro.hooi.model import predict
from repro.hooi.sthosvd import sthosvd
from repro.mpi.comm import SimCluster
from repro.tensor.random import low_rank_tensor

CASES = [
    ((12, 10, 8, 6), (4, 3, 3, 2), 8, "dynamic"),
    ((12, 10, 8, 6), (4, 3, 3, 2), 8, "static"),
    ((16, 12, 9), (4, 6, 3), 4, "dynamic"),
    ((10, 10, 10, 5, 4), (5, 5, 5, 2, 2), 16, "dynamic"),
    ((20, 15, 6), (10, 5, 3), 8, "static"),
]


def _run_case(dims, core, n_procs, grid_kind):
    meta = TensorMeta(dims=dims, core=core)
    t = low_rank_tensor(dims, core, noise=0.2, seed=42)
    init = sthosvd(t, core)
    plan = Planner(n_procs, tree="optimal", grid=grid_kind).plan(meta)
    cluster = SimCluster(n_procs)
    dt = DistTensor.from_global(cluster, t, plan.initial_grid)
    hooi_step_distributed(dt, init.factors, plan, tag="h")
    rep = predict(plan)
    return {
        "engine_rs": cluster.stats.volume(op="reduce_scatter", tag_prefix="h:ttm"),
        "model_rs": rep.ttm.volume,
        "engine_rg": cluster.stats.volume(op="alltoallv", tag_prefix="h:regrid"),
        "model_rg": rep.regrid.volume,
        "engine_svd": cluster.stats.volume(tag_prefix="h:svd"),
        "model_svd": rep.svd.volume,
        "engine_core_rs": cluster.stats.volume(
            op="reduce_scatter", tag_prefix="h:core"
        ),
        "model_core_rs": plan.core_ttm_volume,
    }


def test_engine_matches_model(benchmark):
    def run_all():
        return [_run_case(*case) for case in CASES]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for case, r in zip(CASES, results):
        dims, core, p, kind = case
        rows.append(
            [
                "x".join(map(str, dims)),
                p,
                kind,
                f"{r['engine_rs']:.0f}/{r['model_rs']}",
                f"{r['engine_rg']:.0f}/{r['model_rg']}",
                f"{r['engine_svd']:.0f}/{r['model_svd']}",
            ]
        )
        assert r["engine_rs"] == r["model_rs"]
        assert r["engine_core_rs"] == r["model_core_rs"]
        assert r["engine_rg"] <= r["model_rg"]
        assert r["engine_svd"] <= r["model_svd"]
        if r["model_rg"] > 0:
            # regrids move a substantial share of the modeled bound
            assert r["engine_rg"] >= 0.25 * r["model_rg"]
    print()
    print(
        ascii_table(
            ["tensor", "P", "grids", "rs eng/model", "regrid eng/model", "svd eng/model"],
            rows,
            title="Ablation D: executed vs modeled communication volumes "
            "(elements)",
        )
    )
    assert np.all([r["engine_rs"] == r["model_rs"] for r in results])
