"""Ablation F — dynamic gridding recast for STHOSVD (paper section 1).

The paper remarks its ideas "can be recast and used for improving STHOSVD
as well". One STHOSVD pass is a single TTM chain, so the path-DP gridding
applies directly (with a free initial layout). This bench measures the
TTM-volume reduction of dynamic over the best static grid for the STHOSVD
chain across the benchmark subsample.
"""

import numpy as np

from repro.bench.report import ascii_table
from repro.bench.suite import paper_subsample
from repro.core.grids import valid_grids
from repro.hooi.sthosvd import sthosvd_grid_plan

N_PROCS = 32


def _best_static_chain_volume(meta, order):
    best = None
    for g in valid_grids(N_PROCS, meta):
        premult = 0
        vol = 0
        for mode in order:
            premult |= 1 << mode
            vol += (g[mode] - 1) * meta.card_after(premult)
        best = vol if best is None else min(best, vol)
    return best


def _analyze(metas):
    ratios = []
    free = 0
    for m in metas:
        order, _, ttm_vol, regrid_vol = sthosvd_grid_plan(
            m.dims, m.core, N_PROCS
        )
        dyn = ttm_vol + regrid_vol
        static = _best_static_chain_volume(m, order)
        if dyn == 0:
            free += 1
            ratios.append(float("inf") if static > 0 else 1.0)
        else:
            ratios.append(static / dyn)
        assert dyn <= static  # the DP subsumes static schemes
    return ratios, free


def test_ablation_sthosvd_dynamic_grids(benchmark):
    metas = paper_subsample(5, count=200)
    ratios, free = benchmark.pedantic(
        _analyze, args=(metas,), rounds=1, iterations=1
    )
    finite = [r for r in ratios if np.isfinite(r)]
    rows = [
        ["communication-free passes", f"{free}/{len(metas)}"],
        ["median static/dynamic (finite)", f"{float(np.median(finite)):.2f}x"],
        ["p90 static/dynamic (finite)", f"{float(np.percentile(finite, 90)):.2f}x"],
        ["max static/dynamic (finite)", f"{max(finite):.2f}x"],
    ]
    print()
    print(
        ascii_table(
            ["quantity", "value"],
            rows,
            title="Ablation F: dynamic gridding for the STHOSVD chain "
            "(volume, 32 ranks)",
        )
    )
    # the recast must help on a sizable share of the suite
    assert float(np.median(ratios)) >= 1.5 or free > len(metas) / 4
