"""Ablation B — sensitivity of dynamic gridding to the regrid price.

The dynamic-grid DP charges ``|In(u)|`` per regrid. Scaling that charge in
the DP's decisions (x0 = free regrids, x4 = regrids nearly banned) shows how
much of the win comes from *where* the DP regrids vs from regridding being
cheap, and that the scheme degrades gracefully to the optimal static grid as
the price grows.
"""

import numpy as np

from repro.bench.report import ascii_table
from repro.bench.suite import paper_subsample
from repro.core.dynamic_grid import optimal_dynamic_scheme
from repro.core.opt_tree import optimal_tree
from repro.core.static_grid import optimal_static_grid

SCALES = (0.0, 0.5, 1.0, 2.0, 4.0)
N_PROCS = 32


def _analyze(metas):
    per_scale = {s: [] for s in SCALES}
    static_ratio = []
    for m in metas:
        tree = optimal_tree(m)
        _, static_vol = optimal_static_grid(tree, m, N_PROCS)
        base = optimal_dynamic_scheme(tree, m, N_PROCS).total_volume
        if base == 0:
            continue
        static_ratio.append(static_vol / base)
        for s in SCALES:
            scheme = optimal_dynamic_scheme(
                tree, m, N_PROCS, regrid_cost_scale=s
            )
            # volumes reported under the *unscaled* paper model
            per_scale[s].append(scheme.total_volume / base)
    rows = [
        [
            f"x{s:g}",
            f"{np.median(per_scale[s]):.3f}",
            f"{np.max(per_scale[s]):.3f}",
        ]
        for s in SCALES
    ]
    rows.append(
        ["static", f"{np.median(static_ratio):.3f}", f"{np.max(static_ratio):.3f}"]
    )
    print()
    print(
        ascii_table(
            ["regrid price", "median vol ratio", "max vol ratio"],
            rows,
            title="Ablation B: dynamic gridding vs regrid price "
            "(volume normalized to the x1 scheme)",
        )
    )
    return per_scale, static_ratio


def test_ablation_regrid_cost(benchmark):
    metas = paper_subsample(5, count=150)
    per_scale, static_ratio = benchmark.pedantic(
        _analyze, args=(metas,), rounds=1, iterations=1
    )
    # the true price (x1) is optimal under the paper model by construction
    for s in SCALES:
        assert min(per_scale[s]) >= 1.0 - 1e-12
    # decisions under the correct price beat decisions under wrong prices
    assert np.median(per_scale[1.0]) == 1.0
    # overpricing regrids pushes the scheme toward (worse) static behaviour
    assert np.median(per_scale[4.0]) >= np.median(per_scale[1.0])
    # and the static grid itself is the worst of the family
    assert np.median(static_ratio) >= np.median(per_scale[4.0]) - 1e-9
