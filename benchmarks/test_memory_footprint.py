"""Memory-footprint bench — the paper's section-6.1 memory constraint.

The paper curtailed its real tensors "due to memory limitations" of the
32 x 16 GB BG/Q platform. The memory model prices a plan's per-rank peak
(resident DFS intermediates + TTM partial-product buffers + regrid
staging). This bench reports the footprint per algorithm on the real
tensors and checks two claims:

* section 3.1's depth bound on simultaneously live intermediates;
* all four algorithms fit the 16 GB/node budget on the (curtailed) real
  tensors at P = 32 — consistent with the paper having run them.
"""

from repro.bench.algorithms import make_planner, paper_label
from repro.bench.report import ascii_table
from repro.bench.suite import REAL_TENSORS
from repro.core.memory import (
    max_live_intermediates,
    plan_peak_bytes_per_rank,
)

ALGS = ("chain-k", "chain-h", "balanced", "opt-dynamic")
GIB = 2.0**30


def _analyze():
    rows = []
    for name, meta in REAL_TENSORS.items():
        for alg in ALGS:
            plan = make_planner(alg, 32).plan(meta)
            mem = plan_peak_bytes_per_rank(plan)
            assert max_live_intermediates(plan.tree) <= plan.tree.depth()
            rows.append(
                (
                    name,
                    alg,
                    mem["resident"] / GIB,
                    mem["ttm_buffer"] / GIB,
                    mem["regrid_buffer"] / GIB,
                    mem["total"] / GIB,
                )
            )
    return rows


def test_memory_footprint_real_tensors(benchmark):
    rows = benchmark.pedantic(_analyze, rounds=1, iterations=1)
    table = [
        [
            name,
            paper_label(alg),
            f"{res:.2f}",
            f"{buf:.2f}",
            f"{rg:.2f}",
            f"{tot:.2f}",
        ]
        for name, alg, res, buf, rg, tot in rows
    ]
    print()
    print(
        ascii_table(
            ["tensor", "alg", "resident", "ttm buf", "regrid buf", "total GiB"],
            table,
            title="Per-rank peak memory (GiB), P = 32, one HOOI invocation",
        )
    )
    for name, alg, _, _, _, total in rows:
        assert total < 16.0, (
            f"{name}/{alg}: {total:.2f} GiB exceeds a BG/Q node's 16 GB"
        )
