"""Tests for sequential TTM and TTM-chains."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensor.ttm import ttm, ttm_chain
from repro.tensor.unfold import unfold


class TestTTM:
    def test_matches_unfold_definition(self):
        rng = np.random.default_rng(0)
        t = rng.standard_normal((4, 5, 6))
        a = rng.standard_normal((3, 5))
        z = ttm(t, a, 1)
        assert z.shape == (4, 3, 6)
        np.testing.assert_allclose(unfold(z, 1), a @ unfold(t, 1), rtol=1e-12)

    def test_identity_matrix_is_noop(self):
        rng = np.random.default_rng(1)
        t = rng.standard_normal((3, 4, 2))
        np.testing.assert_allclose(ttm(t, np.eye(4), 1), t)

    def test_matrix_shape_checked(self):
        with pytest.raises(ValueError, match="columns"):
            ttm(np.zeros((3, 4)), np.zeros((2, 5)), 1)
        with pytest.raises(ValueError, match="2-D"):
            ttm(np.zeros((3, 4)), np.zeros(4), 1)

    def test_output_contiguous(self):
        z = ttm(np.zeros((3, 4, 5)), np.zeros((2, 4)), 1)
        assert z.flags["C_CONTIGUOUS"]

    def test_matches_einsum_3d(self):
        rng = np.random.default_rng(2)
        t = rng.standard_normal((3, 4, 5))
        a = rng.standard_normal((2, 4))
        np.testing.assert_allclose(
            ttm(t, a, 1), np.einsum("ijk,rj->irk", t, a), rtol=1e-12
        )

    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=99),
    )
    def test_mode_length_replaced(self, mode, k, seed):
        dims = (4, 3, 5, 2)
        t = np.random.default_rng(seed).standard_normal(dims)
        a = np.random.default_rng(seed + 1).standard_normal((k, dims[mode]))
        z = ttm(t, a, mode)
        expected = list(dims)
        expected[mode] = k
        assert z.shape == tuple(expected)


class TestTTMChain:
    def test_commutativity(self):
        # the property HOOI's tree rearrangements rely on (section 2.1)
        rng = np.random.default_rng(3)
        t = rng.standard_normal((4, 5, 6))
        a = rng.standard_normal((2, 4))
        b = rng.standard_normal((3, 6))
        z1 = ttm(ttm(t, a, 0), b, 2)
        z2 = ttm(ttm(t, b, 2), a, 0)
        np.testing.assert_allclose(z1, z2, rtol=1e-12)

    @given(st.permutations([0, 1, 2, 3]), st.integers(min_value=0, max_value=49))
    def test_chain_order_invariance(self, order, seed):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal((3, 4, 2, 5))
        mats = {m: rng.standard_normal((2, t.shape[m])) for m in range(4)}
        natural = ttm_chain(t, [mats[m] for m in range(4)], list(range(4)))
        shuffled = ttm_chain(t, [mats[m] for m in order], list(order))
        np.testing.assert_allclose(natural, shuffled, rtol=1e-10)

    def test_skip_mode(self):
        rng = np.random.default_rng(5)
        t = rng.standard_normal((3, 4, 5))
        mats = [rng.standard_normal((2, s)) for s in t.shape]
        z = ttm_chain(t, mats, skip=1)
        assert z.shape == (2, 4, 2)

    def test_transpose_flag(self):
        rng = np.random.default_rng(6)
        t = rng.standard_normal((3, 4))
        f = rng.standard_normal((3, 2))  # L x K factor
        z = ttm_chain(t, [f], [0], transpose=True)
        np.testing.assert_allclose(z, f.T @ t, rtol=1e-12)

    def test_duplicate_modes_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            ttm_chain(np.zeros((2, 2)), [np.eye(2), np.eye(2)], [0, 0])

    def test_none_matrix_without_skip_rejected(self):
        with pytest.raises(ValueError, match="None"):
            ttm_chain(np.zeros((2, 2)), [None, np.eye(2)], [0, 1])

    def test_matrix_count_mismatch(self):
        with pytest.raises(ValueError, match="one matrix per mode"):
            ttm_chain(np.zeros((2, 2)), [np.eye(2)], [0, 1])
