"""Tests for the ``repro decompose`` subcommand."""

import json

import numpy as np
import pytest

from repro.backends import BACKEND_NAMES
from repro.cli import main


class TestDecomposeRandom:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_every_backend(self, backend, capsys):
        rc = main(
            [
                "decompose",
                "--random", "24,20,16",
                "--core", "6,5,4",
                "--backend", backend,
                "-p", "8",
                "--max-iters", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"backend:            {backend}" in out
        assert "24x20x16 -> 6x5x4" in out
        assert "final error" in out
        assert "compression ratio" in out
        assert "ledger volume" in out

    def test_json_output(self, capsys):
        rc = main(
            [
                "decompose",
                "--random", "12,10,8",
                "--core", "4,3,2",
                "--backend", "simcluster",
                "-p", "4",
                "--max-iters", "2",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dims"] == [12, 10, 8]
        assert payload["core"] == [4, 3, 2]
        assert payload["backend"] == "simcluster"
        assert payload["n_iters"] == 2
        assert payload["ledger"]["comm_volume"] > 0
        assert 0.0 <= payload["error"] <= 1.0

    def test_dtype_flag(self, capsys):
        rc = main(
            [
                "decompose",
                "--random", "12,10,8",
                "--core", "4,3,2",
                "--dtype", "float32",
                "--max-iters", "1",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dtype"] == "float32"

    def test_skip_hooi(self, capsys):
        rc = main(
            [
                "decompose",
                "--random", "12,10,8",
                "--core", "4,3,2",
                "--skip-hooi",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_iters"] == 0
        assert payload["error"] == payload["sthosvd_error"]


class TestDecomposeFile:
    def test_npy_input(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        t = rng.standard_normal((10, 9, 8)).astype(np.float32)
        path = tmp_path / "t.npy"
        np.save(path, t)
        rc = main(
            [
                "decompose",
                "--input", str(path),
                "--core", "3,3,2",
                "--max-iters", "1",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dims"] == [10, 9, 8]
        assert payload["dtype"] == "float32"  # input dtype honored


class TestDecomposeAuto:
    def test_auto_backend_selects_and_reports(self, capsys):
        rc = main(
            [
                "decompose",
                "--random", "12,10,8",
                "--core", "4,3,2",
                "--backend", "auto",
                "--max-iters", "1",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["auto_selected"] is True
        assert payload["backend"] in BACKEND_NAMES
        assert payload["selection_reason"]

    def test_auto_with_calibration_profile(self, tmp_path, capsys):
        from repro.backends.select import default_profile, save_profile

        profile = default_profile()
        path = save_profile(profile, str(tmp_path / "prof.json"))
        rc = main(
            [
                "decompose",
                "--random", "12,10,8",
                "--core", "4,3,2",
                "--backend", "auto",
                "--calibration", path,
                "--max-iters", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[auto]" in out
        assert "selected because" in out


class TestCalibrate:
    def test_calibrate_writes_profile(self, tmp_path, capsys):
        path = str(tmp_path / "cal.json")
        rc = main(
            [
                "calibrate",
                "--dims", "12,10,8",
                "--core", "3,3,2",
                "--repeats", "1",
                "--out", path,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile written to" in out
        with open(path, encoding="utf-8") as fh:
            profile = json.load(fh)
        assert profile["calibrated"] is True
        assert profile["backends"]["sequential"]["rate"] > 0

    def test_calibrate_bad_args_exit_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="repeats"):
            main(
                [
                    "calibrate",
                    "--dims", "12,10,8",
                    "--core", "3,3,2",
                    "--repeats", "0",
                    "--out", str(tmp_path / "cal.json"),
                ]
            )

    def test_calibrate_json_output(self, tmp_path, capsys):
        rc = main(
            [
                "calibrate",
                "--dims", "12,10,8",
                "--core", "3,3,2",
                "--repeats", "1",
                "--out", str(tmp_path / "cal.json"),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]["calibrated"] is True
        assert set(payload["profile"]["backends"]) >= {
            "sequential", "threaded", "procpool"
        }


class TestDecomposeErrors:
    def test_bad_calibration_path_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(
                [
                    "decompose",
                    "--random", "8,8,8",
                    "--core", "2,2,2",
                    "--backend", "auto",
                    "--calibration", str(tmp_path / "missing.json"),
                ]
            )

    def test_calibration_requires_auto_backend(self):
        with pytest.raises(SystemExit, match="--backend auto"):
            main(
                [
                    "decompose",
                    "--random", "8,8,8",
                    "--core", "2,2,2",
                    "--backend", "threaded",
                    "--calibration", "whatever.json",
                ]
            )

    def test_requires_tensor_source(self):
        with pytest.raises(SystemExit, match="--input|--random"):
            main(["decompose", "--core", "2,2,2"])

    def test_requires_core(self):
        with pytest.raises(SystemExit, match="--core"):
            main(["decompose", "--random", "8,8,8"])
