"""Tests for the ``repro decompose`` subcommand."""

import json

import numpy as np
import pytest

from repro.backends import BACKEND_NAMES
from repro.cli import main


class TestDecomposeRandom:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_every_backend(self, backend, capsys):
        rc = main(
            [
                "decompose",
                "--random", "24,20,16",
                "--core", "6,5,4",
                "--backend", backend,
                "-p", "8",
                "--max-iters", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"backend:            {backend}" in out
        assert "24x20x16 -> 6x5x4" in out
        assert "final error" in out
        assert "compression ratio" in out
        assert "ledger volume" in out

    def test_json_output(self, capsys):
        rc = main(
            [
                "decompose",
                "--random", "12,10,8",
                "--core", "4,3,2",
                "--backend", "simcluster",
                "-p", "4",
                "--max-iters", "2",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dims"] == [12, 10, 8]
        assert payload["core"] == [4, 3, 2]
        assert payload["backend"] == "simcluster"
        assert payload["n_iters"] == 2
        assert payload["ledger"]["comm_volume"] > 0
        assert 0.0 <= payload["error"] <= 1.0

    def test_dtype_flag(self, capsys):
        rc = main(
            [
                "decompose",
                "--random", "12,10,8",
                "--core", "4,3,2",
                "--dtype", "float32",
                "--max-iters", "1",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dtype"] == "float32"

    def test_skip_hooi(self, capsys):
        rc = main(
            [
                "decompose",
                "--random", "12,10,8",
                "--core", "4,3,2",
                "--skip-hooi",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_iters"] == 0
        assert payload["error"] == payload["sthosvd_error"]


class TestDecomposeFile:
    def test_npy_input(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        t = rng.standard_normal((10, 9, 8)).astype(np.float32)
        path = tmp_path / "t.npy"
        np.save(path, t)
        rc = main(
            [
                "decompose",
                "--input", str(path),
                "--core", "3,3,2",
                "--max-iters", "1",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dims"] == [10, 9, 8]
        assert payload["dtype"] == "float32"  # input dtype honored


class TestDecomposeErrors:
    def test_requires_tensor_source(self):
        with pytest.raises(SystemExit, match="--input|--random"):
            main(["decompose", "--core", "2,2,2"])

    def test_requires_core(self):
        with pytest.raises(SystemExit, match="--core"):
            main(["decompose", "--random", "8,8,8"])
