"""Tests for the execution-backend subsystem.

The headline property: all three backends run the *same compiled schedule*
and must produce identical factors/errors to 1e-10 on random 3-D and 4-D
tensors — sequential numpy is the reference, the virtual cluster and the
thread pool must agree with it.
"""

import numpy as np
import pytest

from repro.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    SequentialBackend,
    SimClusterBackend,
    ThreadedBackend,
    get_backend,
)
from repro.mpi.comm import SimCluster
from repro.session import TuckerSession
from repro.tensor.random import low_rank_tensor


def make_backend(name: str, n_procs: int) -> ExecutionBackend:
    if name == "simcluster":
        return SimClusterBackend(n_procs=n_procs)
    if name == "threaded":
        return ThreadedBackend(n_workers=3)
    return SequentialBackend()


CASES = [
    ((12, 10, 8), (4, 3, 3), 4, 0),
    ((14, 9, 11), (5, 3, 4), 4, 1),
    ((9, 8, 7, 6), (3, 3, 2, 2), 8, 2),
    ((10, 12, 6, 8), (4, 5, 2, 3), 8, 3),
]


class TestBackendEquivalence:
    @pytest.mark.parametrize("dims,core,procs,seed", CASES)
    def test_run_identical_across_backends(self, dims, core, procs, seed):
        t = low_rank_tensor(dims, core, noise=0.1, seed=seed)
        results = {}
        for name in BACKEND_NAMES:
            session = TuckerSession(backend=make_backend(name, procs))
            results[name] = session.run(
                t, core, planner="optimal", n_procs=procs, max_iters=3, tol=0.0
            )
        ref = results["sequential"]
        for name in ("simcluster", "threaded"):
            res = results[name]
            np.testing.assert_allclose(
                res.errors, ref.errors, atol=1e-10, err_msg=name
            )
            np.testing.assert_allclose(
                res.decomposition.core,
                ref.decomposition.core,
                atol=1e-10,
                err_msg=name,
            )
            for a, b in zip(
                res.decomposition.factors, ref.decomposition.factors
            ):
                np.testing.assert_allclose(a, b, atol=1e-10, err_msg=name)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_sthosvd_matches_sequential_reference(self, name):
        from repro.hooi.sthosvd import sthosvd

        dims, core, procs = (12, 10, 8), (4, 3, 3), 4
        t = low_rank_tensor(dims, core, noise=0.1, seed=5)
        session = TuckerSession(backend=make_backend(name, procs))
        res = session.sthosvd(t, core, planner="optimal", n_procs=procs)
        ref = sthosvd(t, core, mode_order="optimal")
        np.testing.assert_allclose(
            res.decomposition.core, ref.core, atol=1e-10
        )
        for a, b in zip(res.decomposition.factors, ref.factors):
            np.testing.assert_allclose(a, b, atol=1e-10)
        assert res.sthosvd_error == pytest.approx(ref.error_vs(t), abs=1e-10)

    def test_threaded_is_deterministic(self):
        dims, core = (13, 11, 9), (4, 3, 3)
        t = low_rank_tensor(dims, core, noise=0.2, seed=7)
        runs = []
        for _ in range(2):
            session = TuckerSession(backend=ThreadedBackend(n_workers=4))
            runs.append(
                session.run(t, core, planner="optimal", n_procs=4, max_iters=2)
            )
        assert runs[0].errors == runs[1].errors
        for a, b in zip(
            runs[0].decomposition.factors, runs[1].decomposition.factors
        ):
            np.testing.assert_array_equal(a, b)


class TestLedger:
    def test_sequential_ledger_counts_flops_no_volume(self):
        backend = SequentialBackend()
        session = TuckerSession(backend=backend)
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session.run(t, (3, 3, 2), planner="optimal", n_procs=2, max_iters=1)
        stats = backend.stats()
        assert stats["flops"] > 0
        assert stats["comm_volume"] == 0
        assert stats["events"] > 0

    def test_simcluster_ledger_shares_cluster_stats(self):
        cluster = SimCluster(4)
        backend = SimClusterBackend(cluster)
        session = TuckerSession(backend=backend)
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session.run(t, (3, 3, 2), planner="optimal", max_iters=1)
        assert backend.ledger is cluster.stats
        assert backend.stats()["comm_volume"] == cluster.stats.volume() > 0

    def test_threaded_ledger_and_reset(self):
        backend = ThreadedBackend(n_workers=2)
        session = TuckerSession(backend=backend)
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session.run(t, (3, 3, 2), planner="optimal", n_procs=2, max_iters=1)
        assert backend.stats()["flops"] > 0
        backend.reset_stats()
        assert backend.stats()["events"] == 0
        backend.close()


class TestRegistry:
    def test_instance_passthrough(self):
        backend = SequentialBackend()
        assert get_backend(backend) is backend

    def test_names_resolve(self):
        assert get_backend("sequential").name == "sequential"
        assert get_backend("threaded", n_procs=2).name == "threaded"
        assert get_backend("simcluster", n_procs=4).name == "simcluster"
        assert get_backend("procpool", n_procs=2).name == "procpool"

    def test_auto_is_session_level(self):
        with pytest.raises(ValueError, match="TuckerSession"):
            get_backend("auto")

    def test_simcluster_needs_procs(self):
        with pytest.raises(ValueError, match="cluster"):
            get_backend("simcluster")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("mpi4py")

    def test_cluster_size_mismatch_rejected(self):
        session = TuckerSession(backend="simcluster", n_procs=4)
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        with pytest.raises(ValueError, match="ranks"):
            session.run(t, (3, 3, 2), planner="optimal", n_procs=8)


class TestMethodValidation:
    def test_simcluster_rejects_direct_svd(self):
        backend = SimClusterBackend(n_procs=2)
        t = low_rank_tensor((8, 6, 4), (2, 2, 2), noise=0.1, seed=0)
        handle = backend.distribute(t, (2, 1, 1))
        with pytest.raises(ValueError, match="Gram"):
            backend.leading_factor(handle, 0, 2, method="svd")

    def test_threaded_rejects_direct_svd(self):
        backend = ThreadedBackend(n_workers=2)
        t = low_rank_tensor((8, 6, 4), (2, 2, 2), noise=0.1, seed=0)
        with pytest.raises(ValueError, match="Gram"):
            backend.leading_factor(backend.distribute(t, ()), 0, 2, method="svd")
