"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.meta import TensorMeta
from repro.mpi.comm import SimCluster
from repro.mpi.machine import MachineModel

# Hypothesis: no wall-clock deadline (BLAS warm-up jitter), moderate example
# counts so the full suite stays fast; REPRO_HYP_EXAMPLES overrides.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=int(os.environ.get("REPRO_HYP_EXAMPLES", "40")),
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def meta4() -> TensorMeta:
    """A 4-D metadata with distinct K and h per mode."""
    return TensorMeta(dims=(24, 20, 16, 10), core=(6, 10, 4, 5))


@pytest.fixture
def meta5() -> TensorMeta:
    """A 5-D metadata shaped like the paper's benchmark tensors."""
    return TensorMeta(dims=(50, 20, 100, 20, 50), core=(10, 16, 20, 2, 25))


@pytest.fixture
def cluster8() -> SimCluster:
    return SimCluster(8)


@pytest.fixture
def cluster4() -> SimCluster:
    return SimCluster(4)


@pytest.fixture
def uniform_machine() -> MachineModel:
    return MachineModel.uniform(bandwidth=1e9, alpha=0.0)
