"""Tests for plan execution (sequential and distributed tree walks)."""

import numpy as np
import pytest

from repro.core.meta import TensorMeta
from repro.core.planner import Planner
from repro.dist.dtensor import DistTensor
from repro.hooi.executor import (
    compute_core_distributed,
    compute_core_sequential,
    execute_tree_distributed,
    execute_tree_sequential,
)
from repro.hooi.hooi import hooi_reference_step
from repro.hooi.sthosvd import sthosvd
from repro.mpi.comm import SimCluster
from repro.tensor.random import low_rank_tensor, random_tensor


@pytest.fixture
def problem():
    dims, core = (12, 10, 8, 6), (4, 3, 3, 2)
    t = low_rank_tensor(dims, core, noise=0.1, seed=0)
    meta = TensorMeta(dims=dims, core=core)
    init = sthosvd(t, core)
    return t, meta, init


class TestSequentialExecution:
    @pytest.mark.parametrize(
        "tree_kind", ["optimal", "chain-k", "chain-h", "balanced"]
    )
    def test_all_trees_match_naive_reference(self, problem, tree_kind):
        # any valid TTM-tree must produce the same new factors as the naive
        # N-independent-chains implementation (commutativity, section 2.1)
        t, meta, init = problem
        plan = Planner(4, tree=tree_kind, grid="static").plan(meta)
        new = execute_tree_sequential(t, init.factors, plan.tree, plan.meta)
        ref = hooi_reference_step(t, init.factors, meta.core)
        for mode in range(meta.ndim):
            np.testing.assert_allclose(
                new[mode], ref.factors[mode], atol=1e-8
            )

    def test_every_factor_produced(self, problem):
        t, meta, init = problem
        plan = Planner(4).plan(meta)
        new = execute_tree_sequential(t, init.factors, plan.tree, plan.meta)
        assert sorted(new) == list(range(meta.ndim))

    def test_factor_shape_validation(self, problem):
        t, meta, init = problem
        plan = Planner(4).plan(meta)
        bad = list(init.factors)
        bad[0] = bad[0][:, :-1]
        with pytest.raises(ValueError, match="factor 0"):
            execute_tree_sequential(t, bad, plan.tree, plan.meta)

    def test_core_matches_reference(self, problem):
        t, meta, init = problem
        ref = hooi_reference_step(t, init.factors, meta.core)
        core = compute_core_sequential(t, ref.factors, meta)
        np.testing.assert_allclose(core, ref.core, atol=1e-8)


class TestDistributedExecution:
    @pytest.mark.parametrize("grid_kind", ["static", "dynamic"])
    def test_matches_sequential(self, problem, grid_kind):
        t, meta, init = problem
        plan = Planner(8, tree="optimal", grid=grid_kind).plan(meta)
        cluster = SimCluster(8)
        dt = DistTensor.from_global(cluster, t, plan.initial_grid)
        new = execute_tree_distributed(dt, init.factors, plan)
        seq = execute_tree_sequential(t, init.factors, plan.tree, plan.meta)
        for mode in range(meta.ndim):
            np.testing.assert_allclose(new[mode], seq[mode], atol=1e-8)

    def test_wrong_grid_rejected(self, problem):
        t, meta, init = problem
        plan = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        cluster = SimCluster(8)
        # distribute on some other valid grid
        other = tuple(
            g for g in [(1, 1, 2, 4), (2, 2, 2, 1), (8, 1, 1, 1)]
            if g != plan.initial_grid
        )[0]
        dt = DistTensor.from_global(cluster, t, other)
        with pytest.raises(ValueError, match="grid"):
            execute_tree_distributed(dt, init.factors, plan)

    def test_wrong_shape_rejected(self, problem):
        _, meta, init = problem
        plan = Planner(8).plan(meta)
        cluster = SimCluster(8)
        dt = DistTensor.from_global(
            cluster, random_tensor((12, 10, 8, 7), seed=1), (2, 2, 2, 1)
        )
        with pytest.raises(ValueError):
            execute_tree_distributed(dt, init.factors, plan)

    def test_core_chain_with_scheme(self, problem):
        t, meta, init = problem
        plan = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        cluster = SimCluster(8)
        dt = DistTensor.from_global(cluster, t, plan.initial_grid)
        ref = hooi_reference_step(t, init.factors, meta.core)
        core = compute_core_distributed(
            dt,
            ref.factors,
            meta,
            core_order=plan.core_order,
            core_scheme=plan.core_scheme,
        )
        np.testing.assert_allclose(core.to_global(), ref.core, atol=1e-8)

    def test_regrid_volumes_match_plan(self, problem):
        # executed regrid volume must never exceed the plan's model charge
        t, meta, init = problem
        plan = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        cluster = SimCluster(8)
        dt = DistTensor.from_global(cluster, t, plan.initial_grid)
        execute_tree_distributed(dt, init.factors, plan, tag="hooi")
        engine_regrid = cluster.stats.volume(
            op="alltoallv", tag_prefix="hooi:regrid"
        )
        assert engine_regrid <= plan.regrid_volume

    def test_rs_volume_matches_plan_exactly(self, problem):
        t, meta, init = problem
        plan = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        cluster = SimCluster(8)
        dt = DistTensor.from_global(cluster, t, plan.initial_grid)
        execute_tree_distributed(dt, init.factors, plan, tag="hooi")
        engine_rs = cluster.stats.volume(
            op="reduce_scatter", tag_prefix="hooi:ttm"
        )
        assert engine_rs == plan.ttm_volume
