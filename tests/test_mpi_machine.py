"""Tests for the alpha-beta machine model."""

import math

import pytest

from repro.mpi.machine import MachineModel


class TestConstruction:
    def test_defaults_valid(self):
        m = MachineModel.bgq_like()
        assert m.flop_rate > 0 and m.bytes_per_element == 8

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            MachineModel(flop_rate=0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            MachineModel(alpha=-1e-6)

    def test_uniform_preset_equalizes_betas(self):
        m = MachineModel.uniform(bandwidth=2e9)
        assert m.beta_reduce_scatter == m.beta_alltoall == m.beta_allgather

    def test_alltoall_advantage(self):
        m = MachineModel.bgq_like().with_alltoall_advantage(6.0)
        assert m.beta_alltoall == pytest.approx(m.beta_reduce_scatter / 6.0)
        with pytest.raises(ValueError):
            MachineModel.bgq_like().with_alltoall_advantage(0)


class TestComputeTimes:
    def test_gemm_linear_in_flops(self):
        m = MachineModel(flop_rate=1e9)
        assert m.gemm_seconds(1e9) == pytest.approx(1.0)
        assert m.gemm_seconds(2e9) == pytest.approx(2.0)

    def test_evd_uses_scalar_rate(self):
        m = MachineModel(flop_rate=1e12, evd_rate=1e9)
        assert m.evd_seconds(1e9) == pytest.approx(1.0)


class TestCollectiveTimes:
    def test_single_rank_groups_are_free(self):
        m = MachineModel.bgq_like()
        assert m.reduce_scatter_seconds(1, 1e9) == 0.0
        assert m.alltoall_seconds(1, 1e9) == 0.0
        assert m.allgather_seconds(1, 1e9) == 0.0
        assert m.allreduce_seconds(1, 1e9) == 0.0
        assert m.bcast_seconds(1, 1e9) == 0.0

    def test_reduce_scatter_alpha_beta_split(self):
        m = MachineModel.uniform(bandwidth=1e9, alpha=1e-3)
        # 4 ranks: 3 latency hops; 1e6 elements = 8e6 bytes at 1 GB/s = 8 ms
        t = m.reduce_scatter_seconds(4, 1e6)
        assert t == pytest.approx(3e-3 + 8e-3)

    def test_alltoall_faster_than_reduce_scatter_by_default(self):
        m = MachineModel.bgq_like()
        v = 1e8
        assert m.alltoall_seconds(8, v) < m.reduce_scatter_seconds(8, v)

    def test_allreduce_latency_is_logarithmic(self):
        m = MachineModel.uniform(bandwidth=1e30, alpha=1.0)
        assert m.allreduce_seconds(8, 1) == pytest.approx(2 * math.log2(8), rel=1e-6)

    def test_monotone_in_volume(self):
        m = MachineModel.bgq_like()
        assert m.reduce_scatter_seconds(4, 2e6) > m.reduce_scatter_seconds(4, 1e6)
