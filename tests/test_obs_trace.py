"""Unit tests for the observability layer (repro.obs).

Covers the tracer primitive (nesting, retroactive spans, ledger
mirroring, mark/drain scoping), the disabled no-op tracer, the metrics
registry, both trace file formats round-tripping, and the modeled-volume
summarizer agreeing with the plan's own aggregate volumes.
"""

import json
import time

import numpy as np
import pytest

from repro.core.meta import TensorMeta
from repro.core.planner import Planner
from repro.mpi.stats import Record, StatsLedger
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Trace,
    Tracer,
    canonical_tag,
    format_summary,
    load_trace,
    modeled_step_volumes,
    summarize,
)
from repro.obs.export import (
    from_chrome,
    to_chrome,
    write_chrome,
    write_jsonl,
)
from repro.obs.trace import _NULL_SPAN, Span


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #


class TestTracer:
    def test_nesting_and_parents(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner", kind="io") as inner:
                pass
        trace = tr.drain()
        assert [s.name for s in trace.spans] == ["inner", "outer"]
        got_inner, got_outer = trace.spans
        assert got_inner.parent == got_outer.sid
        assert got_outer.parent is None
        assert got_inner.kind == "io"
        trace.validate()

    def test_span_attrs_and_set(self):
        tr = Tracer()
        with tr.span("s", key="k", n=3) as span:
            span.set(more=True)
        (got,) = tr.drain().spans
        assert got.attrs == {"key": "k", "n": 3, "more": True}

    def test_exception_records_span_with_error(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("doomed"):
                raise RuntimeError("boom")
        (got,) = tr.drain().spans
        assert got.name == "doomed"
        assert "RuntimeError" in got.attrs["error"]

    def test_add_span_defaults_parent_to_open_span(self):
        tr = Tracer()
        t0 = time.perf_counter()
        with tr.span("host") as host:
            tr.add_span("retro", t0, t0 + 0.5, kind="worker", pid=42)
        trace = tr.drain()
        retro = trace.find("retro")[0]
        assert retro.parent == host.sid
        assert retro.attrs["pid"] == 42
        assert retro.seconds == pytest.approx(0.5)

    def test_event_attaches_to_open_span(self):
        tr = Tracer()
        with tr.span("s"):
            tr.event("select:backend", backend="threaded")
        (got,) = tr.drain().spans
        assert got.events[0].name == "select:backend"
        assert got.events[0].attrs == {"backend": "threaded"}

    def test_annotate_open_span(self):
        tr = Tracer()
        with tr.span("s"):
            tr.annotate(flag=1)
        (got,) = tr.drain().spans
        assert got.attrs["flag"] == 1

    def test_on_record_mirrors_ledger(self):
        tr = Tracer()
        ledger = StatsLedger()
        ledger.observer = tr.on_record
        with tr.span("phase"):
            ledger.add_comm("reduce_scatter", "ttm:n3", 4, 120.0, 0.25)
            ledger.add_compute("gemm", "svd:m0", 999.0, 0.125)
        trace = tr.drain()
        assert trace.step_tags() == {"ttm:n3", "svd:m0"}
        ttm = trace.find("ttm:n3")[0]
        assert ttm.kind == "step"
        assert ttm.attrs["elements"] == 120.0
        assert ttm.attrs["group_size"] == 4
        assert ttm.seconds == pytest.approx(0.25)
        svd = trace.find("svd:m0")[0]
        assert svd.attrs["flops"] == 999.0

    def test_mark_drain_scoping(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        mark = tr.mark()
        with tr.span("b"):
            pass
        second = tr.drain(mark)
        assert [s.name for s in second.spans] == ["b"]
        first = tr.drain()
        assert [s.name for s in first.spans] == ["a"]
        assert len(tr.drain()) == 0

    def test_concurrent_add_span_threadsafe(self):
        import threading

        tr = Tracer()
        n = 200

        def add(base):
            for i in range(n):
                tr.add_span(f"t{base}", 0.0, 1.0, kind="worker")

        threads = [threading.Thread(target=add, args=(k,)) for k in range(4)]
        with tr.span("host"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        trace = tr.drain()
        assert len(trace) == 4 * n + 1
        sids = [s.sid for s in trace.spans]
        assert len(sids) == len(set(sids))


class TestNullTracer:
    def test_all_noops(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("x") is _NULL_SPAN
        with NULL_TRACER.span("x") as s:
            s.set(a=1)
            assert s.seconds == 0.0
        NULL_TRACER.event("e")
        NULL_TRACER.on_record(
            Record(category="comm", op="o", tag="t", elements=1.0)
        )
        assert NULL_TRACER.mark() == 0
        assert len(NULL_TRACER.drain()) == 0

    def test_shared_singleton_span(self):
        # The no-op context manager is a shared instance: instrumented
        # hot paths allocate nothing when tracing is off.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


# --------------------------------------------------------------------- #
# Trace structure
# --------------------------------------------------------------------- #


class TestTrace:
    def _spans(self):
        return (
            Span(sid=1, name="root", kind="phase", start=0.0, end=10.0),
            Span(sid=2, name="kid", kind="step", start=1.0, end=2.0, parent=1),
            Span(sid=3, name="kid", kind="step", start=3.0, end=4.0, parent=1),
        )

    def test_roots_children_find_by_kind(self):
        trace = Trace(spans=self._spans())
        assert [s.sid for s in trace.roots()] == [1]
        assert [s.sid for s in trace.children(trace.spans[0])] == [2, 3]
        assert len(trace.find("kid")) == 2
        assert len(trace.by_kind("step")) == 2
        assert trace.seconds == pytest.approx(10.0)

    def test_validate_rejects_child_outside_parent(self):
        bad = Trace(
            spans=(
                Span(sid=1, name="root", kind="phase", start=0.0, end=1.0),
                Span(sid=2, name="kid", kind="step", start=0.5, end=5.0,
                     parent=1),
            )
        )
        with pytest.raises(AssertionError, match="ends after parent"):
            bad.validate()

    def test_validate_rejects_unknown_kind(self):
        bad = Trace(
            spans=(Span(sid=1, name="x", kind="nope", start=0.0, end=1.0),)
        )
        with pytest.raises(AssertionError, match="unknown kind"):
            bad.validate()

    def test_merge_remaps_sids_and_orphans_parents(self):
        a = Trace(spans=self._spans(), meta={"backend": "a", "only_a": 1})
        b = Trace(spans=self._spans(), meta={"backend": "b"})
        merged = Trace.merge([a, b])
        assert len(merged) == 6
        sids = [s.sid for s in merged.spans]
        assert len(sids) == len(set(sids))
        # Both roots survive as roots; children still bind to their own.
        assert len(merged.roots()) == 2
        for root in merged.roots():
            assert len(merged.children(root)) == 2
        # meta merge is first-wins.
        assert merged.meta["backend"] == "a"
        assert merged.meta["only_a"] == 1
        merged.validate()


# --------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------- #


class TestExport:
    def _trace(self):
        tr = Tracer()
        with tr.span("run", kind="phase", backend="sequential") as root:
            tr.event("select:storage", mode="memory")
            with tr.span("compile"):
                pass
            tr.add_span("ttm:n1", root.start, root.start + 1e-5,
                        kind="step", elements=10.0)
        trace = tr.drain()
        trace.meta.update({"backend": "sequential", "itemsize": 8})
        return trace

    def test_chrome_round_trip(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "t.json")
        write_chrome(trace, path)
        loaded = Trace.load(path)
        assert loaded.meta["backend"] == "sequential"
        assert {s.name for s in loaded.spans} == {"run", "compile", "ttm:n1"}
        for orig, back in zip(
            sorted(trace.spans, key=lambda s: s.sid),
            sorted(loaded.spans, key=lambda s: s.sid),
        ):
            assert back.name == orig.name
            assert back.kind == orig.kind
            assert back.parent == orig.parent
            assert back.start == pytest.approx(orig.start, abs=1e-9)
            assert back.seconds == pytest.approx(orig.seconds, abs=1e-9)
        assert loaded.step_tags() == {"ttm:n1"}
        loaded.validate()

    def test_chrome_document_shape(self):
        trace = self._trace()
        doc = to_chrome(trace)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["backend"] == "sequential"
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"run", "compile", "ttm:n1"}
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "select:storage" for e in instants)

    def test_jsonl_round_trip(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "t.jsonl")
        write_jsonl(trace, path)
        loaded = Trace.load(path)
        assert loaded.meta == trace.meta
        assert [s.name for s in loaded.spans] == [s.name for s in trace.spans]
        events = loaded.find("run")[0].events
        assert events[0].name == "select:storage"

    def test_save_infers_format_from_extension(self, tmp_path):
        trace = self._trace()
        chrome = tmp_path / "a.json"
        jsonl = tmp_path / "a.jsonl"
        trace.save(str(chrome))
        trace.save(str(jsonl))
        assert "traceEvents" in json.loads(chrome.read_text())
        first = jsonl.read_text().splitlines()[0]
        assert "meta" in json.loads(first)
        # the sniffing loader handles both without being told
        assert load_trace(str(chrome)).step_tags() == {"ttm:n1"}
        assert load_trace(str(jsonl)).step_tags() == {"ttm:n1"}

    def test_chrome_from_bad_document(self):
        with pytest.raises(ValueError):
            from_chrome({"no": "events"})


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2.5)
        assert reg.counter("hits").value == 3.5
        with pytest.raises(ValueError):
            reg.counter("hits").inc(-1)

    def test_gauge_peak(self):
        reg = MetricsRegistry()
        g = reg.gauge("resident")
        g.set(10)
        g.set(4)
        assert g.value == 4 and g.peak == 10
        g.max(7)
        assert g.value == 7 and g.peak == 10

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("step")
        for v in range(1, 101):
            h.observe(float(v))
        pct = h.percentiles((50.0, 99.0))
        assert pct[50.0] == pytest.approx(50.0, abs=1.0)
        assert pct[99.0] == pytest.approx(99.0, abs=1.0)
        s = h.summary()
        assert s["count"] == 100.0
        assert "p50" in s and "p99" in s

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        json.dumps(snap)
        assert snap["counters"]["c"] == 1.0
        assert snap["gauges"]["g"]["peak"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1.0
        reg.clear()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


# --------------------------------------------------------------------- #
# summarize: modeled volumes vs plan aggregates
# --------------------------------------------------------------------- #


CONFIGS = [
    ((12, 10, 8), (4, 3, 3), 4, "optimal", "dynamic"),
    ((14, 9, 11), (5, 3, 4), 8, "optimal", "static"),
    ((9, 8, 7, 6), (3, 3, 2, 2), 8, "chain-k", "dynamic"),
]


class TestModeledVolumes:
    def test_canonical_tag_strips_iteration(self):
        assert canonical_tag("hooi:it3:ttm:n7") == "ttm:n7"
        assert canonical_tag("hooi:it12:core:ttm1") == "core:ttm1"
        assert canonical_tag("sthosvd:svd0") == "sthosvd:svd0"
        assert canonical_tag("norm:input") == "norm:input"

    @pytest.mark.parametrize("dims,core,procs,tree,grid", CONFIGS)
    def test_volumes_sum_to_plan_aggregates(self, dims, core, procs, tree,
                                            grid):
        plan = Planner(procs, tree=tree, grid=grid).plan(
            TensorMeta(dims=dims, core=core)
        )
        vols = modeled_step_volumes(plan)
        ttm = sum(v for t, v in vols.items()
                  if t.startswith("ttm:") or t.startswith("regrid:") is False
                  and t.startswith("ttm:"))
        ttm = sum(v for t, v in vols.items() if t.startswith("ttm:"))
        regrid = sum(v for t, v in vols.items() if t.startswith("regrid:"))
        core_ttm = sum(v for t, v in vols.items()
                       if t.startswith("core:ttm"))
        core_regrid = sum(v for t, v in vols.items()
                          if t.startswith("core:regrid"))
        assert ttm == plan.ttm_volume
        assert regrid == plan.regrid_volume
        assert core_ttm == plan.core_ttm_volume
        assert core_regrid == plan.core_regrid_volume

    def test_summarize_rows_cover_model(self):
        from repro.session import TuckerSession
        from repro.tensor.random import low_rank_tensor

        dims, core, procs = (12, 10, 8), (4, 3, 3), 4
        t = low_rank_tensor(dims, core, noise=0.1, seed=3)
        session = TuckerSession(backend="simcluster", n_procs=procs,
                                trace=True)
        res = session.run(t, core, planner="optimal", n_procs=procs,
                          max_iters=2, tol=-np.inf)
        rows = summarize(res.trace)
        by_tag = {r["tag"]: r for r in rows}
        modeled = res.trace.meta["modeled_volumes"]
        # Every modeled HOOI tree/core tag that actually executed has its
        # model charge placed next to its measurement.
        seen_modeled = {tag for tag, row in by_tag.items()
                        if row["modeled_elements"] is not None}
        assert seen_modeled
        assert seen_modeled <= set(modeled)
        # simcluster records exact engine volumes, (q-1)|Out|/q per
        # reduce-scatter — always positive and never above the paper's
        # (q_n-1)|Out| charge shown beside it.
        for tag, row in by_tag.items():
            if tag.startswith("ttm:") and row["modeled_elements"]:
                per_occurrence = row["elements"] / row["count"]
                assert 0 < per_occurrence <= row["modeled_elements"], tag
        text = format_summary(rows)
        assert "step tag" in text and "model elems" in text

    def test_format_summary_marks_unmodeled(self):
        rows = [{
            "tag": "norm:input", "count": 2, "modeled_elements": None,
            "seconds": 0.5, "elements": 10.0, "bytes": 80.0, "flops": 0.0,
        }]
        text = format_summary(rows)
        assert "-" in text


# --------------------------------------------------------------------- #
# session integration
# --------------------------------------------------------------------- #


class TestSessionTracing:
    def _run(self, **kw):
        from repro.session import TuckerSession
        from repro.tensor.random import low_rank_tensor

        t = low_rank_tensor((12, 10, 8), (4, 3, 3), noise=0.1, seed=5)
        session = TuckerSession(backend="sequential", trace=True)
        return session, session.run(t, (4, 3, 3), n_procs=4, max_iters=2,
                                    **kw)

    def test_trace_meta_and_metrics(self):
        session, res = self._run()
        meta = res.trace.meta
        assert meta["backend"] == "sequential"
        assert meta["itemsize"] == 8
        snap = meta["metrics"]
        assert snap["counters"]["runs"] == 1.0
        assert snap["counters"]["plan_cache_misses"] == 1.0
        assert snap["histograms"]["run_seconds"]["count"] == 1.0
        assert any(k.startswith("step_seconds:") for k in snap["histograms"])

    def test_spill_run_emits_io_spans(self, tmp_path):
        from repro.session import TuckerSession
        from repro.tensor.random import low_rank_tensor

        t = low_rank_tensor((16, 12, 10), (4, 3, 3), noise=0.1, seed=5)
        session = TuckerSession(backend="sequential", trace=True)
        res = session.run(t, (4, 3, 3), max_iters=1, storage="mmap",
                          spill_dir=str(tmp_path))
        io = res.trace.by_kind("io")
        assert io, "spilled run produced no io spans"
        assert {s.name for s in io} <= {"spill:read", "spill:write"}
        writes = res.trace.meta["metrics"]["counters"]["spill_write_bytes"]
        assert writes > 0
        assert res.trace.meta["resident_peak"] > 0

    def test_user_supplied_tracer_is_used(self):
        from repro.session import TuckerSession
        from repro.tensor.random import low_rank_tensor

        tr = Tracer()
        t = low_rank_tensor((10, 8, 6), (3, 3, 2), noise=0.1, seed=5)
        session = TuckerSession(backend="sequential", trace=tr)
        res = session.run(t, (3, 3, 2), max_iters=1)
        assert session.tracer is tr
        assert res.trace is not None
        assert res.trace.find("run")

    def test_batch_trace_merges_items(self):
        from repro.session import TuckerSession
        from repro.tensor.random import low_rank_tensor

        xs = [
            low_rank_tensor((10, 8, 6), (3, 3, 2), noise=0.1, seed=k)
            for k in range(3)
        ]
        session = TuckerSession(backend="sequential", trace=True)
        batch = session.run_many(xs, core_dims=(3, 3, 2), max_iters=1)
        trace = batch.trace
        assert trace is not None
        roots = {s.name for s in trace.roots()}
        assert roots == {"batch", "run"}
        assert len(trace.find("run")) == 3
        assert trace.meta["method"] == "batch"
        assert trace.meta["items"] == 3
        assert batch.seconds >= max(i.seconds for i in batch.items)
        trace.validate()

    def test_batch_skip_keeps_failed_item_spans(self):
        from repro.session import TuckerSession
        from repro.tensor.random import low_rank_tensor

        good = low_rank_tensor((10, 8, 6), (3, 3, 2), noise=0.1, seed=1)
        session = TuckerSession(backend="sequential", trace=True)
        batch = session.run_many(
            [good, "/nonexistent/path.npy", good * 2.0],
            core_dims=(3, 3, 2), max_iters=1, on_error="skip",
        )
        assert len(batch.items) == 2
        assert len(batch.failures) == 1
        assert batch.trace is not None
        assert len(batch.trace.find("run")) == 2

    def test_tracing_off_buffer_stays_empty(self):
        from repro.session import TuckerSession
        from repro.tensor.random import low_rank_tensor

        t = low_rank_tensor((10, 8, 6), (3, 3, 2), noise=0.1, seed=5)
        session = TuckerSession(backend="sequential")
        for _ in range(3):
            res = session.run(t, (3, 3, 2), max_iters=1)
            assert res.trace is None
        assert session.tracer.mark() == 0
        assert session.metrics.counter("runs").value == 3.0
