"""Tests for distributed TTM: correctness vs the sequential kernel and the
paper's exact volume formula."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.dtensor import DistTensor
from repro.dist.ttm import dist_ttm
from repro.mpi.comm import SimCluster
from repro.tensor.ttm import ttm


class TestCorrectness:
    def test_matches_sequential(self):
        c = SimCluster(8)
        rng = np.random.default_rng(0)
        t = rng.standard_normal((8, 6, 4))
        a = rng.standard_normal((3, 6))
        dt = DistTensor.from_global(c, t, (2, 2, 2))
        out = dist_ttm(dt, a, 1)
        np.testing.assert_allclose(out.to_global(), ttm(t, a, 1), rtol=1e-12)

    def test_output_grid_unchanged(self):
        c = SimCluster(4)
        dt = DistTensor.from_global(c, np.zeros((8, 8)), (2, 2))
        out = dist_ttm(dt, np.zeros((4, 8)), 0)
        assert out.grid.shape == (2, 2)
        assert out.global_shape == (4, 8)

    @given(
        mode=st.integers(min_value=0, max_value=2),
        gshape=st.sampled_from([(1, 1, 4), (2, 2, 1), (4, 1, 1), (1, 2, 2)]),
        k=st.integers(min_value=4, max_value=9),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=25)
    def test_matches_sequential_across_grids(self, mode, gshape, k, seed):
        c = SimCluster(4)
        rng = np.random.default_rng(seed)
        t = rng.standard_normal((9, 8, 7))
        a = rng.standard_normal((k, t.shape[mode]))
        dt = DistTensor.from_global(c, t, gshape)
        out = dist_ttm(dt, a, mode)
        np.testing.assert_allclose(out.to_global(), ttm(t, a, mode), rtol=1e-10)

    def test_uneven_blocks(self):
        c = SimCluster(3)
        rng = np.random.default_rng(5)
        t = rng.standard_normal((7, 5))
        a = rng.standard_normal((4, 7))
        dt = DistTensor.from_global(c, t, (3, 1))
        out = dist_ttm(dt, a, 0)
        np.testing.assert_allclose(out.to_global(), ttm(t, a, 0), rtol=1e-12)


class TestVolumeAccounting:
    def test_exact_paper_formula(self):
        # volume = (q_n - 1) |Out| regardless of block divisibility
        for gshape, mode, k in [((2, 2, 2), 0, 4), ((4, 2, 1), 1, 5), ((2, 1, 4), 2, 6)]:
            c = SimCluster(8)
            t = np.random.default_rng(1).standard_normal((8, 9, 10))
            a = np.random.default_rng(2).standard_normal((k, t.shape[mode]))
            dt = DistTensor.from_global(c, t, gshape)
            out = dist_ttm(dt, a, mode, tag="ttm")
            q = gshape[mode]
            expected = (q - 1) * out.cardinality
            assert c.stats.volume(op="reduce_scatter") == expected

    def test_communication_free_when_q_is_one(self):
        c = SimCluster(4)
        t = np.random.default_rng(3).standard_normal((8, 8))
        dt = DistTensor.from_global(c, t, (1, 4))
        dist_ttm(dt, np.random.default_rng(4).standard_normal((3, 8)), 0)
        assert c.stats.volume(op="reduce_scatter") == 0

    def test_flop_accounting(self):
        c = SimCluster(2)
        t = np.ones((6, 4))
        dt = DistTensor.from_global(c, t, (2, 1))
        dist_ttm(dt, np.ones((3, 6)), 0, tag="ttm")
        # total flops = K * |T| = 3 * 24
        assert c.stats.flops(tag_prefix="ttm") == 72


class TestValidation:
    def test_invalid_output_grid_rejected(self):
        # q_mode = 4 but K = 2: output blocks would be empty
        c = SimCluster(4)
        dt = DistTensor.from_global(c, np.zeros((8, 4)), (4, 1))
        with pytest.raises(ValueError, match="q_mode"):
            dist_ttm(dt, np.zeros((2, 8)), 0)

    def test_matrix_shape_rejected(self):
        c = SimCluster(2)
        dt = DistTensor.from_global(c, np.zeros((8, 4)), (2, 1))
        with pytest.raises(ValueError, match="incompatible"):
            dist_ttm(dt, np.zeros((3, 9)), 0)
