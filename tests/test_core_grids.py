"""Tests for grid enumeration, validity and the SVD regrid target."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.grids import (
    enumerate_grids,
    is_valid_grid,
    psi,
    svd_regrid_target,
    valid_grids,
)
from repro.core.meta import TensorMeta


class TestPsi:
    def test_matches_enumeration(self):
        for p in (1, 2, 6, 32, 60):
            for n in (1, 2, 3, 4):
                assert psi(p, n) == len(list(enumerate_grids(p, n)))

    def test_paper_table1_row(self):
        assert [psi(32, n) for n in range(5, 11)] == [
            126, 252, 462, 792, 1287, 2002,
        ]


class TestValidity:
    def test_constraint_q_le_k(self):
        m = TensorMeta(dims=(10, 10, 10), core=(2, 5, 10))
        assert is_valid_grid((2, 2, 2), m)
        assert not is_valid_grid((4, 2, 1), m)  # q0 > K0
        assert is_valid_grid((1, 5, 2), m)

    def test_length_mismatch(self):
        m = TensorMeta(dims=(4, 4), core=(2, 2))
        with pytest.raises(ValueError):
            is_valid_grid((2, 2, 1), m)

    def test_valid_grids_sorted_and_complete(self):
        m = TensorMeta(dims=(10, 10, 10), core=(4, 4, 4))
        grids = valid_grids(8, m)
        assert grids == sorted(grids)
        for g in grids:
            assert math.prod(g) == 8 and is_valid_grid(g, m)
        # brute-force count
        expected = [g for g in enumerate_grids(8, 3) if is_valid_grid(g, m)]
        assert len(grids) == len(expected)

    def test_no_valid_grid_raises(self):
        m = TensorMeta(dims=(10, 10), core=(2, 2))
        with pytest.raises(ValueError, match="no valid grid"):
            valid_grids(8, m)  # 8 > 2*2


class TestSvdRegridTarget:
    def test_identity_when_already_one(self):
        assert svd_regrid_target((1, 4, 2), (10, 10, 10), 0) == (1, 4, 2)

    def test_moves_factor_off_mode(self):
        g = svd_regrid_target((4, 2, 1), (10, 10, 10), 0)
        assert g is not None
        assert g[0] == 1 and math.prod(g) == 8
        assert all(q <= ell for q, ell in zip(g, (10, 10, 10)))

    def test_respects_length_caps(self):
        # mode 1 capped at 2, mode 2 at 2: the 4 ranks from mode 0 must fit
        g = svd_regrid_target((4, 1, 1), (10, 2, 2), 0)
        assert g == (1, 2, 2)

    def test_none_when_impossible(self):
        assert svd_regrid_target((4, 1), (10, 3), 0) is None

    def test_prefers_max_agreement(self):
        # (2, 2, 2): removing mode 0's 2 should keep (1, 2, 2) pattern and
        # push the factor where it agrees most -> one of (1,4,2)/(1,2,4);
        # both agree on 1 position; lexicographic -> (1, 2, 4)
        g = svd_regrid_target((2, 2, 2), (10, 10, 10), 0)
        assert g == (1, 2, 4)

    @given(st.integers(min_value=0, max_value=500))
    def test_always_valid_when_found(self, seed):
        import random

        r = random.Random(seed)
        n = r.choice([3, 4])
        lengths = tuple(r.choice([2, 4, 8, 16]) for _ in range(n))
        # build a random grid dividing 16 with q <= length
        p = 16
        grid = None
        for cand in enumerate_grids(p, n):
            if all(q <= ell for q, ell in zip(cand, lengths)) and r.random() < 0.3:
                grid = cand
                break
        if grid is None:
            return
        mode = r.randrange(n)
        target = svd_regrid_target(grid, lengths, mode)
        if target is not None:
            assert target[mode] == 1
            assert math.prod(target) == p
            assert all(q <= ell for q, ell in zip(target, lengths))
