"""Tests for the one-call tucker() front door."""

import numpy as np
import pytest

from repro import SimCluster, tucker
from repro.core.planner import Planner
from repro.tensor.random import low_rank_tensor


@pytest.fixture
def tensor():
    return low_rank_tensor((14, 12, 10), (4, 3, 3), noise=0.08, seed=0)


class TestTucker:
    def test_sequential_default(self, tensor):
        res = tucker(tensor, (4, 3, 3), max_iters=4)
        assert res.error <= res.sthosvd_error + 1e-12
        assert res.decomposition.core_dims == (4, 3, 3)
        assert res.compression_ratio > 1
        assert res.plan.tree_kind in ("optimal", "balanced", "chain-k", "chain-h")

    def test_distributed_matches_sequential(self, tensor):
        cluster = SimCluster(4)
        # pin the planner so both paths share the exact plan
        planner = Planner(4, tree="optimal", grid="dynamic")
        seq = tucker(tensor, (4, 3, 3), n_procs=4, planner=planner, max_iters=3, tol=0.0)
        dist = tucker(
            tensor, (4, 3, 3), cluster=cluster, planner=planner, max_iters=3, tol=0.0
        )
        np.testing.assert_allclose(dist.errors, seq.errors, atol=1e-9)

    def test_skip_hooi_returns_sthosvd(self, tensor):
        res = tucker(tensor, (4, 3, 3), skip_hooi=True)
        assert res.errors == []
        assert res.error == res.sthosvd_error

    def test_named_planner(self, tensor):
        res = tucker(tensor, (4, 3, 3), planner="balanced", max_iters=2)
        assert res.plan.tree_kind == "balanced"
        assert res.plan.grid_kind == "dynamic"

    def test_planner_instance(self, tensor):
        res = tucker(
            tensor, (4, 3, 3), planner=Planner(2, tree="chain-k", grid="static"),
            max_iters=2,
        )
        assert res.plan.tree_kind == "chain-k"

    def test_core_dims_validated(self, tensor):
        with pytest.raises(ValueError):
            tucker(tensor, (40, 3, 3))

    def test_cluster_size_drives_planner(self, tensor):
        cluster = SimCluster(8)
        res = tucker(tensor, (4, 3, 3), cluster=cluster, max_iters=2)
        assert res.plan.n_procs == 8
