"""Tests for tensor redistribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.dtensor import DistTensor
from repro.dist.regrid import regrid
from repro.mpi.comm import SimCluster


class TestCorrectness:
    @given(
        src=st.sampled_from([(1, 1, 8), (2, 2, 2), (8, 1, 1), (2, 4, 1), (1, 4, 2)]),
        dst=st.sampled_from([(1, 1, 8), (2, 2, 2), (8, 1, 1), (4, 2, 1), (1, 2, 4)]),
        seed=st.integers(min_value=0, max_value=49),
    )
    @settings(max_examples=30)
    def test_content_preserved(self, src, dst, seed):
        c = SimCluster(8)
        t = np.random.default_rng(seed).standard_normal((8, 9, 10))
        dt = DistTensor.from_global(c, t, src)
        out = regrid(dt, dst)
        assert out.grid.shape == dst
        np.testing.assert_array_equal(out.to_global(), t)

    def test_same_grid_is_noop(self):
        c = SimCluster(4)
        dt = DistTensor.from_global(c, np.ones((4, 4)), (2, 2))
        out = regrid(dt, (2, 2))
        assert out is dt
        assert len(c.stats) == 0


class TestVolume:
    def test_bounded_by_cardinality(self):
        c = SimCluster(8)
        t = np.random.default_rng(1).standard_normal((8, 8, 8))
        dt = DistTensor.from_global(c, t, (2, 2, 2))
        regrid(dt, (8, 1, 1), tag="regrid")
        moved = c.stats.volume(op="alltoallv")
        assert 0 < moved <= t.size

    def test_disjoint_transpose_moves_most(self):
        # (4,1) -> (1,4): every rank keeps only its diagonal intersection
        c = SimCluster(4)
        t = np.arange(64.0).reshape(8, 8)
        dt = DistTensor.from_global(c, t, (4, 1))
        out = regrid(dt, (1, 4), tag="regrid")
        np.testing.assert_array_equal(out.to_global(), t)
        moved = c.stats.volume(op="alltoallv")
        # each rank keeps its own 2x2 diagonal block: 64 - 4*4 = 48 move
        assert moved == 48

    def test_volume_less_than_model_charge(self):
        # the planner charges |X|; the engine must never exceed it
        for dst in [(1, 8), (8, 1), (2, 4), (4, 2)]:
            c = SimCluster(8)
            t = np.random.default_rng(2).standard_normal((16, 16))
            dt = DistTensor.from_global(c, t, (2, 4))
            regrid(dt, dst)
            assert c.stats.volume(op="alltoallv") <= t.size


class TestValidation:
    def test_bad_grid_product(self):
        c = SimCluster(4)
        dt = DistTensor.from_global(c, np.zeros((4, 4)), (2, 2))
        with pytest.raises(ValueError):
            regrid(dt, (3, 1))
