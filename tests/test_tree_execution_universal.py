"""Universal tree-correctness property: *every* valid TTM-tree computes the
same HOOI step as the naive reference.

The commutativity of TTM-chains (section 2.1) is what licenses all of the
paper's tree rearrangements; this module checks it at the executable level
by enumerating (N=3) / sampling (N=4) complete tree spaces and running them.
"""

import numpy as np
import pytest

from repro.core.enumerate_trees import enumerate_trees
from repro.core.meta import TensorMeta
from repro.hooi.executor import execute_tree_sequential
from repro.hooi.hooi import hooi_reference_step
from repro.hooi.sthosvd import sthosvd
from repro.tensor.random import low_rank_tensor


@pytest.fixture(scope="module")
def problem3():
    dims, core = (9, 8, 7), (3, 3, 2)
    t = low_rank_tensor(dims, core, noise=0.2, seed=1)
    init = sthosvd(t, core)
    ref = hooi_reference_step(t, init.factors, core)
    return t, TensorMeta(dims=dims, core=core), init, ref


@pytest.fixture(scope="module")
def problem4():
    dims, core = (8, 7, 6, 5), (3, 2, 2, 2)
    t = low_rank_tensor(dims, core, noise=0.2, seed=2)
    init = sthosvd(t, core)
    ref = hooi_reference_step(t, init.factors, core)
    return t, TensorMeta(dims=dims, core=core), init, ref


class TestEveryTreeN3:
    def test_all_trees_agree_with_reference(self, problem3):
        t, meta, init, ref = problem3
        count = 0
        for tree in enumerate_trees(3):
            new = execute_tree_sequential(t, init.factors, tree, meta)
            for mode in range(3):
                np.testing.assert_allclose(
                    new[mode], ref.factors[mode], atol=1e-8
                )
            count += 1
        assert count > 5  # the space is non-trivial


class TestSampledTreesN4:
    def test_sampled_trees_agree_with_reference(self, problem4):
        t, meta, init, ref = problem4
        trees = list(enumerate_trees(4, limit=400))
        # deterministic spread over the enumeration
        for tree in trees[:: max(1, len(trees) // 25)]:
            new = execute_tree_sequential(t, init.factors, tree, meta)
            for mode in range(4):
                np.testing.assert_allclose(
                    new[mode], ref.factors[mode], atol=1e-7
                )

    def test_tree_costs_vary_but_results_do_not(self, problem4):
        from repro.core.cost import tree_cost

        _, meta, _, _ = problem4
        costs = {
            tree_cost(tree, meta) for tree in enumerate_trees(4, limit=200)
        }
        assert len(costs) > 5  # genuinely different schedules, same output
