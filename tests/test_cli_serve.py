"""Tests for the ``repro serve`` subcommand (stdio ndjson transport)."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.tensor.random import low_rank_tensor


def _run_serve(monkeypatch, capsys, lines, argv=()):
    """Drive ``repro serve`` with ndjson lines on a fake stdin."""
    stdin = io.StringIO(
        "\n".join(json.dumps(line) if not isinstance(line, str) else line
                  for line in lines) + "\n"
    )
    monkeypatch.setattr("sys.stdin", stdin)
    rc = main(["serve", "--workers", "2", *argv])
    out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    return rc, out


class TestServeCli:
    def test_mixed_workload_round_trip(self, monkeypatch, capsys, tmp_path):
        np.save(
            tmp_path / "x.npy",
            low_rank_tensor((10, 9, 8), (3, 3, 2), seed=1, noise=0.1),
        )
        rc, out = _run_serve(monkeypatch, capsys, [
            {"id": "path", "path": str(tmp_path / "x.npy"),
             "core": [3, 3, 2], "max_iters": 2},
            {"id": "rand", "random": {"dims": [8, 8, 8], "seed": 2},
             "core": [2, 2, 2]},
            {"op": "stats"},
            {"op": "drain"},
        ])
        assert rc == 0
        assert [r.get("id") for r in out[:2]] == ["path", "rand"]
        assert all(r["ok"] for r in out[:2])
        assert out[2]["op"] == "stats"
        assert out[3]["op"] == "drain" and out[3]["ok"]
        assert out[3]["completed"] == 2.0

    def test_save_and_stats_out(self, monkeypatch, capsys, tmp_path):
        result_path = str(tmp_path / "dec.npz")
        stats_path = str(tmp_path / "stats.json")
        rc, out = _run_serve(
            monkeypatch, capsys,
            [{"id": "s", "random": {"dims": [8, 7, 6]},
              "core": [2, 2, 2], "save": result_path}],
            argv=["--stats-out", stats_path],
        )
        assert rc == 0
        assert out[0]["saved"] == result_path
        with np.load(result_path) as payload:
            assert payload["core"].shape == (2, 2, 2)
        with open(stats_path, encoding="utf-8") as fh:
            stats = json.load(fh)
        assert stats["completed"] == 1.0
        assert stats["workers"] == 2

    def test_failed_request_exits_nonzero(self, monkeypatch, capsys):
        rc, out = _run_serve(
            monkeypatch, capsys,
            # Queued longer than a 1ms deadline can survive.
            [{"id": "doomed", "random": {"dims": [8, 8, 8]},
              "core": [2, 2, 2], "deadline": 0.001},
             {"id": "fine", "random": {"dims": [8, 8, 8]},
              "core": [2, 2, 2]}],
        )
        by_id = {r.get("id"): r for r in out if "id" in r}
        if not by_id["doomed"]["ok"]:  # lost the race to the worker
            assert by_id["doomed"]["error_kind"] == "DeadlineExceeded"
            assert rc == 1
        assert by_id["fine"]["ok"]

    def test_trace_saved_on_drain(self, monkeypatch, capsys, tmp_path):
        trace_path = str(tmp_path / "serve.trace.json")
        rc, _ = _run_serve(
            monkeypatch, capsys,
            [{"id": "t", "random": {"dims": [8, 7, 6]},
              "core": [2, 2, 2]}],
            argv=["--trace", trace_path],
        )
        assert rc == 0
        from repro.obs import Trace

        trace = Trace.load(trace_path)
        assert len(trace.spans) > 0

    def test_bad_budget_is_a_clean_error(self, monkeypatch, capsys):
        stdin = io.StringIO("")
        monkeypatch.setattr("sys.stdin", stdin)
        with pytest.raises(SystemExit):
            main(["serve", "--memory-budget", "minus-five"])
