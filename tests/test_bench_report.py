"""Tests for plain-text report rendering."""

import pytest

from repro.bench.report import ascii_table, format_curve


class TestAsciiTable:
    def test_alignment_and_content(self):
        out = ascii_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert "name" in lines[0] and "v" in lines[0]
        assert lines[1].count("-") > 0
        assert "long-name" in out and "22" in out

    def test_title(self):
        out = ascii_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])


class TestFormatCurve:
    def test_renders_percentiles(self):
        curves = {
            "chain-k": {0: 1.0, 50: 4.7, 100: 7.0},
            "opt": {0: 1.0, 50: 1.0, 100: 1.0},
        }
        out = format_curve(curves, title="Fig 10a")
        assert "Fig 10a" in out
        assert "4.70" in out
        assert "chain-k" in out and "opt" in out

    def test_inf_rendered(self):
        out = format_curve({"a": {0: float("inf")}})
        assert "inf" in out
