"""Tests for STHOSVD (sequential and distributed)."""

import numpy as np
import pytest

from repro.dist.dtensor import DistTensor
from repro.hooi.sthosvd import dist_sthosvd, sthosvd
from repro.mpi.comm import SimCluster
from repro.tensor.dense import fro_norm, relative_error
from repro.tensor.random import low_rank_tensor, random_tensor


class TestSequential:
    def test_exact_recovery_of_low_rank(self):
        t = low_rank_tensor((10, 9, 8), (3, 2, 4), noise=0.0, seed=0)
        dec = sthosvd(t, (3, 2, 4))
        assert dec.error_vs(t) < 1e-10

    def test_factors_orthonormal(self):
        t = random_tensor((8, 7, 6), seed=1)
        dec = sthosvd(t, (4, 3, 2))
        assert dec.factor_orthonormality() < 1e-10

    def test_core_shape(self):
        t = random_tensor((8, 7, 6), seed=2)
        dec = sthosvd(t, (4, 3, 2))
        assert dec.core_dims == (4, 3, 2)

    def test_norm_identity_holds(self):
        t = random_tensor((8, 7, 6), seed=3)
        dec = sthosvd(t, (4, 3, 2))
        assert dec.implicit_error(fro_norm(t)) == pytest.approx(
            dec.error_vs(t), rel=1e-8
        )

    def test_full_rank_core_is_lossless(self):
        t = random_tensor((6, 5, 4), seed=4)
        dec = sthosvd(t, (6, 5, 4))
        assert dec.error_vs(t) < 1e-10

    def test_mode_order_changes_factors_not_validity(self):
        t = random_tensor((8, 7, 6), seed=5)
        d1 = sthosvd(t, (4, 3, 2), mode_order="natural")
        d2 = sthosvd(t, (4, 3, 2), mode_order="optimal")
        d3 = sthosvd(t, (4, 3, 2), mode_order=[2, 0, 1])
        for d in (d1, d2, d3):
            assert d.factor_orthonormality() < 1e-10
        # errors comparable (same truncation ranks)
        errs = [d.error_vs(t) for d in (d1, d2, d3)]
        assert max(errs) - min(errs) < 0.1

    def test_bad_order_rejected(self):
        t = random_tensor((4, 4), seed=6)
        with pytest.raises(ValueError, match="permutation"):
            sthosvd(t, (2, 2), mode_order=[0, 0])


class TestDistributed:
    def test_matches_sequential(self):
        c = SimCluster(8)
        t = low_rank_tensor((12, 10, 8), (4, 3, 2), noise=0.1, seed=7)
        dt = DistTensor.from_global(c, t, (2, 2, 2))
        core_dist, factors = dist_sthosvd(dt, (4, 3, 2))
        seq = sthosvd(t, (4, 3, 2))
        for f_dist, f_seq in zip(factors, seq.factors):
            np.testing.assert_allclose(f_dist, f_seq, atol=1e-8)
        np.testing.assert_allclose(core_dist.to_global(), seq.core, atol=1e-8)

    def test_error_matches_sequential(self):
        c = SimCluster(4)
        t = low_rank_tensor((10, 9, 8), (3, 3, 3), noise=0.2, seed=8)
        dt = DistTensor.from_global(c, t, (2, 2, 1))
        core_dist, factors = dist_sthosvd(dt, (3, 3, 3))
        from repro.hooi.decomposition import TuckerDecomposition

        dec = TuckerDecomposition(core=core_dist.to_global(), factors=factors)
        seq = sthosvd(t, (3, 3, 3))
        assert dec.error_vs(t) == pytest.approx(seq.error_vs(t), rel=1e-8)

    def test_records_comm(self):
        c = SimCluster(4)
        t = random_tensor((8, 8, 8), seed=9)
        dt = DistTensor.from_global(c, t, (2, 2, 1))
        dist_sthosvd(dt, (4, 4, 4), tag="sthosvd")
        assert c.stats.volume(tag_prefix="sthosvd") > 0
