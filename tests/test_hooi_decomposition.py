"""Tests for the TuckerDecomposition container."""

import numpy as np
import pytest

from repro.hooi.decomposition import TuckerDecomposition
from repro.tensor.dense import fro_norm
from repro.tensor.random import random_tucker
from repro.tensor.ttm import ttm_chain


def make_dec(seed=0, dims=(8, 7, 6), core=(3, 2, 4)) -> TuckerDecomposition:
    g, factors = random_tucker(dims, core, seed=seed)
    return TuckerDecomposition(core=g, factors=factors)


class TestConstruction:
    def test_shapes(self):
        d = make_dec()
        assert d.dims == (8, 7, 6)
        assert d.core_dims == (3, 2, 4)
        assert d.meta.cardinality == 8 * 7 * 6

    def test_factor_count_checked(self):
        g, factors = random_tucker((8, 7), (3, 2))
        with pytest.raises(ValueError, match="factors"):
            TuckerDecomposition(core=g, factors=factors[:1])

    def test_factor_column_mismatch(self):
        g, factors = random_tucker((8, 7), (3, 2))
        factors[0] = factors[0][:, :2]  # 8x2 but core says 3
        with pytest.raises(ValueError, match="columns"):
            TuckerDecomposition(core=g, factors=factors)

    def test_wide_factor_rejected(self):
        g = np.zeros((3, 5))
        factors = [np.zeros((8, 3)), np.zeros((4, 5))]
        with pytest.raises(ValueError, match="wide"):
            TuckerDecomposition(core=g, factors=factors)


class TestNumerics:
    def test_reconstruct_matches_chain(self):
        d = make_dec(1)
        np.testing.assert_allclose(
            d.reconstruct(),
            ttm_chain(d.core, d.factors, [0, 1, 2]),
            rtol=1e-12,
        )

    def test_orthonormality_metric(self):
        d = make_dec(2)
        assert d.factor_orthonormality() < 1e-12
        d.factors[0][:, 0] *= 2.0
        assert d.factor_orthonormality() > 1.0

    def test_compression_ratio(self):
        d = make_dec(3, dims=(100, 100), core=(5, 5))
        stored = 25 + 2 * 500
        assert d.compression_ratio == pytest.approx(10000 / stored)

    def test_error_vs_exact_for_projection(self):
        # T built exactly from the model: error 0
        d = make_dec(4)
        t = d.reconstruct()
        assert d.error_vs(t) < 1e-12

    def test_implicit_error_matches_explicit(self):
        # Project a random tensor onto random orthonormal factors: the norm
        # identity must agree with the explicit reconstruction error.
        rng = np.random.default_rng(5)
        t = rng.standard_normal((8, 7, 6))
        _, factors = random_tucker((8, 7, 6), (3, 2, 4), seed=6)
        core = ttm_chain(t, factors, [0, 1, 2], transpose=True)
        d = TuckerDecomposition(core=core, factors=factors)
        implicit = d.implicit_error(fro_norm(t))
        explicit = d.error_vs(t)
        assert implicit == pytest.approx(explicit, rel=1e-10)

    def test_implicit_error_zero_norm(self):
        d = make_dec(7)
        assert d.implicit_error(0.0) == 0.0
