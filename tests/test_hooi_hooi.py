"""Tests for the HOOI drivers."""

import numpy as np
import pytest

from repro.core.meta import TensorMeta
from repro.core.planner import Planner
from repro.hooi.hooi import (
    hooi_distributed,
    hooi_reference_step,
    hooi_sequential,
    hooi_step_sequential,
)
from repro.hooi.sthosvd import sthosvd
from repro.mpi.comm import SimCluster
from repro.tensor.random import low_rank_tensor, random_tensor


@pytest.fixture
def problem():
    dims, core = (12, 10, 8, 6), (4, 3, 3, 2)
    t = low_rank_tensor(dims, core, noise=0.15, seed=0)
    meta = TensorMeta(dims=dims, core=core)
    return t, meta, sthosvd(t, core)


class TestSingleStep:
    def test_step_matches_reference(self, problem):
        t, meta, init = problem
        plan = Planner(4).plan(meta)
        dec = hooi_step_sequential(t, init.factors, plan)
        ref = hooi_reference_step(t, init.factors, meta.core)
        np.testing.assert_allclose(dec.core, ref.core, atol=1e-8)
        for a, b in zip(dec.factors, ref.factors):
            np.testing.assert_allclose(a, b, atol=1e-8)

    def test_step_does_not_increase_error(self, problem):
        t, meta, init = problem
        plan = Planner(4).plan(meta)
        dec = hooi_step_sequential(t, init.factors, plan)
        assert dec.error_vs(t) <= init.error_vs(t) + 1e-12

    def test_update_variants(self, problem):
        t, meta, init = problem
        jac = hooi_reference_step(t, init.factors, meta.core, update="jacobi")
        gs = hooi_reference_step(
            t, init.factors, meta.core, update="gauss-seidel"
        )
        # both must not be worse than the init; GS is the classic variant
        assert jac.error_vs(t) <= init.error_vs(t) + 1e-12
        assert gs.error_vs(t) <= init.error_vs(t) + 1e-12
        with pytest.raises(ValueError):
            hooi_reference_step(t, init.factors, meta.core, update="sor")


class TestIteration:
    def test_errors_monotone_nonincreasing(self, problem):
        t, meta, init = problem
        res = hooi_sequential(t, init, n_procs=4, max_iters=5, tol=0.0)
        for a, b in zip(res.errors, res.errors[1:]):
            assert b <= a + 1e-10

    def test_tolerance_stops_early(self, problem):
        t, _, init = problem
        res = hooi_sequential(t, init, n_procs=4, max_iters=50, tol=1e-6)
        assert res.iterations < 50

    def test_result_error_matches_explicit(self, problem):
        t, _, init = problem
        res = hooi_sequential(t, init, n_procs=4, max_iters=3)
        assert res.final_error == pytest.approx(
            res.decomposition.error_vs(t), rel=1e-6
        )

    def test_empty_history_nan(self):
        from repro.hooi.hooi import HooiResult
        from repro.hooi.decomposition import TuckerDecomposition
        from repro.tensor.random import random_tucker

        g, f = random_tucker((4, 4), (2, 2))
        r = HooiResult(TuckerDecomposition(core=g, factors=f))
        assert np.isnan(r.final_error)


class TestDistributedDriver:
    @pytest.mark.parametrize("grid_kind", ["static", "dynamic"])
    def test_matches_sequential_errors(self, problem, grid_kind):
        t, meta, init = problem
        plan = Planner(8, tree="optimal", grid=grid_kind).plan(meta)
        cluster = SimCluster(8)
        dist = hooi_distributed(cluster, t, init, plan=plan, max_iters=3, tol=0.0)
        seq = hooi_sequential(t, init, plan=plan, max_iters=3, tol=0.0)
        np.testing.assert_allclose(dist.errors, seq.errors, atol=1e-9)

    def test_recovers_planted_model_to_noise_floor(self):
        dims, core = (14, 12, 10), (3, 2, 2)
        noise = 0.05
        t = low_rank_tensor(dims, core, noise=noise, seed=3)
        init = sthosvd(t, core)
        cluster = SimCluster(4)
        res = hooi_distributed(cluster, t, init, max_iters=8)
        # error should be near the noise level, not far above
        assert res.final_error < 1.5 * noise

    def test_random_tensor_error_bounded_by_init(self):
        t = random_tensor((10, 9, 8), seed=4)
        init = sthosvd(t, (3, 3, 3))
        cluster = SimCluster(4)
        res = hooi_distributed(cluster, t, init, max_iters=4, tol=0.0)
        assert res.final_error <= init.error_vs(t) + 1e-10

    def test_stats_accumulate_per_iteration(self, problem):
        t, meta, init = problem
        plan = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        cluster = SimCluster(8)
        hooi_distributed(cluster, t, init, plan=plan, max_iters=2, tol=0.0)
        it0 = cluster.stats.volume(tag_prefix="hooi:it0")
        it1 = cluster.stats.volume(tag_prefix="hooi:it1")
        # iterations are metadata-identical: volumes must match exactly
        assert it0 == it1 > 0
