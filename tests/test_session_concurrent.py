"""Concurrent-session correctness: locks, shared caches, prefetch.

The session's contract under threads (see ``TuckerSession._run_lock``):
cache operations are safe from any thread, and whole runs serialize on
one session — concurrency across sessions, correctness within one.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.mpi.stats import StatsLedger
from repro.obs import safe_rate
from repro.session import Prefetcher, TuckerSession
from repro.tensor.random import random_tensor


class TestSharedSessionThreads:
    def test_shared_session_serializes_and_stays_correct(self):
        tensors = [random_tensor((9, 8, 7), seed=i) for i in range(6)]
        with TuckerSession(backend="sequential") as ref_session:
            expected = [
                ref_session.run(t, (3, 3, 2), max_iters=2) for t in tensors
            ]
        results: list = [None] * len(tensors)
        errors: list = []
        with TuckerSession(backend="sequential") as session:
            def work(i):
                try:
                    results[i] = session.run(
                        tensors[i], (3, 3, 2), max_iters=2
                    )
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=work, args=(i,))
                for i in range(len(tensors))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            info = session.cache_info()
        assert not errors
        # One shape, one plan: every thread after the first hits the LRU.
        assert info["size"] == 1
        assert info["hits"] >= len(tensors) - 1
        for got, ref in zip(results, expected):
            np.testing.assert_allclose(
                got.decomposition.core,
                ref.decomposition.core,
                atol=1e-10,
            )

    def test_private_sessions_run_concurrently_and_agree(self):
        tensors = [random_tensor((8, 8, 8), seed=i) for i in range(4)]
        with TuckerSession(backend="sequential") as ref_session:
            expected = [
                ref_session.run(t, (2, 2, 2), max_iters=2) for t in tensors
            ]
        results: list = [None] * len(tensors)
        errors: list = []

        def work(i):
            try:
                with TuckerSession(backend="sequential") as session:
                    results[i] = session.run(
                        tensors[i], (2, 2, 2), max_iters=2
                    )
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,))
            for i in range(len(tensors))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        for got, ref in zip(results, expected):
            np.testing.assert_allclose(
                got.decomposition.core,
                ref.decomposition.core,
                atol=1e-10,
            )

    def test_cache_ops_race_free_under_churn(self):
        metas = [((7, 6, 5), (2, 2, 2)), ((6, 6, 6), (3, 3, 3))]
        errors: list = []
        with TuckerSession(backend="sequential", cache_size=1) as session:
            def churn(i):
                try:
                    dims, core = metas[i % 2]
                    for _ in range(5):
                        session.run(
                            random_tensor(dims, seed=i),
                            core,
                            max_iters=1,
                        )
                        session.cache_info()
                        if i == 0:
                            session.clear_cache()
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=churn, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            info = session.cache_info()
        assert not errors
        assert info["size"] <= 1  # cache_size respected through the races


class TestLedgerThreadSafety:
    def test_concurrent_add_loses_nothing(self):
        ledger = StatsLedger()
        n_threads, per_thread = 8, 200

        def add(t):
            for i in range(per_thread):
                ledger.add_comm("send", f"t{t}:e{i}", 1, 1.0, 0.0)

        threads = [
            threading.Thread(target=add, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert len(ledger) == n_threads * per_thread
        assert ledger.volume() == float(n_threads * per_thread)

    def test_mark_since_with_concurrent_writers(self):
        ledger = StatsLedger()
        ledger.add_comm("send", "before", 1, 1.0, 0.0)
        mark = ledger.mark()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                ledger.add_comm("send", f"bg:{i}", 1, 1.0, 0.0)
                i += 1

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(50):
                tail = ledger.since(mark)
                assert all(r.tag != "before" for r in tail.records)
        finally:
            stop.set()
            t.join(30)


class TestRunManyPrefetch:
    def _paths(self, tmp_path, n=3):
        paths = []
        for i in range(n):
            p = tmp_path / f"t{i}.npy"
            np.save(p, random_tensor((8, 7, 6), seed=i))
            paths.append(p)
        return paths

    def test_prefetch_preserves_results(self, tmp_path):
        paths = self._paths(tmp_path)
        arrays = lambda: [np.load(p, mmap_mode="r") for p in paths]  # noqa: E731
        with TuckerSession(backend="sequential") as session:
            warm = session.run_many(arrays(), (2, 2, 2), max_iters=2)
        with TuckerSession(backend="sequential") as session:
            cold = session.run_many(
                arrays(), (2, 2, 2), max_iters=2, prefetch=False
            )
        for a, b in zip(warm.results, cold.results):
            np.testing.assert_allclose(
                a.decomposition.core, b.decomposition.core, atol=0
            )

    def test_prefetch_counters_record_memmap_bytes(self, tmp_path):
        paths = self._paths(tmp_path)
        arrays = [np.load(p, mmap_mode="r") for p in paths]
        with TuckerSession(backend="sequential") as session:
            session.run_many(arrays, (2, 2, 2), max_iters=1)
            counters = session.metrics.snapshot()["counters"]
        # Items 2..n are visible as "next" while their predecessors run.
        assert counters.get("prefetch_items", 0.0) >= 1.0
        assert counters.get("prefetch_bytes", 0.0) > 0.0

    def test_resident_arrays_skip_prefetch(self):
        tensors = [random_tensor((7, 6, 5), seed=i) for i in range(3)]
        with TuckerSession(backend="sequential") as session:
            batch = session.run_many(tensors, (2, 2, 2), max_iters=1)
            counters = session.metrics.snapshot()["counters"]
        assert batch.n_items == 3
        assert counters.get("prefetch_bytes", 0.0) == 0.0


class TestPrefetcherUnit:
    def test_schedule_and_close_idempotent(self, tmp_path):
        p = tmp_path / "x.npy"
        np.save(p, np.ones((64, 64)))
        prefetcher = Prefetcher()
        prefetcher.schedule(np.load(p, mmap_mode="r"))
        prefetcher.schedule(None)  # no-op
        prefetcher.schedule(np.ones((4, 4)))  # resident: skipped
        prefetcher.close()
        prefetcher.close()  # idempotent
        assert prefetcher.bytes_warmed == 64 * 64 * 8
        assert prefetcher.items_warmed == 1

    def test_never_started_close_is_cheap(self):
        prefetcher = Prefetcher()
        prefetcher.close()
        assert prefetcher.bytes_warmed == 0


class TestSafeRate:
    def test_normal_rate(self):
        assert safe_rate(10, 2.0) == 5.0

    @pytest.mark.parametrize("seconds", [0.0, -1.0, float("nan"), float("inf")])
    def test_degenerate_durations_rate_zero(self, seconds):
        assert safe_rate(10, seconds) == 0.0

    def test_zero_count(self):
        assert safe_rate(0, 5.0) == 0.0
