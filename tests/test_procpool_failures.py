"""Crash-injection tests: ProcessPoolBackend must survive worker failure.

A worker exception (or a worker dying outright) mid-fan-out must leave the
backend healthy: every shared-memory segment that will never reach the
caller is unlinked (``/dev/shm`` stays clean) and the pool either remains
usable or is cleanly dropped and transparently rebuilt on the next kernel.
"""

import gc
import os
import sys

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

import repro.backends.procpool as procpool_mod
from repro.backends.procpool import ProcessPoolBackend
from repro.tensor.ttm import ttm

pytestmark = pytest.mark.skipif(
    sys.platform != "linux" or not os.path.isdir("/dev/shm"),
    reason="failure injection relies on Linux fork workers and /dev/shm",
)


def shm_entries() -> set[str]:
    return set(os.listdir("/dev/shm"))


def _exit_hard(*args, **kwargs):  # pragma: no cover - runs in a worker
    os._exit(13)


def _gram_bomb(*args, **kwargs):  # pragma: no cover - runs in a worker
    raise RuntimeError("injected gram failure")


_REAL_NORM = procpool_mod._norm_block


def _norm_bomb(name, shape, dtype, lo, hi):  # pragma: no cover - worker
    """Kill the worker only for tensors carrying the poison marker."""
    shm = procpool_mod.shared_memory.SharedMemory(name=name)
    try:
        flat = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)
        poisoned = float(flat.reshape(-1)[0]) > 100.0
        del flat
    finally:
        shm.close()
    if poisoned:
        os._exit(13)
    return _REAL_NORM(name, shape, dtype, lo, hi)


@pytest.fixture
def tensor():
    return np.random.default_rng(0).standard_normal((8, 6, 5))


class TestWorkerException:
    def test_ttm_failure_unlinks_output_and_pool_survives(self, tensor):
        backend = ProcessPoolBackend(n_workers=2)
        try:
            handle = backend.distribute(tensor, ())
            before = shm_entries()
            bad = np.zeros((3, 99))  # wrong inner dim: every block task raises
            with pytest.raises(ValueError):
                backend.ttm(handle, bad, 0)
            gc.collect()
            # The preallocated output segment was unlinked on failure.
            assert shm_entries() - before == set()
            # The pool survived the (non-fatal) worker exception...
            assert backend._pool is not None
            # ...and the very next kernel still produces correct numbers.
            good = np.random.default_rng(1).standard_normal((3, 8))
            out = backend.gather(backend.ttm(handle, good, 0))
            np.testing.assert_allclose(out, ttm(tensor, good, 0), atol=1e-12)
        finally:
            backend.close()

    def test_gram_failure_leaves_backend_usable(self, tensor, monkeypatch):
        # Patch before the pool ever forks so workers inherit the bomb.
        real = procpool_mod._gram_block
        monkeypatch.setattr(procpool_mod, "_gram_block", _gram_bomb)
        backend = ProcessPoolBackend(n_workers=2)
        try:
            handle = backend.distribute(tensor, ())
            before = shm_entries()
            with pytest.raises(RuntimeError, match="injected"):
                backend.leading_factor(handle, 0, 3)
            monkeypatch.setattr(procpool_mod, "_gram_block", real)
            gc.collect()
            assert shm_entries() - before == set()
            # The pool is poisoned (forked workers keep the bomb), so drop
            # it; the backend reopens a clean pool on the next kernel.
            backend.close()
            factor = backend.leading_factor(handle, 0, 3)
            assert factor.shape == (8, 3)
        finally:
            backend.close()


class TestGatherViewLifetime:
    def test_gather_view_outlives_handle(self, tensor):
        # Regression: numpy >= 2 ndarrays do not pin the exporting
        # memoryview, so a handle-tied finalizer would unmap the segment
        # under a still-referenced gather() view (a parent segfault).
        # The finalizer is tied to the view: reads stay valid, and the
        # segment is unlinked only once the view itself dies.
        backend = ProcessPoolBackend(n_workers=2)
        try:
            handle = backend.distribute(tensor, ())
            before = shm_entries()
            matrix = np.random.default_rng(3).standard_normal((3, 8))
            res = backend.gather(backend.ttm(handle, matrix, 0))
            gc.collect()  # the ttm handle is gone; the view must survive
            np.testing.assert_allclose(res, ttm(tensor, matrix, 0), atol=1e-12)
            del res
            gc.collect()
            assert shm_entries() - before == set()
        finally:
            backend.close()


class TestWorkerDeath:
    def test_dead_worker_resets_pool_and_cleans_shm(self, tensor):
        backend = ProcessPoolBackend(n_workers=2)
        original = procpool_mod._ttm_block
        # Patch before the first kernel: the pool forks lazily, so the
        # workers inherit the hard-exit stub.
        procpool_mod._ttm_block = _exit_hard
        try:
            handle = backend.distribute(tensor, ())
            before = shm_entries()
            matrix = np.random.default_rng(2).standard_normal((3, 8))
            with pytest.raises(BrokenProcessPool):
                backend.ttm(handle, matrix, 0)
            gc.collect()
            # No leaked segments, and the broken pool was dropped.
            assert shm_entries() - before == set()
            assert backend._pool is None
        finally:
            procpool_mod._ttm_block = original
        try:
            # A fresh pool (forked with the real task function) recovers.
            out = backend.gather(backend.ttm(handle, matrix, 0))
            np.testing.assert_allclose(out, ttm(tensor, matrix, 0), atol=1e-12)
        finally:
            backend.close()

    def test_session_batch_survives_pool_recovery(self, tensor):
        """A run_many stream keeps going after the pool is rebuilt."""
        from repro.session import TuckerSession

        # The bomb is data-dependent: only the marked tensor kills its
        # worker, so the rebuilt pool (which forks the same patched
        # module) decomposes the healthy items normally.
        poisoned = tensor.copy()
        poisoned.flat[0] = 1e6
        original = procpool_mod._norm_block
        procpool_mod._norm_block = _norm_bomb
        backend = ProcessPoolBackend(n_workers=2)
        session = TuckerSession(backend=backend)
        try:
            before = shm_entries()
            batch = session.run_many(
                [poisoned, tensor + 1.0],
                (3, 3, 2),
                planner="optimal",
                n_procs=2,
                max_iters=1,
                on_error="skip",
            )
            gc.collect()
            assert shm_entries() - before == set()
            assert len(batch.failures) == 1
            assert batch.failures[0].index == 0
            # Item 1 ran on a freshly rebuilt pool and succeeded.
            assert batch.n_items == 1
            assert batch.items[0].index == 1
            assert np.isfinite(batch.items[0].error)
        finally:
            procpool_mod._norm_block = original
            session.close()


class TestTracedCrash:
    def test_traced_batch_keeps_spans_across_worker_death(self, tensor):
        """Crash forensics: a traced stream retains the failed item's
        partial spans (marked ``error``) and the healthy items' worker
        spans on the rebuilt pool."""
        from repro.session import TuckerSession

        poisoned = tensor.copy()
        poisoned.flat[0] = 1e6
        original = procpool_mod._norm_block
        procpool_mod._norm_block = _norm_bomb
        backend = ProcessPoolBackend(n_workers=2)
        session = TuckerSession(backend=backend, trace=True)
        try:
            batch = session.run_many(
                [poisoned, tensor + 1.0],
                (3, 3, 2),
                planner="optimal",
                n_procs=2,
                max_iters=1,
                on_error="skip",
            )
            assert len(batch.failures) == 1
            assert batch.n_items == 1
            trace = batch.trace
            assert trace is not None
            # Two run roots survive in the batch timeline: the failed
            # item's partial trace and the successful item's full one.
            runs = trace.find("run")
            assert len(runs) == 2
            assert any("error" in s.attrs for s in runs)
            # The healthy item's fan-out produced worker spans from the
            # rebuilt pool.
            workers = trace.by_kind("worker")
            assert workers
            for w in workers:
                assert w.seconds >= 0
            # The observer never leaks past the crashed run.
            assert backend.ledger.observer is None
        finally:
            procpool_mod._norm_block = original
            session.close()

    def test_untraced_crash_leaves_tracer_empty(self, tensor):
        from repro.session import TuckerSession

        poisoned = tensor.copy()
        poisoned.flat[0] = 1e6
        original = procpool_mod._norm_block
        procpool_mod._norm_block = _norm_bomb
        backend = ProcessPoolBackend(n_workers=2)
        session = TuckerSession(backend=backend)
        try:
            batch = session.run_many(
                [poisoned], (3, 3, 2), planner="optimal", n_procs=2,
                max_iters=1, on_error="skip",
            )
            assert len(batch.failures) == 1
            assert batch.trace is None
            assert session.tracer.mark() == 0
            assert session.last_error_trace is None
        finally:
            procpool_mod._norm_block = original
            session.close()
