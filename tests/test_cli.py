"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.planner import Plan


class TestPlanCommand:
    def test_plan_with_dims(self, capsys):
        rc = main(
            [
                "plan",
                "--dims", "24,20,16,10",
                "--core", "6,10,4,5",
                "-p", "8",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "flops" in out and "initial grid" in out
        assert "24x20x16x10 -> 6x10x4x5" in out

    def test_plan_with_real_tensor(self, capsys):
        rc = main(["plan", "--tensor", "SP", "-p", "32", "--show-tree"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "500x500x500x11x10" in out
        assert "F~0" in out  # tree rendering

    def test_plan_writes_json(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        rc = main(
            [
                "plan",
                "--dims", "12,10,8",
                "--core", "4,3,2",
                "-p", "4",
                "--out", str(path),
            ]
        )
        assert rc == 0
        plan = Plan.from_json(path.read_text())
        assert plan.meta.dims == (12, 10, 8)
        json.loads(path.read_text())  # valid JSON

    def test_plan_requires_metadata(self):
        with pytest.raises(SystemExit):
            main(["plan", "-p", "4"])

    def test_bad_dims_format(self):
        with pytest.raises(SystemExit):
            main(["plan", "--dims", "a,b", "--core", "1,1", "-p", "2"])


class TestPsiCommand:
    def test_table1_row(self, capsys):
        rc = main(["psi", "-p", "32", "--n-min", "5", "--n-max", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        for value in ("126", "252", "462", "792", "1287", "2002"):
            assert value in out


class TestModelCommand:
    def test_model_real_tensor(self, capsys):
        rc = main(["model", "--tensor", "HCCI", "-p", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        for label in ("CK", "CH", "B", "OPT-S", "OPT"):
            assert label in out
        assert "total s" in out


class TestSuiteCommand:
    def test_suite_stats(self, capsys):
        rc = main(["suite", "--ndim", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "10312" in out
        assert "HCCI" in out
