"""Tests for the exhaustive tree enumerator."""

from repro.core.cost import tree_cost
from repro.core.enumerate_trees import brute_force_optimal_cost, enumerate_trees
from repro.core.meta import TensorMeta
from repro.core.trees import balanced_tree, chain_tree


class TestEnumeration:
    def test_n1(self):
        trees = list(enumerate_trees(1))
        assert len(trees) == 1
        assert trees[0].n_ttm_ops == 0

    def test_n2_single_tree(self):
        # only one structure: two independent single-TTM chains
        trees = list(enumerate_trees(2))
        assert len(trees) == 1
        assert trees[0].n_ttm_ops == 2

    def test_all_valid_and_distinct(self):
        seen = set()
        for t in enumerate_trees(3):
            t.validate()
            key = str(sorted(str(t.to_dict())))
            key = str(t.to_dict())
            assert key not in seen
            seen.add(key)
        assert len(seen) >= 6  # several distinct 3-mode trees exist

    def test_contains_chain_and_balanced_costs(self):
        # enumeration must reach cost levels of known constructions
        m = TensorMeta(dims=(8, 6, 4, 9), core=(2, 3, 2, 3))
        costs = {tree_cost(t, m) for t in enumerate_trees(4)}
        assert tree_cost(chain_tree(4), m) in costs
        assert tree_cost(balanced_tree(4), m) in costs

    def test_limit_respected(self):
        assert len(list(enumerate_trees(4, limit=10))) == 10


class TestBruteForce:
    def test_minimum_over_enumeration(self):
        m = TensorMeta(dims=(9, 6, 4), core=(3, 2, 2))
        best = brute_force_optimal_cost(m)
        assert best == min(tree_cost(t, m) for t in enumerate_trees(3))
