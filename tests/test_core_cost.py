"""Tests for the FLOP cost model (paper section 3.1 / Figure 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cost import node_costs, normalized_tree_cost, tree_cost
from repro.core.meta import TensorMeta
from repro.core.trees import chain_tree, balanced_tree


class TestNodeCosts:
    def test_two_mode_chain_by_hand(self):
        # T: 10x20, core 2x4. Chain tree: two chains of one TTM each.
        # Chain for F~1: multiply mode 0: cost K0*|T| = 2*200 = 400,
        # output card = 2*20 = 40. Chain for F~0: K1*|T| = 4*200 = 800.
        m = TensorMeta(dims=(10, 20), core=(2, 4))
        t = chain_tree(2)
        assert tree_cost(t, m) == 400 + 800

    def test_card_flow_top_down(self):
        m = TensorMeta(dims=(8, 6, 4), core=(2, 3, 2))
        t = chain_tree(3)
        costs = node_costs(t, m)
        for node in t.internal_nodes():
            parent = t.parent(node)
            assert costs[node.uid]["in_card"] == costs[parent.uid]["out_card"]
            assert (
                costs[node.uid]["flops"]
                == m.core[node.mode] * costs[node.uid]["in_card"]
            )

    def test_root_and_leaf_have_zero_flops(self):
        m = TensorMeta(dims=(8, 6), core=(2, 3))
        t = chain_tree(2)
        costs = node_costs(t, m)
        assert costs[t.root.uid]["flops"] == 0
        for leaf in t.leaves():
            assert costs[leaf.uid]["flops"] == 0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="modes"):
            node_costs(chain_tree(3), TensorMeta(dims=(4, 4), core=(2, 2)))


class TestTreeCost:
    def test_normalized(self):
        m = TensorMeta(dims=(10, 20), core=(2, 4))
        t = chain_tree(2)
        assert normalized_tree_cost(t, m) == pytest.approx(1200 / 200)

    def test_chain_ordering_changes_cost(self):
        # putting the highly-compressing cheap mode first must help
        m = TensorMeta(dims=(100, 10), core=(2, 9))
        cheap_first = chain_tree(2)  # order (0, 1): irrelevant for N=2
        assert tree_cost(cheap_first, m) > 0

    def test_balanced_cheaper_than_chain_generic(self):
        # reuse should pay off on a generic 5-D instance
        m = TensorMeta(dims=(20, 20, 20, 20, 20), core=(4, 4, 4, 4, 4))
        assert tree_cost(balanced_tree(5), m) < tree_cost(chain_tree(5), m)

    @given(st.integers(min_value=0, max_value=999))
    def test_cost_is_positive_and_exact_int(self, seed):
        import random

        r = random.Random(seed)
        dims = tuple(r.choice([4, 6, 8, 12]) for _ in range(4))
        core = tuple(max(1, d // r.choice([2, 3, 4])) for d in dims)
        m = TensorMeta(dims=dims, core=core)
        c = tree_cost(chain_tree(4), m)
        assert isinstance(c, int) and c > 0

    def test_figure4_style_accounting(self):
        # Verify the "cost = K_n x parent card, card shrinks by h_n" rule on
        # a two-level path: root -> x0 -> x1 -> leaf2 (N=3 chain for F~2).
        m = TensorMeta(dims=(10, 8, 6), core=(5, 2, 3))
        t = chain_tree(3)  # first chain: x0 -> x1 -> F~2? natural order:
        # chains are per target mode; find the chain ending in F~2
        costs = node_costs(t, m)
        # locate leaf 2 and walk up
        leaf2 = next(l for l in t.leaves() if l.mode == 2)
        x1 = t.parent(leaf2)
        x0 = t.parent(x1)
        assert (x0.mode, x1.mode) == (0, 1)
        assert costs[x0.uid]["flops"] == 5 * 480  # K0 * |T|
        assert costs[x0.uid]["out_card"] == 5 * 8 * 6
        assert costs[x1.uid]["flops"] == 2 * 240
        assert costs[x1.uid]["out_card"] == 5 * 2 * 6
