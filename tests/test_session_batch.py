"""Tests for batched streaming decomposition: ``TuckerSession.run_many``.

Covers the acceptance criteria of the batching layer — N same-shape
tensors compile exactly one plan and reuse one worker pool while matching
per-item sequential results to 1e-10 — plus input handling (arrays,
``.npy`` paths, generators), the in-flight window's plan-key grouping,
failure streaming, per-item adaptive backend re-selection, per-run ledger
scoping on reused backends, and plan-cache key properties.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import ThreadedBackend
from repro.core.meta import TensorMeta
from repro.session import (
    BatchResult,
    TuckerSession,
    plan_cache_key,
)
from repro.tensor.random import low_rank_tensor

SHAPE_A = (12, 10, 8)
SHAPE_B = (10, 8, 6)
CORE_A = (4, 3, 3)
CORE_B = (3, 3, 2)


def tensors_a(n, start=0):
    return [
        low_rank_tensor(SHAPE_A, CORE_A, noise=0.1, seed=start + s)
        for s in range(n)
    ]


def tensors_b(n, start=100):
    return [
        low_rank_tensor(SHAPE_B, CORE_B, noise=0.1, seed=start + s)
        for s in range(n)
    ]


class TestAcceptance:
    def test_one_plan_one_pool_matches_sequential(self, monkeypatch):
        """N same-shape tensors: 1 compile, N-1 hits, one pool, 1e-10."""
        import repro.backends.procpool as procpool_mod
        from repro.backends.procpool import ProcessPoolBackend

        created = []
        real_executor = procpool_mod.ProcessPoolExecutor

        class CountingExecutor(real_executor):
            def __init__(self, *args, **kwargs):
                created.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(
            procpool_mod, "ProcessPoolExecutor", CountingExecutor
        )
        tensors = tensors_a(5)
        backend = ProcessPoolBackend(n_workers=2)
        with TuckerSession(backend=backend) as session:
            batch = session.run_many(
                tensors, CORE_A,
                planner="optimal", n_procs=2, max_iters=2, tol=0.0,
            )
        assert isinstance(batch, BatchResult)
        assert batch.n_items == 5 and not batch.failures
        assert batch.plans_compiled == 1
        assert batch.cache_hits == 4
        assert [item.from_cache for item in batch.items] == [
            False, True, True, True, True
        ]
        # exactly one worker pool served the whole batch
        assert len(created) == 1
        # per-item numerics match a fresh sequential session to 1e-10
        for tensor, item in zip(tensors, batch.items):
            ref = TuckerSession().run(
                tensor, CORE_A,
                planner="optimal", n_procs=2, max_iters=2, tol=0.0,
            )
            diff = np.max(np.abs(
                item.result.decomposition.core - ref.decomposition.core
            ))
            assert diff < 1e-10
            assert item.error == pytest.approx(ref.error, abs=1e-10)

    def test_throughput_and_order(self):
        session = TuckerSession()
        batch = session.run_many(
            tensors_a(3), CORE_A, planner="optimal", n_procs=2, max_iters=1
        )
        assert [item.index for item in batch.items] == [0, 1, 2]
        assert batch.items_per_second > 0
        assert batch.seconds > 0
        stats = batch.stats()
        assert stats["n_items"] == 3.0
        assert stats["plans_compiled"] == 1.0
        assert stats["flops"] > 0

    def test_second_batch_is_all_cache_hits(self):
        session = TuckerSession()
        session.run_many(
            tensors_a(2), CORE_A, planner="optimal", n_procs=2, max_iters=1
        )
        batch = session.run_many(
            tensors_a(2, start=7), CORE_A,
            planner="optimal", n_procs=2, max_iters=1,
        )
        assert batch.plans_compiled == 0
        assert batch.cache_hits == 2


class TestInputKinds:
    def test_paths_arrays_and_generators_mix(self, tmp_path):
        arrays = tensors_a(3)
        path = tmp_path / "t0.npy"
        np.save(path, arrays[0])

        def stream():
            yield str(path)          # a path string
            yield path               # an os.PathLike
            yield arrays[2]          # an in-memory array

        session = TuckerSession()
        batch = session.run_many(
            stream(), CORE_A, planner="optimal", n_procs=2, max_iters=1
        )
        assert batch.n_items == 3
        assert batch.items[0].source == str(path)
        assert batch.items[1].source == str(path)
        assert batch.items[2].source == "item[2]"
        # the two loads of the same file agree exactly
        assert batch.items[0].error == batch.items[1].error

    def test_callable_core_dims_for_heterogeneous_stream(self):
        session = TuckerSession()
        batch = session.run_many(
            tensors_a(1) + tensors_b(1),
            lambda shape: CORE_A if shape == SHAPE_A else CORE_B,
            planner="optimal", n_procs=2, max_iters=1,
        )
        assert batch.plans_compiled == 2
        assert batch.items[0].result.plan.meta.core == CORE_A
        assert batch.items[1].result.plan.meta.core == CORE_B

    def test_bad_item_type_raises(self):
        session = TuckerSession()
        with pytest.raises(TypeError, match="ndarray or a .npy path"):
            session.run_many([42], CORE_A)

    def test_core_dims_required(self):
        with pytest.raises(ValueError, match="core_dims is required"):
            TuckerSession().run_many(tensors_a(1))

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            TuckerSession().run_many(tensors_a(1), CORE_A, on_error="ignore")

    def test_bad_max_in_flight_rejected(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            TuckerSession().run_many(tensors_a(1), CORE_A, max_in_flight=0)

    def test_empty_stream_yields_empty_batch(self):
        batch = TuckerSession().run_many([], CORE_A)
        assert batch.n_items == 0 and not batch.failures
        assert batch.items_per_second == 0.0 or batch.seconds > 0


class TestWindowGrouping:
    def _interleaved(self):
        a = tensors_a(2)
        b = tensors_b(2)
        return [a[0], b[0], a[1], b[1]]

    def test_window_groups_by_plan_key(self):
        session = TuckerSession()
        batch = session.run_many(
            self._interleaved(),
            lambda shape: CORE_A if shape == SHAPE_A else CORE_B,
            planner="optimal", n_procs=2, max_iters=1, max_in_flight=4,
        )
        # items stay in input order; seq records execution order:
        # both A items ran first, then both B items.
        seqs = {item.index: item.seq for item in batch.items}
        assert seqs == {0: 0, 2: 1, 1: 2, 3: 3}
        assert batch.plans_compiled == 2 and batch.cache_hits == 2

    def test_max_in_flight_one_preserves_arrival_order(self):
        session = TuckerSession()
        batch = session.run_many(
            self._interleaved(),
            lambda shape: CORE_A if shape == SHAPE_A else CORE_B,
            planner="optimal", n_procs=2, max_iters=1, max_in_flight=1,
        )
        assert all(item.seq == item.index for item in batch.items)


class TestOnError:
    def test_skip_records_failures_and_streams_on(self, tmp_path):
        bad = tmp_path / "broken.npy"
        bad.write_bytes(b"not an npy")
        inputs = [tensors_a(1)[0], str(bad), tensors_a(1, start=5)[0]]
        session = TuckerSession()
        batch = session.run_many(
            inputs, CORE_A,
            planner="optimal", n_procs=2, max_iters=1, on_error="skip",
        )
        assert batch.n_items == 2
        assert [item.index for item in batch.items] == [0, 2]
        assert len(batch.failures) == 1
        failure = batch.failures[0]
        assert failure.index == 1
        assert failure.source == str(bad)
        assert failure.kind  # exception type recorded

    def test_skip_records_run_failures_too(self):
        # The second item's core is invalid for its shape: the *run*
        # fails (not materialization), and the stream keeps going.
        inputs = tensors_a(1) + tensors_b(1)
        session = TuckerSession()
        batch = session.run_many(
            inputs,
            lambda shape: (20, 3, 3) if shape == SHAPE_B else CORE_A,
            planner="optimal", n_procs=2, max_iters=1, on_error="skip",
        )
        assert batch.n_items == 1
        assert len(batch.failures) == 1
        assert batch.failures[0].index == 1
        assert "exceeds" in batch.failures[0].error

    def test_raise_propagates_immediately(self, tmp_path):
        bad = tmp_path / "broken.npy"
        bad.write_bytes(b"not an npy")
        session = TuckerSession()
        with pytest.raises(ValueError):
            session.run_many([str(bad)], CORE_A)


class TestAutoReselection:
    def _profile(self):
        # Crafted so selection is machine-independent: sequential is slow
        # but startup-free, threaded is instant but pays startup+dispatch,
        # procpool is never competitive.
        return {
            "version": 1,
            "backends": {
                "sequential": {"rate": 1.0e6},
                "threaded": {
                    "rate": 1.0e18, "startup": 0.05, "per_task": 1.0e-2,
                },
                "procpool": {"rate": 1.0, "startup": 1.0e6},
            },
        }

    def test_backend_reselected_per_item(self, monkeypatch):
        import repro.backends.select as select_mod

        monkeypatch.setattr(select_mod.os, "cpu_count", lambda: 8)
        small = low_rank_tensor((6, 5, 4), (2, 2, 2), noise=0.1, seed=0)
        big = low_rank_tensor((48, 40, 32), (8, 6, 5), noise=0.05, seed=1)
        with TuckerSession(
            backend="auto", calibration=self._profile()
        ) as session:
            batch = session.run_many(
                [small, big, small],
                lambda shape: (2, 2, 2) if shape == (6, 5, 4) else (8, 6, 5),
                planner="optimal", n_procs=2, max_iters=1, max_in_flight=1,
            )
        backends = [item.backend for item in batch.items]
        assert backends == ["sequential", "threaded", "sequential"]
        assert all(item.result.auto_selected for item in batch.items)
        assert all(item.result.selection_reason for item in batch.items)

    def test_warm_pool_reused_across_auto_items(self, monkeypatch):
        import repro.backends.select as select_mod

        monkeypatch.setattr(select_mod.os, "cpu_count", lambda: 8)
        big = [
            low_rank_tensor((48, 40, 32), (8, 6, 5), noise=0.05, seed=s)
            for s in range(2)
        ]
        with TuckerSession(
            backend="auto", calibration=self._profile()
        ) as session:
            batch = session.run_many(
                big, (8, 6, 5), planner="optimal", n_procs=2, max_iters=1
            )
            assert [item.backend for item in batch.items] == [
                "threaded", "threaded"
            ]
            # one cached threaded instance serves both items
            assert list(session._backends) == [("threaded", 2)]


class TestLedgerScoping:
    """Satellite regression: reused backends must not inflate reports."""

    def test_identical_runs_report_identical_volumes(self):
        backend = ThreadedBackend(n_workers=2)
        session = TuckerSession(backend=backend)
        t = tensors_a(1)[0]
        kwargs = dict(planner="optimal", n_procs=2, max_iters=2, tol=0.0)
        r1 = session.run(t, CORE_A, **kwargs)
        r2 = session.run(t, CORE_A, **kwargs)
        for key in ("comm_volume", "flops", "events"):
            assert r1.stats[key] == r2.stats[key], key
        # the backend's own ledger stays cumulative (documented)
        assert backend.stats()["events"] == r1.stats["events"] * 2

    def test_simcluster_comm_volume_scoped_per_run(self):
        session = TuckerSession(backend="simcluster", n_procs=4)
        t = tensors_a(1)[0]
        kwargs = dict(planner="optimal", n_procs=4, max_iters=2, tol=0.0)
        r1 = session.run(t, CORE_A, **kwargs)
        r2 = session.run(t, CORE_A, **kwargs)
        assert r1.stats["comm_volume"] > 0
        # the old bug: r2 reported r1's volume on top of its own
        assert r2.stats["comm_volume"] == r1.stats["comm_volume"]
        assert session.backend.stats()["comm_volume"] == pytest.approx(
            r1.stats["comm_volume"] + r2.stats["comm_volume"]
        )

    def test_batch_ledger_is_sum_of_item_ledgers(self):
        session = TuckerSession()
        batch = session.run_many(
            tensors_a(3), CORE_A, planner="optimal", n_procs=2, max_iters=1
        )
        total = sum(item.result.stats["flops"] for item in batch.items)
        assert batch.stats()["flops"] == pytest.approx(total)
        assert batch.stats()["events"] == sum(
            item.result.stats["events"] for item in batch.items
        )

    def test_stats_since_scopes_the_protocol_summary(self):
        backend = ThreadedBackend(n_workers=2)
        session = TuckerSession(backend=backend)
        t = tensors_a(1)[0]
        kwargs = dict(planner="optimal", n_procs=2, max_iters=1)
        session.run(t, CORE_A, **kwargs)
        mark = backend.mark_stats()
        res = session.run(t, CORE_A, **kwargs)
        since = backend.stats_since(mark)
        # the protocol summary since the mark is exactly this run's stats
        assert since == res.stats
        assert since["events"] == backend.stats()["events"] / 2
        backend.close()

    def test_sthosvd_and_hooi_results_carry_scoped_ledgers(self):
        from repro.hooi.sthosvd import sthosvd

        session = TuckerSession()
        t = tensors_a(1)[0]
        res = session.sthosvd(t, CORE_A, n_procs=2, planner="optimal")
        assert res.stats["flops"] > 0
        init = sthosvd(t, CORE_A)
        hres = session.hooi(t, init, n_procs=2, planner="optimal", max_iters=1)
        assert hres.stats["flops"] > 0
        # scoped: the hooi ledger excludes the earlier sthosvd records
        assert hres.stats["events"] < session.backend.stats()["events"]


# ------------------------------------------------------------------ #
# plan-cache keys (satellite: collision coverage)
# ------------------------------------------------------------------ #

dims_and_core = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.tuples(
        st.tuples(*[st.integers(min_value=1, max_value=32)] * n),
        st.tuples(*[st.integers(min_value=1, max_value=32)] * n),
    ).map(lambda dc: (dc[0], tuple(min(k, d) for k, d in zip(dc[1], dc[0]))))
)
planner_keys = st.sampled_from(
    ["portfolio", "optimal", "chain-k", "optimal:dynamic"]
)
dtypes = st.sampled_from([np.float32, np.float64])


class TestPlanCacheKey:
    @settings(max_examples=120, deadline=None)
    @given(shape=dims_and_core, procs=st.integers(1, 64),
           planner=planner_keys, dtype=dtypes)
    def test_key_round_trips_every_component(
        self, shape, procs, planner, dtype
    ):
        dims, core = shape
        meta = TensorMeta(dims=dims, core=core)
        key = plan_cache_key(meta, procs, planner, dtype)
        # the key is exactly its components — nothing collapsed or lost
        assert key == (dims, core, procs, planner, np.dtype(dtype).name)
        assert hash(key) == hash(plan_cache_key(meta, procs, planner, dtype))

    @settings(max_examples=80, deadline=None)
    @given(shape=dims_and_core, procs=st.integers(1, 64),
           planner=planner_keys, dtype=dtypes)
    def test_any_component_change_changes_the_key(
        self, shape, procs, planner, dtype
    ):
        dims, core = shape
        meta = TensorMeta(dims=dims, core=core)
        key = plan_cache_key(meta, procs, planner, dtype)
        assert key != plan_cache_key(meta, procs + 1, planner, dtype)
        assert key != plan_cache_key(meta, procs, planner + "-x", dtype)
        other_dtype = np.float32 if np.dtype(dtype) == np.float64 else np.float64
        assert key != plan_cache_key(meta, procs, planner, other_dtype)
        bigger = TensorMeta(dims=tuple(d + 1 for d in dims), core=core)
        assert key != plan_cache_key(bigger, procs, planner, dtype)

    def test_same_meta_different_knobs_compile_distinct_plans(self):
        meta = TensorMeta(dims=(12, 10, 8), core=(4, 3, 3))
        session = TuckerSession()
        base = session.compile(meta, 2, planner="optimal")
        by_procs = session.compile(meta, 4, planner="optimal")
        by_planner = session.compile(meta, 2, planner="chain-k")
        by_dtype = session.compile(meta, 2, planner="optimal",
                                   dtype=np.float32)
        compiled = {id(base), id(by_procs), id(by_planner), id(by_dtype)}
        assert len(compiled) == 4  # four distinct CompiledPlans
        info = session.cache_info()
        assert info["misses"] == 4 and info["size"] == 4
        # and the originals are all still cached (hits, not recompiles)
        assert session.compile(meta, 2, planner="optimal") is base
        assert session.cache_info()["hits"] == 1


class TestLazyPathLoading:
    """Regression: ``.npy`` path items must never be eagerly materialized.

    ``run_many`` used to ``np.load`` each path fully before windowing —
    every windowed (and even every *skipped*) item paid a whole-tensor
    read. Path items now open as lazy memory mappings
    (``mmap_mode="r"``), so the window holds page mappings, not copies.
    """

    def _save_batch(self, tmp_path, n=3):
        paths = []
        for i, t in enumerate(tensors_a(n)):
            path = tmp_path / f"t{i}.npy"
            np.save(path, t)
            paths.append(str(path))
        return paths

    def test_materialize_item_returns_lazy_mapping(self, tmp_path):
        from repro.session import _materialize_item

        [path] = self._save_batch(tmp_path, n=1)
        item = _materialize_item(path, 0, CORE_A, None)
        assert isinstance(item.array, np.memmap)
        assert item.array.shape == SHAPE_A

    def test_every_path_load_is_mmap_mode_r(self, tmp_path, monkeypatch):
        paths = self._save_batch(tmp_path)
        seen = []
        real_load = np.load

        def spy(path, *args, **kwargs):
            seen.append(kwargs.get("mmap_mode"))
            return real_load(path, *args, **kwargs)

        monkeypatch.setattr(np, "load", spy)
        session = TuckerSession(backend="sequential")
        batch = session.run_many(
            paths, CORE_A, planner="optimal", n_procs=2, max_iters=1,
            max_in_flight=3,
        )
        assert batch.n_items == len(paths)
        assert seen == ["r"] * len(paths)  # no eager full-copy load

    def test_skipped_items_are_not_materialized(self, tmp_path, monkeypatch):
        """A failing item in the window never pays a full read either."""
        paths = self._save_batch(tmp_path, n=2)
        bad = tmp_path / "bad.npy"
        bad.write_bytes(b"\x93NUMPY not really")
        loads = []
        real_load = np.load

        def spy(path, *args, **kwargs):
            loads.append((str(path), kwargs.get("mmap_mode")))
            return real_load(path, *args, **kwargs)

        monkeypatch.setattr(np, "load", spy)
        session = TuckerSession(backend="sequential")
        batch = session.run_many(
            [paths[0], str(bad), paths[1]], CORE_A, planner="optimal",
            n_procs=2, max_iters=1, max_in_flight=3, on_error="skip",
        )
        assert batch.n_items == 2 and len(batch.failures) == 1
        assert all(mode == "r" for _, mode in loads)

    def test_lazy_batch_matches_eager_arrays(self, tmp_path):
        paths = self._save_batch(tmp_path)
        arrays = tensors_a(len(paths))
        lazy = TuckerSession(backend="sequential").run_many(
            paths, CORE_A, planner="optimal", n_procs=2, max_iters=2,
            tol=-np.inf, max_in_flight=2,
        )
        eager = TuckerSession(backend="sequential").run_many(
            arrays, CORE_A, planner="optimal", n_procs=2, max_iters=2,
            tol=-np.inf, max_in_flight=2,
        )
        for a, b in zip(lazy.results, eager.results):
            np.testing.assert_allclose(
                a.decomposition.core, b.decomposition.core, atol=1e-12
            )

    def test_per_item_storage_policy_in_batch(self, tmp_path):
        """Budgeted batch: big items spill, small ones stay resident."""
        big = low_rank_tensor((24, 20, 16), (4, 3, 3), noise=0.1, seed=5)
        small = low_rank_tensor((8, 6, 5), (3, 2, 2), noise=0.1, seed=6)
        budget = small.nbytes + 1  # between the two sizes
        session = TuckerSession(backend="sequential")
        batch = session.run_many(
            [big, small],
            lambda shape: (3, 2, 2) if shape == (8, 6, 5) else (4, 3, 3),
            planner="optimal", n_procs=2, max_iters=1,
            memory_budget=budget, spill_dir=str(tmp_path),
        )
        by_shape = {
            item.result.plan.meta.dims: item.result.storage
            for item in batch.items
        }
        assert by_shape[(24, 20, 16)] == "mmap"
        assert by_shape[(8, 6, 5)] == "memory"
        assert list(tmp_path.iterdir()) == []
