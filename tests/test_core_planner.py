"""Tests for the Planner/Plan layer (paper section 5)."""

import pytest

from repro.core.cost import tree_cost
from repro.core.meta import TensorMeta
from repro.core.planner import GRID_KINDS, TREE_KINDS, Plan, Planner


@pytest.fixture
def meta():
    return TensorMeta(dims=(50, 20, 100, 20, 50), core=(10, 16, 20, 2, 25))


class TestPlannerConfig:
    def test_rejects_unknown_tree(self):
        with pytest.raises(ValueError, match="tree"):
            Planner(4, tree="magic")

    def test_rejects_unknown_grid(self):
        with pytest.raises(ValueError, match="grid"):
            Planner(4, grid="wavy")

    def test_all_kinds_plan_successfully(self, meta):
        for tree in TREE_KINDS:
            for grid in GRID_KINDS:
                plan = Planner(8, tree=tree, grid=grid).plan(meta)
                assert plan.flops > 0
                plan.tree.validate()


class TestPlanContents:
    def test_flops_equals_tree_cost(self, meta):
        plan = Planner(8, tree="optimal", grid="static").plan(meta)
        assert plan.flops == tree_cost(plan.tree, meta)

    def test_static_plan_has_no_regrids(self, meta):
        plan = Planner(8, tree="balanced", grid="static").plan(meta)
        assert plan.regrid_volume == 0
        assert plan.scheme.regrid_nodes == ()
        assert plan.core_regrid_volume == 0
        # constant scheme
        grids = {tuple(g) for g in plan.scheme.assignment.values()}
        assert grids == {plan.initial_grid}

    def test_dynamic_no_worse_than_static(self, meta):
        static = Planner(8, tree="optimal", grid="static").plan(meta)
        dynamic = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        assert dynamic.total_volume <= static.total_volume
        assert dynamic.flops == static.flops

    def test_core_scheme_shape(self, meta):
        plan = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        assert sorted(plan.core_order) == list(range(meta.ndim))
        assert len(plan.core_scheme) == meta.ndim
        for g in plan.core_scheme:
            assert len(g) == meta.ndim

    def test_core_ordering_follows_heuristic(self, meta):
        from repro.core.ordering import h_ordering, k_ordering

        pk = Planner(8, tree="chain-k", grid="static").plan(meta)
        ph = Planner(8, tree="chain-h", grid="static").plan(meta)
        assert list(pk.core_order) == k_ordering(meta)
        assert list(ph.core_order) == h_ordering(meta)

    def test_initial_grid_is_valid(self, meta):
        import math

        for tree in ("optimal", "balanced"):
            for grid in GRID_KINDS:
                plan = Planner(8, tree=tree, grid=grid).plan(meta)
                assert math.prod(plan.initial_grid) == 8
                assert all(
                    q <= k for q, k in zip(plan.initial_grid, meta.core)
                )


class TestPlanSerialization:
    def test_roundtrip_static_and_dynamic(self, meta):
        for grid in GRID_KINDS:
            plan = Planner(8, tree="optimal", grid=grid).plan(meta)
            plan2 = Plan.from_json(plan.to_json())
            assert plan2.meta == plan.meta
            assert plan2.flops == plan.flops
            assert plan2.total_volume == plan.total_volume
            assert plan2.initial_grid == plan.initial_grid
            assert plan2.core_order == plan.core_order
            assert plan2.core_scheme == plan.core_scheme
            assert plan2.tree.to_dict() == plan.tree.to_dict()

    def test_plan_reuse_across_invocations(self, meta):
        # the paper's planner runs once; its JSON must be stable
        p1 = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        p2 = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        assert p1.to_json() == p2.to_json()
