"""Tests for Gram-based SVD helpers."""

import numpy as np
import pytest

from repro.tensor.linalg import (
    deterministic_sign,
    gram,
    leading_eigvecs,
    leading_left_singular_vectors,
)


class TestGram:
    def test_value_and_symmetry(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 20))
        g = gram(x)
        np.testing.assert_allclose(g, x @ x.T, rtol=1e-12)
        np.testing.assert_array_equal(g, g.T)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            gram(np.zeros(3))


class TestDeterministicSign:
    def test_flips_negative_dominant(self):
        v = np.array([[0.1, -0.9], [-0.9, 0.1]])
        out = deterministic_sign(v)
        np.testing.assert_allclose(out[:, 0], [-0.1, 0.9])
        np.testing.assert_allclose(out[:, 1], [0.9, -0.1])

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        v = rng.standard_normal((6, 3))
        once = deterministic_sign(v)
        np.testing.assert_array_equal(once, deterministic_sign(once))

    def test_does_not_mutate_input(self):
        v = np.array([[-1.0], [0.5]])
        _ = deterministic_sign(v)
        assert v[0, 0] == -1.0


class TestLeadingEigvecs:
    def test_recovers_known_eigenvectors(self):
        # diag matrix: leading eigvecs are unit vectors of largest entries
        d = np.diag([1.0, 5.0, 3.0, 2.0])
        v = leading_eigvecs(d, 2)
        np.testing.assert_allclose(np.abs(v[:, 0]), [0, 1, 0, 0], atol=1e-12)
        np.testing.assert_allclose(np.abs(v[:, 1]), [0, 0, 1, 0], atol=1e-12)

    def test_orthonormal(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((8, 30))
        v = leading_eigvecs(gram(x), 4)
        np.testing.assert_allclose(v.T @ v, np.eye(4), atol=1e-10)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            leading_eigvecs(np.eye(3), 0)
        with pytest.raises(ValueError):
            leading_eigvecs(np.eye(3), 4)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            leading_eigvecs(np.zeros((3, 4)), 1)


class TestLeadingLeftSingularVectors:
    def test_gram_and_svd_methods_agree_on_subspace(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((7, 40))
        k = 3
        u1 = leading_left_singular_vectors(x, k, method="gram")
        u2 = leading_left_singular_vectors(x, k, method="svd")
        # same subspace: projectors match (vectors may differ by sign only,
        # but deterministic_sign makes them equal up to tiny round-off)
        np.testing.assert_allclose(u1 @ u1.T, u2 @ u2.T, atol=1e-8)
        np.testing.assert_allclose(u1, u2, atol=1e-8)

    def test_maximizes_captured_energy(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((6, 50))
        u = leading_left_singular_vectors(x, 2)
        captured = np.linalg.norm(u.T @ x) ** 2
        # compare against 50 random orthonormal 2-frames
        for seed in range(50):
            q, _ = np.linalg.qr(
                np.random.default_rng(seed).standard_normal((6, 2))
            )
            assert captured >= np.linalg.norm(q.T @ x) ** 2 - 1e-8

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            leading_left_singular_vectors(np.eye(3), 1, method="magic")
