"""Tests for the ``repro batch`` subcommand."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.tensor.random import low_rank_tensor


@pytest.fixture
def npy_dir(tmp_path):
    """Five same-shape tensors plus one odd-shaped straggler on disk."""
    for seed in range(5):
        np.save(
            tmp_path / f"t{seed}.npy",
            low_rank_tensor((14, 12, 10), (4, 3, 3), noise=0.1, seed=seed),
        )
    np.save(
        tmp_path / "odd.npy",
        low_rank_tensor((16, 10, 8), (4, 3, 3), noise=0.1, seed=9),
    )
    return tmp_path


class TestBatchGlob:
    def test_glob_batch_human_output(self, npy_dir, capsys):
        rc = main([
            "batch",
            "--glob", str(npy_dir / "t*.npy"),
            "--core", "4,3,3",
            "--backend", "sequential",
            "-p", "2",
            "--max-iters", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "5 item(s)" in out
        assert "items/s" in out
        assert "plans compiled:     1 (4 cache hit(s))" in out

    def test_glob_no_match_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="matched no files"):
            main([
                "batch",
                "--glob", str(tmp_path / "nothing-*.npy"),
                "--core", "4,3,3",
            ])

    def test_missing_inputs_errors(self):
        with pytest.raises(SystemExit, match="provide --glob"):
            main(["batch", "--core", "4,3,3"])

    def test_missing_core_errors(self, npy_dir):
        with pytest.raises(SystemExit, match="--core"):
            main(["batch", "--glob", str(npy_dir / "t*.npy")])


class TestBatchManifest:
    def test_manifest_relative_paths_and_json(self, npy_dir, capsys):
        manifest = npy_dir / "manifest.txt"
        manifest.write_text(
            "# a comment\n"
            "t0.npy\n"
            "\n"
            "t1.npy\n"
            "odd.npy\n"
        )
        rc = main([
            "batch",
            "--manifest", str(manifest),
            "--core", "4,3,3",
            "--backend", "sequential",
            "-p", "2",
            "--max-iters", "2",
            "--max-in-flight", "4",
            "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_items"] == 3
        assert payload["n_failures"] == 0
        assert payload["items_per_second"] > 0
        assert payload["plans_compiled"] == 2  # two distinct shapes
        assert payload["cache_hits"] == 1
        sources = [item["source"] for item in payload["items"]]
        assert sources[0].endswith("t0.npy")
        assert [item["index"] for item in payload["items"]] == [0, 1, 2]
        assert payload["items"][2]["dims"] == [16, 10, 8]
        for item in payload["items"]:
            assert 0.0 <= item["error"] <= 1.0
            assert item["ledger"]["flops"] > 0

    def test_manifest_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read manifest"):
            main([
                "batch",
                "--manifest", str(tmp_path / "absent.txt"),
                "--core", "4,3,3",
            ])


class TestBatchFailures:
    def test_on_error_skip_reports_and_exits_nonzero(self, npy_dir, capsys):
        (npy_dir / "broken.npy").write_bytes(b"this is not an npy file")
        rc = main([
            "batch",
            "--glob", str(npy_dir / "*.npy"),
            "--core", "4,3,3",
            "--backend", "sequential",
            "-p", "2",
            "--max-iters", "1",
            "--on-error", "skip",
            "--json",
        ])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_items"] == 6
        assert payload["n_failures"] == 1
        assert payload["failures"][0]["source"].endswith("broken.npy")

    def test_on_error_raise_stops(self, npy_dir):
        (npy_dir / "broken.npy").write_bytes(b"this is not an npy file")
        with pytest.raises(SystemExit):
            main([
                "batch",
                "--glob", str(npy_dir / "*.npy"),
                "--core", "4,3,3",
                "--backend", "sequential",
                "--max-iters", "1",
            ])

    def test_calibration_requires_auto(self, npy_dir):
        with pytest.raises(SystemExit, match="requires --backend auto"):
            main([
                "batch",
                "--glob", str(npy_dir / "t*.npy"),
                "--core", "4,3,3",
                "--backend", "sequential",
                "--calibration", "whatever.json",
            ])


class TestBatchMatchesDecompose:
    def test_batch_items_match_sequential_decompose(self, npy_dir, capsys):
        rc = main([
            "batch",
            "--glob", str(npy_dir / "t*.npy"),
            "--core", "4,3,3",
            "--backend", "auto",
            "--planner", "optimal",
            "-p", "2",
            "--max-iters", "2",
            "--json",
        ])
        assert rc == 0
        batch = json.loads(capsys.readouterr().out)
        for item in batch["items"]:
            rc = main([
                "decompose",
                "--input", item["source"],
                "--core", "4,3,3",
                "--backend", "sequential",
                "--planner", "optimal",
                "-p", "2",
                "--max-iters", "2",
                "--json",
            ])
            assert rc == 0
            single = json.loads(capsys.readouterr().out)
            assert abs(item["error"] - single["error"]) < 1e-10
            assert abs(item["sthosvd_error"] - single["sthosvd_error"]) < 1e-10
