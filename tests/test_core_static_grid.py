"""Tests for the optimal static grid search (paper section 4.2)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grids import valid_grids
from repro.core.meta import TensorMeta
from repro.core.static_grid import mode_output_weights, optimal_static_grid
from repro.core.trees import balanced_tree, chain_tree
from repro.core.volume import static_volume


def random_meta(seed: int, n: int = 4) -> TensorMeta:
    r = random.Random(seed)
    dims = tuple(r.choice([6, 8, 12, 16]) for _ in range(n))
    core = tuple(max(2, d // r.choice([2, 3])) for d in dims)
    return TensorMeta(dims=dims, core=core)


class TestModeWeights:
    def test_linear_form_equals_direct_volume(self):
        m = random_meta(0)
        t = balanced_tree(4)
        w = mode_output_weights(t, m)
        for g in valid_grids(8, m):
            assert static_volume(t, m, g) == sum(
                (q - 1) * s for q, s in zip(g, w)
            )


class TestOptimalStaticGrid:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20)
    def test_minimum_over_exhaustive_scan(self, seed):
        m = random_meta(seed)
        t = chain_tree(4)
        grid, vol = optimal_static_grid(t, m, 8)
        best = min(static_volume(t, m, g) for g in valid_grids(8, m))
        assert vol == best
        assert static_volume(t, m, grid) == vol

    def test_deterministic_tie_break(self):
        m = TensorMeta(dims=(8, 8, 8), core=(4, 4, 4))
        t = chain_tree(3)
        g1, _ = optimal_static_grid(t, m, 4)
        g2, _ = optimal_static_grid(t, m, 4)
        assert g1 == g2

    def test_single_proc_grid_is_free(self):
        m = random_meta(3)
        grid, vol = optimal_static_grid(chain_tree(4), m, 1)
        assert grid == (1, 1, 1, 1) and vol == 0

    def test_puts_ranks_on_low_weight_modes(self):
        # a mode never multiplied late with big outputs should receive ranks
        m = TensorMeta(dims=(100, 4, 4), core=(2, 4, 4))
        t = chain_tree(3)
        w = mode_output_weights(t, m)
        grid, _ = optimal_static_grid(t, m, 2)
        # the chosen mode for the factor 2 should have minimal marginal cost
        chosen = grid.index(2)
        assert w[chosen] == min(
            w[i] for i in range(3) if m.core[i] >= 2
        )
