"""Heavier hypothesis property tests over random metadata and tensors.

These encode the paper's structural guarantees as universally-quantified
properties: DP optimality dominance, scheme-subset relations, exactness of
the volume formula in the engine, and HOOI's projection identities.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import tree_cost
from repro.core.dynamic_grid import optimal_dynamic_scheme, static_scheme
from repro.core.meta import TensorMeta
from repro.core.opt_tree import optimal_tree, optimal_tree_cost
from repro.core.grids import valid_grids
from repro.core.ordering import h_ordering, k_ordering
from repro.core.static_grid import optimal_static_grid
from repro.core.trees import balanced_tree, chain_tree
from repro.dist.dtensor import DistTensor
from repro.dist.ttm import dist_ttm
from repro.mpi.comm import SimCluster
from repro.tensor.ttm import ttm


@st.composite
def metas(draw, n_min=3, n_max=5):
    n = draw(st.integers(min_value=n_min, max_value=n_max))
    dims, core = [], []
    for _ in range(n):
        ell = draw(st.sampled_from([4, 6, 8, 12, 20, 40]))
        k = draw(st.sampled_from([1, 2, 3, 4]))
        dims.append(ell)
        core.append(max(1, ell // k))
    return TensorMeta(dims=tuple(dims), core=tuple(core))


class TestTreeProperties:
    @given(metas())
    @settings(max_examples=30)
    def test_optimal_dominates_all_constructions(self, m):
        opt = optimal_tree_cost(m)
        n = m.ndim
        assert opt <= tree_cost(chain_tree(n), m)
        assert opt <= tree_cost(chain_tree(n, k_ordering(m)), m)
        assert opt <= tree_cost(chain_tree(n, h_ordering(m)), m)
        assert opt <= tree_cost(balanced_tree(n), m)

    @given(metas())
    @settings(max_examples=20)
    def test_optimal_tree_is_permutation_invariant(self, m):
        # relabeling modes must not change the optimal cost
        perm = list(range(m.ndim))[::-1]
        m2 = TensorMeta(
            dims=tuple(m.dims[p] for p in perm),
            core=tuple(m.core[p] for p in perm),
        )
        assert optimal_tree_cost(m) == optimal_tree_cost(m2)

    @given(metas())
    @settings(max_examples=20)
    def test_cost_lower_bound_single_ttm(self, m):
        # any tree performs at least one TTM on the full tensor: its cost is
        # at least min_n K_n |T|
        assert optimal_tree_cost(m) >= min(m.core) * m.cardinality or m.ndim == 1


class TestGridProperties:
    @given(metas(n_min=3, n_max=4), st.sampled_from([2, 4, 8]))
    @settings(max_examples=25)
    def test_dynamic_subsumes_static(self, m, p):
        # the property only applies when a valid grid exists: p <= prod K_n
        # is necessary but not sufficient (e.g. core (3, 3, 1) admits no
        # factorization of 8 with q_n <= K_n)
        try:
            valid_grids(p, m)
        except ValueError:
            return
        t = optimal_tree(m)
        _, vol_static = optimal_static_grid(t, m, p)
        dyn = optimal_dynamic_scheme(t, m, p)
        assert dyn.total_volume <= vol_static

    @given(metas(n_min=3, n_max=4), st.sampled_from([2, 4]))
    @settings(max_examples=20)
    def test_static_scheme_volume_consistency(self, m, p):
        if p > int(np.prod(m.core)):
            return
        t = balanced_tree(m.ndim)
        grid, vol = optimal_static_grid(t, m, p)
        s = static_scheme(t, m, grid)
        assert s.ttm_volume == vol and s.regrid_volume == 0


class TestEngineProperties:
    @given(
        st.integers(min_value=0, max_value=200),
        st.sampled_from([(2, 2, 1), (4, 1, 1), (1, 2, 2), (1, 1, 4)]),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=20)
    def test_dist_ttm_exact_volume_and_value(self, seed, gshape, mode):
        rng = np.random.default_rng(seed)
        dims = (8, 9, 7)
        k = int(rng.integers(4, 8))
        t = rng.standard_normal(dims)
        a = rng.standard_normal((k, dims[mode]))
        c = SimCluster(4)
        dt = DistTensor.from_global(c, t, gshape)
        out = dist_ttm(dt, a, mode)
        np.testing.assert_allclose(out.to_global(), ttm(t, a, mode), rtol=1e-9)
        assert c.stats.volume(op="reduce_scatter") == (
            (gshape[mode] - 1) * out.cardinality
        )
