"""CLI tests for the observability surface: --trace, trace summarize,
bench --compare and the --verbose logging flag."""

import json
import logging

import numpy as np
import pytest

from repro.bench import baseline as bl
from repro.cli import main
from repro.obs import load_trace


def _golden_decompose(tmp_path, extra=()):
    trace_path = tmp_path / "out.json"
    rc = main([
        "decompose",
        "--random", "12,10,8",
        "--core", "4,3,3",
        "-p", "4",
        "--max-iters", "2",
        "--trace", str(trace_path),
        *extra,
    ])
    return rc, trace_path


class TestDecomposeTrace:
    def test_trace_file_written_and_loadable(self, tmp_path, capsys):
        rc, path = _golden_decompose(tmp_path)
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc  # Chrome trace-event format
        trace = load_trace(str(path))
        trace.validate()
        assert trace.find("run")

    def test_trace_step_tags_match_run_ledger(self, tmp_path):
        """Acceptance: the saved trace's step tags are exactly the
        ledger tags of an identical run."""
        from repro.session import TuckerSession
        from repro.tensor.random import random_tensor

        rc, path = _golden_decompose(tmp_path)
        assert rc == 0
        trace = load_trace(str(path))
        session = TuckerSession(backend="sequential")
        res = session.run(
            random_tensor((12, 10, 8), seed=0), (4, 3, 3),
            n_procs=4, max_iters=2,
        )
        assert trace.step_tags() == {r.tag for r in res.ledger.records}

    def test_jsonl_extension_selects_jsonl(self, tmp_path):
        trace_path = tmp_path / "out.jsonl"
        rc = main([
            "decompose", "--random", "10,8,6", "--core", "3,3,2",
            "--max-iters", "1", "--trace", str(trace_path),
        ])
        assert rc == 0
        first = trace_path.read_text().splitlines()[0]
        assert "meta" in json.loads(first)
        load_trace(str(trace_path)).validate()

    def test_json_payload_names_trace(self, tmp_path, capsys):
        rc, path = _golden_decompose(tmp_path, extra=("--json",))
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"] == str(path)
        assert payload["seconds"] > 0


class TestTraceSummarize:
    def test_summarize_table(self, tmp_path, capsys):
        rc, path = _golden_decompose(tmp_path)
        assert rc == 0
        capsys.readouterr()
        rc = main(["trace", "summarize", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "step tag" in out
        assert "model elems" in out
        # HOOI tree TTM steps show a modeled (q_n-1)|Out| charge.
        assert "ttm:n" in out
        assert "12x10x8 -> 4x3x3" in out

    def test_summarize_json(self, tmp_path, capsys):
        rc, path = _golden_decompose(tmp_path)
        assert rc == 0
        capsys.readouterr()
        rc = main(["trace", "summarize", str(path), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        tags = {r["tag"] for r in doc["rows"]}
        assert any(t.startswith("ttm:n") for t in tags)
        assert doc["meta"]["backend"] == "sequential"

    def test_summarize_missing_file(self):
        with pytest.raises(SystemExit, match="cannot load trace"):
            main(["trace", "summarize", "/nonexistent/trace.json"])


class TestBatchTrace:
    def test_batch_trace_has_all_items(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        for k in range(2):
            np.save(tmp_path / f"t{k}.npy",
                    rng.standard_normal((10, 8, 6)))
        trace_path = tmp_path / "batch.json"
        rc = main([
            "batch",
            "--glob", str(tmp_path / "*.npy"),
            "--core", "3,3,2",
            "--backend", "sequential",
            "--max-iters", "1",
            "--trace", str(trace_path),
        ])
        assert rc == 0
        trace = load_trace(str(trace_path))
        assert len(trace.find("batch")) == 1
        assert len(trace.find("run")) == 2
        assert trace.meta["items"] == 2


class TestBenchCommand:
    def test_measure_and_write(self, tmp_path, capsys, monkeypatch):
        self._fast_cases(monkeypatch)
        out = tmp_path / "base.json"
        rc = main(["bench", "--repeats", "1", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["version"] == bl.BASELINE_VERSION
        assert set(doc["cases"]) == {"case-a", "case-b"}

    @staticmethod
    def _fast_cases(monkeypatch):
        """Benchmarks stubbed out: CLI plumbing, not timing, under test."""
        import time

        def timed_case(runs):
            def run():
                time.sleep(0.005)  # deterministic vs sub-us lambda noise
                return runs

            return run

        monkeypatch.setattr(
            bl, "_bench_cases",
            lambda: {"case-a": timed_case(1), "case-b": timed_case(2)},
        )
        monkeypatch.setattr(bl, "gemm_rate", lambda repeats=5: 1e9)

    def test_compare_ok_exit_zero(self, tmp_path, capsys, monkeypatch):
        self._fast_cases(monkeypatch)
        out = tmp_path / "base.json"
        assert main(["bench", "--repeats", "1", "--out", str(out)]) == 0
        capsys.readouterr()
        rc = main(["bench", "--repeats", "1", "--compare", str(out)])
        assert rc == 0
        assert "bench gate: ok" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys,
                                              monkeypatch):
        self._fast_cases(monkeypatch)
        doc = bl.measure_baseline(repeats=1)
        # Fabricate a baseline 100x faster than this machine can go.
        for case in doc["cases"].values():
            case["normalized"] *= 100.0
        base = tmp_path / "base.json"
        bl.save_baseline(doc, base)
        rc = main(["bench", "--repeats", "1", "--compare", str(base)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "REGRESSION" in out

    def test_compare_missing_case_fails(self, tmp_path, monkeypatch):
        self._fast_cases(monkeypatch)
        doc = bl.measure_baseline(repeats=1)
        doc["cases"]["vanished"] = {"seconds": 1.0, "runs": 1.0,
                                    "normalized": 1.0}
        base = tmp_path / "base.json"
        bl.save_baseline(doc, base)
        rc = main(["bench", "--repeats", "1", "--compare", str(base)])
        assert rc == 1

    def test_compare_version_mismatch_is_an_error(self, tmp_path,
                                                  monkeypatch):
        self._fast_cases(monkeypatch)
        base = tmp_path / "base.json"
        bl.save_baseline({"version": -1, "cases": {}}, base)
        with pytest.raises(SystemExit, match="bench compare failed"):
            main(["bench", "--repeats", "1", "--compare", str(base)])

    def test_committed_baseline_is_current_version(self):
        doc = bl.load_baseline("BENCH_baseline.json")
        assert doc["version"] == bl.BASELINE_VERSION
        assert doc["cases"]


class TestVerboseFlag:
    @pytest.fixture(autouse=True)
    def _reset_logger(self):
        logger = logging.getLogger("repro")
        before = (list(logger.handlers), logger.level)
        yield
        logger.handlers[:], logger.level = before[0], before[1]
        logger.setLevel(before[1])

    def test_silent_by_default(self, capsys):
        rc = main(["decompose", "--random", "10,8,6", "--core", "3,3,2",
                   "--max-iters", "1"])
        assert rc == 0
        assert "INFO" not in capsys.readouterr().err

    def test_verbose_logs_compile_to_stderr(self, capsys):
        rc = main(["-v", "decompose", "--random", "10,8,6",
                   "--core", "3,3,2", "--max-iters", "1"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "INFO repro.session: compiling plan" in err

    def test_double_verbose_enables_debug(self):
        main(["-vv", "psi", "-p", "4"])
        assert logging.getLogger("repro").level == logging.DEBUG
