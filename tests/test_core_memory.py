"""Tests for the peak-memory model."""

import pytest

from repro.core.cost import node_costs
from repro.core.memory import (
    max_live_intermediates,
    plan_peak_bytes_per_rank,
    traversal_peak_cards,
)
from repro.core.meta import TensorMeta
from repro.core.opt_tree import optimal_tree
from repro.core.planner import Planner
from repro.core.trees import balanced_tree, chain_tree


@pytest.fixture
def meta():
    return TensorMeta(dims=(24, 20, 16, 10), core=(6, 10, 4, 5))


class TestLiveIntermediates:
    def test_depth_bound_paper_claim(self, meta):
        # section 3.1: live intermediates bounded by tree depth
        for tree in (
            chain_tree(4),
            balanced_tree(4),
            optimal_tree(meta),
        ):
            assert max_live_intermediates(tree) <= tree.depth()

    def test_chain_tree_exact(self):
        # a chain keeps every ancestor alive: exactly N-1 at the deepest TTM
        t = chain_tree(5)
        assert max_live_intermediates(t) == 4

    def test_single_mode(self):
        t = chain_tree(1)
        assert max_live_intermediates(t) == 0


class TestTraversalPeak:
    def test_at_least_input_plus_first_output(self, meta):
        t = optimal_tree(meta)
        costs = node_costs(t, meta)
        first = t.root.children[0]
        assert traversal_peak_cards(t, meta) >= (
            meta.cardinality + costs[first.uid]["out_card"]
        )

    def test_bounded_by_input_times_depth(self, meta):
        # every intermediate is smaller than |T| (h_n <= 1), so the DFS peak
        # is at most (depth + 1) |T|
        for tree in (chain_tree(4), balanced_tree(4), optimal_tree(meta)):
            peak = traversal_peak_cards(tree, meta)
            assert peak <= (tree.depth() + 1) * meta.cardinality

    def test_two_mode_hand_computed(self):
        m = TensorMeta(dims=(10, 20), core=(2, 4))
        t = chain_tree(2)
        # chains: x0 -> F~1 (out 2*20=40), x1 -> F~0 (out 10*4=40);
        # peak = |T| + 40 (one chain live at a time)
        assert traversal_peak_cards(t, m) == 200 + 40

    def test_balanced_ge_single_chain_level(self, meta):
        # balanced trees stack several live intermediates: peak above the
        # single-deepest-chain of a chain tree is possible but never below
        # |T| + smallest first-level output
        t = balanced_tree(4)
        assert traversal_peak_cards(t, meta) > meta.cardinality


class TestPlanPeakBytes:
    def test_components_present_and_positive(self, meta):
        plan = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        mem = plan_peak_bytes_per_rank(plan)
        assert set(mem) == {"resident", "ttm_buffer", "regrid_buffer", "total"}
        assert mem["resident"] > 0 and mem["ttm_buffer"] > 0
        assert mem["total"] == pytest.approx(
            mem["resident"] + mem["ttm_buffer"] + mem["regrid_buffer"]
        )

    def test_static_plan_has_no_regrid_buffer(self, meta):
        plan = Planner(8, tree="balanced", grid="static").plan(meta)
        mem = plan_peak_bytes_per_rank(plan)
        assert mem["regrid_buffer"] == 0.0

    def test_scales_inversely_with_procs(self, meta):
        m8 = plan_peak_bytes_per_rank(Planner(8, grid="static").plan(meta))
        m2 = plan_peak_bytes_per_rank(Planner(2, grid="static").plan(meta))
        assert m8["resident"] < m2["resident"]

    def test_bytes_per_element(self, meta):
        plan = Planner(4, grid="static").plan(meta)
        m4 = plan_peak_bytes_per_rank(plan, bytes_per_element=4)
        m8 = plan_peak_bytes_per_rank(plan, bytes_per_element=8)
        assert m8["total"] == pytest.approx(2 * m4["total"])
