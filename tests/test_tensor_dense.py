"""Tests for dense-tensor helpers."""

import numpy as np
import pytest

from repro.tensor.dense import cardinality, fro_norm, num_fibers, relative_error


class TestCardinality:
    def test_values(self):
        assert cardinality((3, 4, 5)) == 60
        assert cardinality((8_000_000_000,)) == 8_000_000_000

    def test_exact_for_huge_dims(self):
        # must not round through floats
        assert cardinality((2**40, 3)) == 3 * 2**40


class TestNumFibers:
    def test_values(self):
        assert num_fibers((3, 4, 5), 0) == 20
        assert num_fibers((3, 4, 5), 2) == 12


class TestNorms:
    def test_fro_norm(self):
        t = np.ones((2, 3))
        assert fro_norm(t) == pytest.approx(np.sqrt(6))

    def test_relative_error_zero_for_equal(self):
        t = np.random.default_rng(0).standard_normal((3, 3))
        assert relative_error(t, t) == 0.0

    def test_relative_error_scaling_invariance(self):
        rng = np.random.default_rng(1)
        t = rng.standard_normal((4, 4))
        z = rng.standard_normal((4, 4))
        e1 = relative_error(t, z)
        e2 = relative_error(10 * t, 10 * z)
        assert e1 == pytest.approx(e2)

    def test_zero_tensor_cases(self):
        z = np.zeros((2, 2))
        assert relative_error(z, z) == 0.0
        assert relative_error(z, np.ones((2, 2))) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros((2, 2)), np.zeros((2, 3)))
