"""Tests for repro.util.serial JSON helpers."""

import pytest

from repro.util import serial


class TestDumpsLoads:
    def test_roundtrip(self):
        obj = {"b": [1, 2], "a": {"x": 3}}
        assert serial.loads(serial.dumps(obj)) == obj

    def test_deterministic_key_order(self):
        assert serial.dumps({"b": 1, "a": 2}) == serial.dumps({"a": 2, "b": 1})

    def test_loads_rejects_non_object(self):
        with pytest.raises(ValueError):
            serial.loads("[1, 2, 3]")


class TestAsIntTuple:
    def test_ints(self):
        assert serial.as_int_tuple([1, 2, 3]) == (1, 2, 3)

    def test_integral_floats(self):
        assert serial.as_int_tuple([1.0, 2.0]) == (1, 2)

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            serial.as_int_tuple([1.5])

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            serial.as_int_tuple([True])
